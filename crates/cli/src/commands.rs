//! Command implementations.
//!
//! `solve`, `simulate`, and `batch` all route through one
//! [`PlannerService`] session, so the CLI exercises exactly the engine a
//! long-lived server would run: `solve` is a one-request session over an
//! injected pool file, `batch` streams a JSONL request file through a
//! single session whose pool arena amortizes sampling across the whole
//! file. Errors are typed ([`OipaError`]): user errors exit 2 with an
//! actionable message, environment (I/O) failures exit 1.

use crate::opts::{CliError, ParsedArgs};
use oipa_core::OipaError;
use oipa_datasets::Scale;
use oipa_graph::{binio as graph_io, DiGraph};
use oipa_sampler::{binio as pool_io, MrrPool};
use oipa_service::{Method, PlannerService, SimulateRequest, SolveRequest, SolveResponse};
use oipa_store::io::{parse_fault_schedule, FaultIo};
use oipa_store::{DiskTier, EvictionPolicyKind, OpenReport, StoreConfig, QUARANTINE_DIR};
use oipa_topics::{binio as probs_io, Campaign, EdgeTopicProbs};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::HashMap;
use std::fmt::Write as _;

impl From<CliError> for OipaError {
    fn from(e: CliError) -> Self {
        OipaError::InvalidConfig { what: e.0 }
    }
}

/// Runs one parsed command, returning its human-readable report.
pub fn run(args: &ParsedArgs) -> Result<String, OipaError> {
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "import" => cmd_import(args),
        "stats" => cmd_stats(args),
        "sample" => cmd_sample(args),
        "solve" => cmd_solve(args),
        "simulate" => cmd_simulate(args),
        "batch" => cmd_batch(args),
        "bench" => cmd_bench(args),
        "store" => cmd_store(args),
        "obs" => cmd_obs(args),
        other => Err(OipaError::InvalidConfig {
            what: format!("unknown command {other:?}"),
        }),
    }
}

/// `oipa-cli bench <suite>` — reproduces the checked-in perf artifacts
/// (`BENCH_solver.json`, `BENCH_service.json`).
fn cmd_bench(args: &ParsedArgs) -> Result<String, OipaError> {
    let suite = args.positional.as_deref().unwrap_or("solver");
    match suite {
        "solver" => {
            let config = oipa_bench::solver_suite::SolverSuiteConfig {
                smoke: args.parsed_or("smoke", false)?,
                seed: args.parsed_or("seed", 0u64)?,
            };
            let report = oipa_bench::solver_suite::run_solver_suite(config);
            oipa_bench::solver_suite::validate_report(&report).map_err(|e| {
                OipaError::Mismatch {
                    what: format!("solver bench invariants violated: {e}"),
                }
            })?;
            let out = args.optional("out").unwrap_or("BENCH_solver.json");
            save_json(&report, out, "bench report")?;
            let mut text = oipa_bench::solver_suite::summary_text(&report);
            write!(text, "wrote {out} ({} records)", report.records.len()).expect("string write");
            Ok(text)
        }
        "service" => {
            let config = oipa_bench::service_suite::ServiceSuiteConfig {
                smoke: args.parsed_or("smoke", false)?,
                seed: args.parsed_or("seed", 0u64)?,
            };
            let report = oipa_bench::service_suite::run_service_suite(config);
            oipa_bench::service_suite::validate_report(&report).map_err(|e| {
                OipaError::Mismatch {
                    what: format!("service bench invariants violated: {e}"),
                }
            })?;
            let out = args.optional("out").unwrap_or("BENCH_service.json");
            save_json(&report, out, "bench report")?;
            let mut text = oipa_bench::service_suite::summary_text(&report);
            write!(text, "wrote {out} ({} records)", report.records.len()).expect("string write");
            Ok(text)
        }
        "store" => {
            let config = oipa_bench::store_suite::StoreSuiteConfig {
                smoke: args.parsed_or("smoke", false)?,
                seed: args.parsed_or("seed", 0u64)?,
                store_dir: args.optional("store-dir").map(Into::into),
            };
            let report =
                oipa_bench::store_suite::run_store_suite(config).map_err(|e| OipaError::Io {
                    what: "running the store bench".to_string(),
                    detail: e.to_string(),
                })?;
            oipa_bench::store_suite::validate_report(&report).map_err(|e| OipaError::Mismatch {
                what: format!("store bench invariants violated: {e}"),
            })?;
            let out = args.optional("out").unwrap_or("BENCH_store.json");
            save_json(&report, out, "bench report")?;
            let mut text = oipa_bench::store_suite::summary_text(&report);
            write!(text, "wrote {out} ({} records)", report.records.len()).expect("string write");
            Ok(text)
        }
        "concurrent" => {
            let config = oipa_bench::concurrent_suite::ConcurrentSuiteConfig {
                smoke: args.parsed_or("smoke", false)?,
                seed: args.parsed_or("seed", 0u64)?,
            };
            let report = oipa_bench::concurrent_suite::run_concurrent_suite(config);
            oipa_bench::concurrent_suite::validate_report(&report).map_err(|e| {
                OipaError::Mismatch {
                    what: format!("concurrent bench invariants violated: {e}"),
                }
            })?;
            let out = args.optional("out").unwrap_or("BENCH_concurrent.json");
            save_json(&report, out, "bench report")?;
            let mut text = oipa_bench::concurrent_suite::summary_text(&report);
            write!(text, "wrote {out} ({} records)", report.records.len()).expect("string write");
            Ok(text)
        }
        "serve" => {
            let config = oipa_bench::serve_suite::ServeSuiteConfig {
                smoke: args.parsed_or("smoke", false)?,
                seed: args.parsed_or("seed", 0u64)?,
                rate: args.parsed("rate")?,
            };
            let report =
                oipa_bench::serve_suite::run_serve_suite(config).map_err(|e| OipaError::Io {
                    what: "running the serve bench".to_string(),
                    detail: e,
                })?;
            oipa_bench::serve_suite::validate_report(&report).map_err(|e| OipaError::Mismatch {
                what: format!("serve bench invariants violated: {e}"),
            })?;
            let out = args.optional("out").unwrap_or("BENCH_serve.json");
            save_json(&report, out, "bench report")?;
            let mut text = oipa_bench::serve_suite::summary_text(&report);
            write!(text, "wrote {out} ({} records)", report.records.len()).expect("string write");
            Ok(text)
        }
        "dynamic" => {
            let config = oipa_bench::dynamic_suite::DynamicSuiteConfig {
                smoke: args.parsed_or("smoke", false)?,
                seed: args.parsed_or("seed", 0u64)?,
            };
            let report = oipa_bench::dynamic_suite::run_dynamic_suite(config).map_err(|e| {
                OipaError::Io {
                    what: "running the dynamic bench".to_string(),
                    detail: e,
                }
            })?;
            oipa_bench::dynamic_suite::validate_report(&report).map_err(|e| {
                OipaError::Mismatch {
                    what: format!("dynamic bench invariants violated: {e}"),
                }
            })?;
            let out = args.optional("out").unwrap_or("BENCH_dynamic.json");
            save_json(&report, out, "bench report")?;
            let mut text = oipa_bench::dynamic_suite::summary_text(&report);
            write!(text, "wrote {out} ({} records)", report.records.len()).expect("string write");
            Ok(text)
        }
        other => Err(OipaError::InvalidConfig {
            what: format!(
                "unknown bench suite {other:?} (available: solver, service, store, \
                 concurrent, serve, dynamic)"
            ),
        }),
    }
}

/// `oipa-cli store ls|verify|gc --dir DIR` — administers a persistent
/// pool-store directory. Opening a store always *recovers* it first:
/// stale temp files are swept, orphaned or size-mismatched segments are
/// quarantined, and the manifest is rewritten clean.
fn cmd_store(args: &ParsedArgs) -> Result<String, OipaError> {
    let action = args.positional.as_deref().unwrap_or("ls");
    let dir = args.required("dir")?;
    // No byte budget here: administration must never evict entries.
    let mut tier = DiskTier::open(dir, u64::MAX).map_err(|e| OipaError::Io {
        what: format!("opening store {dir}"),
        detail: e.to_string(),
    })?;
    let opened = tier.open_report();
    let mut out = String::new();
    if opened != OpenReport::default() {
        writeln!(
            out,
            "recovered on open: {} quarantined, {} missing entries dropped, \
             {} stale temps swept{}",
            opened.quarantined,
            opened.dropped_missing,
            opened.stale_temps,
            if opened.corrupt_manifest {
                ", manifest was corrupt (rebuilt empty)"
            } else {
                ""
            }
        )
        .expect("string write");
    }
    match action {
        "ls" => {
            let current = tier.current_epoch();
            writeln!(
                out,
                "{:<24} {:>10} {:>12} {:>16} {:>8} {:>6} {:>10} campaign",
                "file", "theta", "bytes", "seed", "epoch", "state", "last_used"
            )
            .expect("string write");
            for e in tier.entries() {
                let campaign = e.key.campaign();
                // Truncate on a char boundary: campaign JSON may embed
                // non-ASCII piece names.
                let shown: String = match campaign.char_indices().nth(40) {
                    Some((idx, _)) => format!("{}…", &campaign[..idx]),
                    None => campaign.to_string(),
                };
                writeln!(
                    out,
                    "{:<24} {:>10} {:>12} {:>16} {:>8} {:>6} {:>10} {shown}",
                    e.file,
                    e.key.theta(),
                    e.bytes,
                    format!("{:016x}", e.key.seed()),
                    format!("{:04x}", e.epoch),
                    // A dirty pool is stamped with an ancestor epoch: it
                    // is never served as-is, only delta-repaired.
                    if e.epoch == current { "live" } else { "dirty" },
                    e.last_used
                )
                .expect("string write");
            }
            let stats = tier.stats();
            // Fill ratio: the live fraction of committed region bytes —
            // the remainder is dead space a `gc` pass would reclaim.
            let committed = stats.bytes + stats.dead_bytes;
            let fill = if committed == 0 {
                100.0
            } else {
                100.0 * stats.bytes as f64 / committed as f64
            };
            let lineage = tier
                .lineage()
                .iter()
                .map(|fp| format!("{fp:016x}"))
                .collect::<Vec<_>>()
                .join(" -> ");
            write!(
                out,
                "{} segments, {} bytes in {} region(s) ({fill:.0}% live), \
                 eviction {}\nlineage {} (epoch {:04x}, {} stale)",
                tier.len(),
                tier.bytes(),
                stats.regions,
                tier.eviction_label(),
                if lineage.is_empty() {
                    "(unset)".to_string()
                } else {
                    lineage
                },
                current,
                stats.stale_entries,
            )
            .expect("string write");
            if let Some(purge) = stats.last_purge {
                write!(
                    out,
                    "\n{} purge(s); last dropped {} entr{} ({:016x} -> {:016x})",
                    stats.purges,
                    purge.entries,
                    if purge.entries == 1 { "y" } else { "ies" },
                    purge.from,
                    purge.to,
                )
                .expect("string write");
            }
            Ok(out)
        }
        "verify" => {
            let verdict = tier.verify();
            for (file, bytes) in &verdict.ok {
                writeln!(out, "ok      {file} ({bytes} bytes)").expect("string write");
            }
            for (file, reason) in &verdict.corrupt {
                writeln!(out, "CORRUPT {file}: {reason}").expect("string write");
            }
            // Segments already set aside — by a past recovery, a gc run,
            // or a fault-injected session — are reported with the reason
            // recorded beside them, so quarantine is never a silent hole.
            let quarantined = list_quarantine(std::path::Path::new(dir));
            for (file, reason) in &quarantined {
                writeln!(out, "quarantined {file}: {reason}").expect("string write");
            }
            if !verdict.corrupt.is_empty() {
                return Err(OipaError::Mismatch {
                    what: format!(
                        "store verify: {} of {} segment(s) corrupt:\n{out}",
                        verdict.corrupt.len(),
                        verdict.ok.len() + verdict.corrupt.len()
                    ),
                });
            }
            write!(
                out,
                "{} segment(s) verified clean, {} in quarantine",
                verdict.ok.len(),
                quarantined.len()
            )
            .expect("string write");
            Ok(out)
        }
        "gc" => {
            let report = tier.gc().map_err(|e| OipaError::Io {
                what: format!("gc on store {dir}"),
                detail: e.to_string(),
            })?;
            for (region, bytes) in &report.region_reclaimed {
                writeln!(out, "region {region}: {bytes} bytes reclaimed").expect("string write");
            }
            write!(
                out,
                "gc: kept {}, quarantined {} corrupt ({} bytes reclaimed), \
                 {} orphan(s) quarantined, {} missing entr(ies) dropped, \
                 {} stale temp(s) swept",
                report.kept,
                report.quarantined.len(),
                report.reclaimed_bytes,
                report.orphans_quarantined,
                report.dropped_missing,
                report.stale_temps
            )
            .expect("string write");
            Ok(out)
        }
        other => Err(OipaError::InvalidConfig {
            what: format!("unknown store action {other:?} (available: ls, verify, gc)"),
        }),
    }
}

/// `oipa-cli obs dump --addr HOST:PORT` — scrapes a live server's
/// `GET /metrics` exposition over the wire and renders it as an aligned
/// `series / type / value` table, one row per sample.
fn cmd_obs(args: &ParsedArgs) -> Result<String, OipaError> {
    let action = args.positional.as_deref().unwrap_or("dump");
    if action != "dump" {
        return Err(OipaError::InvalidConfig {
            what: format!("unknown obs action {action:?} (available: dump)"),
        });
    }
    let addr = args.required("addr")?;
    let exposition = fetch_metrics(addr).map_err(|detail| OipaError::Io {
        what: format!("scraping http://{addr}/metrics"),
        detail,
    })?;
    render_metrics_table(&exposition).map_err(|e| OipaError::Mismatch {
        what: format!("unparseable exposition from {addr}: {e}"),
    })
}

/// One `Connection: close` GET of `/metrics`; returns the body.
fn fetch_metrics(addr: &str) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| e.to_string())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| e.to_string())?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or("incomplete HTTP response")?;
    match head.split(' ').nth(1) {
        Some("200") => Ok(body.to_string()),
        Some(status) => Err(format!("GET /metrics answered {status}")),
        None => Err("malformed status line".to_string()),
    }
}

/// Renders a Prometheus text exposition as an aligned table. Family
/// kinds come from the `# TYPE` lines; `_bucket`/`_sum`/`_count` samples
/// resolve to their histogram family.
fn render_metrics_table(exposition: &str) -> Result<String, String> {
    let mut kinds: Vec<(String, String)> = Vec::new();
    let mut rows: Vec<(String, String)> = Vec::new();
    for line in exposition.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut words = rest.split_whitespace();
            match (words.next(), words.next()) {
                (Some(family), Some(kind)) => kinds.push((family.to_string(), kind.to_string())),
                _ => return Err(format!("malformed TYPE line {line:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("sample line without a value: {line:?}"))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("unparseable value in {line:?}"))?;
        rows.push((series.to_string(), value.to_string()));
    }
    if rows.is_empty() {
        return Err("no samples in the exposition".to_string());
    }
    let kind_of = |series: &str| {
        let name = series.split('{').next().unwrap_or(series);
        kinds
            .iter()
            .find(|(family, _)| {
                name == family
                    || ["_bucket", "_sum", "_count"]
                        .iter()
                        .any(|suffix| name.strip_suffix(suffix) == Some(family.as_str()))
            })
            .map_or("untyped", |(_, kind)| kind.as_str())
    };
    let width = rows
        .iter()
        .map(|(series, _)| series.len())
        .max()
        .unwrap_or(0)
        .max("series".len());
    let mut out = String::new();
    writeln!(out, "{:<width$}  {:<9}  value", "series", "type").expect("string write");
    for (series, value) in &rows {
        writeln!(out, "{series:<width$}  {:<9}  {value}", kind_of(series)).expect("string write");
    }
    write!(out, "{} series across {} families", rows.len(), kinds.len()).expect("string write");
    Ok(out)
}

/// Lists `quarantine/` as `(file, reason)` pairs, pairing each set-aside
/// file with its `<name>.reason.txt` note (or a placeholder when the
/// note itself failed to land — e.g. quarantine under a full disk).
fn list_quarantine(dir: &std::path::Path) -> Vec<(String, String)> {
    let qdir = dir.join(QUARANTINE_DIR);
    let Ok(entries) = std::fs::read_dir(&qdir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".reason.txt") {
            continue;
        }
        let reason = std::fs::read_to_string(qdir.join(format!("{name}.reason.txt")))
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|_| "(no reason recorded)".to_string());
        out.push((name, reason));
    }
    out.sort();
    out
}

fn io_err(what: &str, path: &str, e: impl std::fmt::Display) -> OipaError {
    OipaError::Io {
        what: format!("{what} {path}"),
        detail: e.to_string(),
    }
}

fn load_graph(path: &str) -> Result<DiGraph, OipaError> {
    graph_io::read_graph_file(path).map_err(|e| io_err("reading graph", path, e))
}

fn load_probs(path: &str, graph: &DiGraph) -> Result<EdgeTopicProbs, OipaError> {
    let table =
        probs_io::read_table_file(path).map_err(|e| io_err("reading probabilities", path, e))?;
    table
        .check_against(graph)
        .map_err(|e| OipaError::Mismatch {
            what: format!("probability table {path}: {e}"),
        })?;
    Ok(table)
}

fn load_pool(path: &str) -> Result<MrrPool, OipaError> {
    pool_io::read_pool_file(path).map_err(|e| io_err("reading pool", path, e))
}

fn load_json<T: serde::de::DeserializeOwned>(path: &str, what: &str) -> Result<T, OipaError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| io_err(&format!("reading {what}"), path, e))?;
    serde_json::from_str(&text).map_err(|e| OipaError::InvalidConfig {
        what: format!("parsing {what} {path}: {e}"),
    })
}

fn save_json<T: Serialize>(value: &T, path: &str, what: &str) -> Result<(), OipaError> {
    let text = serde_json::to_string_pretty(value)
        .map_err(|e| io_err(&format!("serializing {what}"), path, e))?;
    std::fs::write(path, text).map_err(|e| io_err(&format!("writing {what}"), path, e))
}

fn cmd_generate(args: &ParsedArgs) -> Result<String, OipaError> {
    let name = args.required("dataset")?;
    let scale_str = args.optional("scale").unwrap_or("tiny");
    let scale = Scale::parse(scale_str).ok_or_else(|| OipaError::InvalidConfig {
        what: format!("bad --scale {scale_str:?} (tiny|small|medium|full)"),
    })?;
    let seed: u64 = args.parsed_or("seed", 42)?;
    let dataset = match name {
        "lastfm" => oipa_datasets::lastfm_like(scale, seed),
        "dblp" => oipa_datasets::dblp_like(scale, seed),
        "tweet" => oipa_datasets::tweet_like(scale, seed),
        other => {
            return Err(OipaError::InvalidConfig {
                what: format!("unknown dataset {other:?} (lastfm|dblp|tweet)"),
            })
        }
    };
    let out_graph = args.required("out-graph")?;
    let out_probs = args.required("out-probs")?;
    graph_io::write_graph_file(&dataset.graph, out_graph)
        .map_err(|e| io_err("writing graph", out_graph, e))?;
    probs_io::write_table_file(&dataset.table, out_probs)
        .map_err(|e| io_err("writing probabilities", out_probs, e))?;
    let s = dataset.stats();
    Ok(format!(
        "generated {name} ({scale_str}): {} nodes, {} edges, {} topics -> {out_graph}, {out_probs}",
        s.nodes, s.edges, dataset.topics
    ))
}

fn cmd_import(args: &ParsedArgs) -> Result<String, OipaError> {
    let edges_path = args.required("edges")?;
    let graph = oipa_graph::io::read_edge_list_file(edges_path, oipa_graph::DedupPolicy::Simple)
        .map_err(|e| io_err("reading edge list", edges_path, e))?;
    let out_graph = args.required("out-graph")?;
    graph_io::write_graph_file(&graph, out_graph)
        .map_err(|e| io_err("writing graph", out_graph, e))?;
    let mut report = format!(
        "imported {} nodes, {} edges -> {out_graph}",
        graph.node_count(),
        graph.edge_count()
    );
    // Optional: synthesize a probability table for graphs without one.
    if let Some(out_probs) = args.optional("out-probs") {
        let topics: usize = args.parsed_or("topics", 10)?;
        let avg_support: f64 = args.parsed_or("avg-support", 1.5)?;
        let max_prob: f32 = args.parsed_or("max-prob", 1.0)?;
        let seed: u64 = args.parsed_or("seed", 42)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let table = oipa_topics::synthesize_random(
            &mut rng,
            &graph,
            oipa_topics::SynthesisParams {
                topic_count: topics,
                avg_support,
                max_prob,
                weighted_cascade: true,
            },
        );
        probs_io::write_table_file(&table, out_probs)
            .map_err(|e| io_err("writing probabilities", out_probs, e))?;
        write!(report, "; synthesized {topics}-topic table -> {out_probs}").expect("string write");
    }
    Ok(report)
}

fn cmd_stats(args: &ParsedArgs) -> Result<String, OipaError> {
    let graph = load_graph(args.required("graph")?)?;
    let s = oipa_graph::stats::graph_stats(&graph);
    let mut out = format!(
        "nodes {}\nedges {}\navg_degree {:.2}\nmax_out_degree {}\nmax_in_degree {}\nisolated {}",
        s.nodes, s.edges, s.avg_degree, s.max_out_degree, s.max_in_degree, s.isolated
    );
    if let Some(alpha) =
        oipa_graph::stats::power_law_exponent_mle(graph.nodes().map(|v| graph.out_degree(v)), 3)
    {
        write!(out, "\nout_degree_power_law_alpha {alpha:.2}").expect("string write");
    }
    if let Some(probs_path) = args.optional("probs") {
        let table = load_probs(probs_path, &graph)?;
        write!(
            out,
            "\ntopics {}\navg_topic_support {:.2}\nmean_nonzero_prob {:.4}",
            table.topic_count(),
            table.avg_support(),
            table.mean_nonzero_prob()
        )
        .expect("string write");
    }
    Ok(out)
}

fn cmd_sample(args: &ParsedArgs) -> Result<String, OipaError> {
    let graph = load_graph(args.required("graph")?)?;
    let table = load_probs(args.required("probs")?, &graph)?;
    let ell: usize = args.parsed_or("ell", 3)?;
    let theta: usize = args.parsed_or("theta", 100_000)?;
    let seed: u64 = args.parsed_or("seed", 42)?;
    let threads: usize = args.parsed_or(
        "threads",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    )?;
    if ell == 0 {
        return Err(OipaError::config("--ell must be at least 1"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let campaign = Campaign::sample_one_hot(&mut rng, table.topic_count(), ell);
    let start = std::time::Instant::now();
    let pool = MrrPool::try_generate_parallel(&graph, &table, &campaign, theta, seed, threads)
        .map_err(|e| OipaError::Mismatch {
            what: e.to_string(),
        })?;
    let sample_time = start.elapsed();
    let out_pool = args.required("out-pool")?;
    pool_io::write_pool_file(&pool, out_pool).map_err(|e| io_err("writing pool", out_pool, e))?;
    let out_campaign = args.required("out-campaign")?;
    save_json(&campaign, out_campaign, "campaign")?;
    Ok(format!(
        "sampled θ={theta} MRR sets for ℓ={ell} pieces in {:.2}s ({} total RR entries) -> {out_pool}, {out_campaign}",
        sample_time.as_secs_f64(),
        pool.total_nodes()
    ))
}

/// Builds the request the `solve` flag set describes.
fn request_from_flags(args: &ParsedArgs, method: Method) -> Result<SolveRequest, OipaError> {
    let mut request = SolveRequest::new(method, args.parsed_or("k", 10)?);
    request.ratio = Some(args.parsed_or("ratio", 0.5)?);
    request.eps = Some(args.parsed_or("eps", 0.5)?);
    request.gap = args.parsed("gap")?;
    request.promoter_fraction = Some(args.parsed_or("promoter-fraction", 0.1)?);
    request.max_nodes = Some(args.parsed_or("max-nodes", 64)?);
    request.seed = Some(args.parsed_or("seed", 42)?);
    request.theta = args.parsed("theta")?;
    request.ell = args.parsed("ell")?;
    Ok(request)
}

/// Attaches a persistent pool store when the command asked for one.
/// `--fault-schedule` (a dev flag) routes the store's I/O through a
/// deterministic fault injector — for rehearsing disk failures against
/// a real workload without real hardware misbehaving.
fn attach_store_flag(service: &mut PlannerService, args: &ParsedArgs) -> Result<(), OipaError> {
    if let Some(dir) = args.optional("store-dir") {
        let mut config = StoreConfig::new(dir);
        config.shards = args.parsed("shards")?;
        if let Some(name) = args.optional("eviction") {
            config.eviction =
                Some(
                    EvictionPolicyKind::parse(name).map_err(|e| OipaError::InvalidConfig {
                        what: format!("--eviction {name:?}: {e}"),
                    })?,
                );
        }
        if let Some(region_bytes) = args.parsed::<u64>("region-bytes")? {
            config.region_bytes = region_bytes;
        }
        if let Some(spec) = args.optional("fault-schedule") {
            let schedule = parse_fault_schedule(spec).map_err(|e| OipaError::InvalidConfig {
                what: format!("--fault-schedule {spec:?}: {e}"),
            })?;
            config = config.with_io(FaultIo::over_real(schedule));
        }
        service.attach_store(config)?;
    }
    Ok(())
}

fn cmd_solve(args: &ParsedArgs) -> Result<String, OipaError> {
    let method = Method::parse(args.optional("method").unwrap_or("bab-p"))?;
    let mut service = match args.optional("pool") {
        Some(pool_path) => {
            let mut service = PlannerService::from_pool(load_pool(pool_path)?);
            if method == Method::Im {
                // The topic-oblivious baseline samples a collapsed-probability
                // RR pool, which needs the graph and table.
                let graph = load_graph(args.required("graph")?)?;
                let table = load_probs(args.required("probs")?, &graph)?;
                service.attach_graph(graph, table)?;
            }
            service
        }
        None => {
            // Graph-based session: the service samples (or, with a store
            // attached, recalls) the pool itself. Requires a campaign
            // spec — a seeded one-hot `--ell` here.
            let graph = load_graph(args.required("graph")?)?;
            let table = load_probs(args.required("probs")?, &graph)?;
            if args.optional("ell").is_none() {
                return Err(OipaError::config(
                    "solving from --graph/--probs needs --ell N (seeded one-hot campaign); \
                     alternatively pass a pre-sampled --pool",
                ));
            }
            PlannerService::new(graph, table)?
        }
    };
    attach_store_flag(&mut service, args)?;
    let request = request_from_flags(args, method)?;
    let response = service.solve(&request)?;
    if let Some(out) = args.optional("out-plan") {
        save_json(&response, out, "plan")?;
    }
    serde_json::to_string_pretty(&response).map_err(|e| OipaError::Io {
        what: "serializing the solve report".to_string(),
        detail: e.to_string(),
    })
}

fn cmd_simulate(args: &ParsedArgs) -> Result<String, OipaError> {
    let graph = load_graph(args.required("graph")?)?;
    let table = load_probs(args.required("probs")?, &graph)?;
    let service = PlannerService::new(graph, table)?;
    let campaign: Campaign = load_json(args.required("campaign")?, "campaign")?;
    // Accept either a bare plan or a solve report containing one.
    let plan: oipa_core::AssignmentPlan = {
        let path = args.required("plan")?;
        let text = std::fs::read_to_string(path).map_err(|e| io_err("reading plan", path, e))?;
        let value: serde_json::Value =
            serde_json::from_str(&text).map_err(|_| OipaError::InvalidConfig {
                what: format!("plan file {path} is not JSON"),
            })?;
        let inner = value.get("plan").cloned().unwrap_or(value);
        serde_json::from_value(inner).map_err(|e| OipaError::InvalidConfig {
            what: format!("parsing plan {path}: {e}"),
        })?
    };
    let request = SimulateRequest {
        plan,
        campaign,
        ratio: Some(args.parsed_or("ratio", 0.5)?),
        alpha: None,
        beta: None,
        runs: Some(args.parsed_or("runs", 500)?),
        seed: Some(args.parsed_or("seed", 42)?),
    };
    let response = service.simulate(&request)?;
    Ok(format!(
        "simulated adoption utility over {} runs: {:.3} users",
        response.runs, response.utility
    ))
}

/// `oipa-cli batch` — streams JSONL [`SolveRequest`]s through **one**
/// service session, amortizing the pool arena across the whole file.
///
/// Each input line produces one output line: the [`SolveResponse`] JSON,
/// or `{"line": N, "error": "..."}` for requests that fail (the batch
/// continues). Output order always matches input order. With
/// `--threads N` the requests are answered by N workers sharing the
/// session (`PlannerService::solve` takes `&self`): warm requests hit
/// the pool store's shared read path concurrently and N simultaneous
/// misses on one pool key sample exactly once, so plans and utilities
/// are identical to a sequential run. With `--out FILE` the response
/// lines go to the file and the report carries only the summary;
/// otherwise the report itself is the JSONL stream followed by a
/// `#`-prefixed summary line.
fn cmd_batch(args: &ParsedArgs) -> Result<String, OipaError> {
    let requests_path = args.required("requests")?;
    let threads: usize = args.parsed_or("threads", 1)?;
    if threads == 0 {
        return Err(OipaError::config("--threads must be at least 1"));
    }
    let mut service = match args.optional("pool") {
        Some(pool_path) => {
            let mut service = PlannerService::from_pool(load_pool(pool_path)?);
            match (args.optional("graph"), args.optional("probs")) {
                (Some(g), Some(p)) => {
                    let graph = load_graph(g)?;
                    let table = load_probs(p, &graph)?;
                    service.attach_graph(graph, table)?;
                }
                (None, None) => {}
                _ => {
                    return Err(OipaError::config(
                        "--graph and --probs must be given together",
                    ))
                }
            }
            service
        }
        None => {
            let graph = load_graph(args.required("graph")?)?;
            let table = load_probs(args.required("probs")?, &graph)?;
            PlannerService::new(graph, table)?
        }
    };
    attach_store_flag(&mut service, args)?;
    let text = std::fs::read_to_string(requests_path)
        .map_err(|e| io_err("reading requests", requests_path, e))?;
    let check = args.parsed_or("check", false)?;

    let entries: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter_map(|(idx, line)| {
            let line = line.trim();
            (!line.is_empty() && !line.starts_with('#')).then_some((idx + 1, line))
        })
        .collect();

    // One request → one outcome: the output line, whether it succeeded,
    // and (under --check) the parsed pair for the agreement check.
    type BatchOutcome = (String, bool, Option<(usize, SolveRequest, SolveResponse)>);
    let solve_line = |lineno: usize, line: &str| -> BatchOutcome {
        let outcome = serde_json::from_str::<SolveRequest>(line)
            .map_err(|e| OipaError::InvalidConfig {
                what: format!("parsing request: {e}"),
            })
            .and_then(|request| {
                let response = service.solve(&request)?;
                let rendered = serde_json::to_string(&response).map_err(|e| OipaError::Io {
                    what: "serializing a response".to_string(),
                    detail: e.to_string(),
                })?;
                Ok((rendered, request, response))
            });
        match outcome {
            Ok((rendered, request, response)) => {
                let retained = check.then_some((lineno, request, response));
                (rendered, true, retained)
            }
            Err(e) => (
                format!(
                    "{{\"line\": {lineno}, \"error\": {}}}",
                    serde_json::to_string(&e.to_string()).expect("string serializes")
                ),
                false,
                None,
            ),
        }
    };

    let start = std::time::Instant::now();
    let outcomes: Vec<BatchOutcome> = if threads <= 1 {
        entries.iter().map(|(n, l)| solve_line(*n, l)).collect()
    } else {
        // The shim's parallel map preserves input order, so the output
        // JSONL lines land exactly where the sequential path puts them.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| OipaError::config(format!("building the worker pool: {e}")))?;
        pool.install(|| {
            use rayon::prelude::*;
            entries.par_iter().map(|(n, l)| solve_line(*n, l)).collect()
        })
    };
    let elapsed = start.elapsed().as_secs_f64();

    let mut lines_out: Vec<String> = Vec::with_capacity(outcomes.len());
    let mut responses: Vec<(usize, SolveRequest, SolveResponse)> = Vec::new();
    let mut ok = 0usize;
    let mut failed = 0usize;
    for (line, succeeded, retained) in outcomes {
        if succeeded {
            ok += 1;
        } else {
            failed += 1;
        }
        lines_out.push(line);
        responses.extend(retained);
    }
    if check {
        batch_check(&responses, failed)?;
    }

    let stats = service.arena_stats();
    let total = ok + failed;
    let summary = format!(
        "# batch: {total} requests, {ok} ok, {failed} failed in {elapsed:.2}s \
         ({:.2} req/s, {threads} thread(s)); arena: {} pools, {} hits, {} misses{}",
        total as f64 / elapsed.max(1e-9),
        stats.entries,
        stats.hits,
        stats.misses,
        if check { "; check passed" } else { "" }
    );
    match args.optional("out") {
        Some(out) => {
            let mut body = lines_out.join("\n");
            body.push('\n');
            std::fs::write(out, body).map_err(|e| io_err("writing responses", out, e))?;
            Ok(format!("wrote {total} response lines -> {out}\n{summary}"))
        }
        None => {
            lines_out.push(summary);
            Ok(lines_out.join("\n"))
        }
    }
}

/// `--check` invariants: no failed request, and every `bab`/`greedy`
/// request pair that differs only in the method must agree on the plan
/// (the agreement gate the CI batch fixture asserts).
///
/// Requests are grouped by their method-erased JSON rendering, so the
/// comparison is linear in the batch size.
fn batch_check(
    responses: &[(usize, SolveRequest, SolveResponse)],
    failed: usize,
) -> Result<(), OipaError> {
    if failed > 0 {
        return Err(OipaError::Mismatch {
            what: format!("--check: {failed} request(s) failed"),
        });
    }
    let mut groups: HashMap<String, Vec<(usize, Method, &oipa_core::AssignmentPlan)>> =
        HashMap::new();
    for (lineno, request, response) in responses {
        if !matches!(request.method, Method::Bab | Method::Greedy) {
            continue;
        }
        let mut erased = request.clone();
        erased.method = Method::Bab;
        let key = serde_json::to_string(&erased).map_err(|e| OipaError::Io {
            what: "serializing a request key".to_string(),
            detail: e.to_string(),
        })?;
        groups
            .entry(key)
            .or_default()
            .push((*lineno, request.method, &response.plan));
    }
    for group in groups.values() {
        let bab = group.iter().find(|(_, m, _)| *m == Method::Bab);
        let greedy = group.iter().find(|(_, m, _)| *m == Method::Greedy);
        if let (Some((line_a, _, plan_a)), Some((line_b, _, plan_b))) = (bab, greedy) {
            if plan_a != plan_b {
                return Err(OipaError::Mismatch {
                    what: format!(
                        "--check: lines {line_a} and {line_b} (bab vs greedy) disagree on the plan"
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_words(words: &[&str]) -> Result<String, OipaError> {
        let parsed =
            ParsedArgs::parse(words.iter().map(|s| s.to_string()).collect()).expect("parseable");
        run(&parsed)
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("oipa-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn full_pipeline_via_files() {
        let g = tmp("pipe.graph");
        let p = tmp("pipe.probs");
        let pool = tmp("pipe.pool");
        let campaign = tmp("pipe.campaign.json");
        let plan = tmp("pipe.plan.json");

        let report = run_words(&[
            "generate",
            "--dataset",
            "lastfm",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--out-graph",
            &g,
            "--out-probs",
            &p,
        ])
        .unwrap();
        assert!(report.contains("generated lastfm"));

        let report = run_words(&["stats", "--graph", &g, "--probs", &p]).unwrap();
        assert!(report.contains("topics 20"));

        let report = run_words(&[
            "sample",
            "--graph",
            &g,
            "--probs",
            &p,
            "--ell",
            "2",
            "--theta",
            "8000",
            "--seed",
            "7",
            "--threads",
            "2",
            "--out-pool",
            &pool,
            "--out-campaign",
            &campaign,
        ])
        .unwrap();
        assert!(report.contains("θ=8000"));

        let report = run_words(&[
            "solve",
            "--pool",
            &pool,
            "--method",
            "bab-p",
            "--k",
            "4",
            "--ratio",
            "0.5",
            "--max-nodes",
            "4",
            "--seed",
            "7",
            "--out-plan",
            &plan,
        ])
        .unwrap();
        assert!(report.contains("\"utility\""));
        assert!(report.contains("\"pool_cache_hit\": true"), "{report}");

        let report = run_words(&[
            "simulate",
            "--graph",
            &g,
            "--probs",
            &p,
            "--campaign",
            &campaign,
            "--plan",
            &plan,
            "--ratio",
            "0.5",
            "--runs",
            "100",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(report.contains("simulated adoption utility"));
    }

    #[test]
    fn import_with_synthesized_probs() {
        let edges = tmp("imp.edges");
        std::fs::write(&edges, "0 1\n1 2\n2 0\n").unwrap();
        let g = tmp("imp.graph");
        let p = tmp("imp.probs");
        let report = run_words(&[
            "import",
            "--edges",
            &edges,
            "--out-graph",
            &g,
            "--out-probs",
            &p,
            "--topics",
            "4",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(report.contains("imported 3 nodes, 3 edges"));
        let stats = run_words(&["stats", "--graph", &g, "--probs", &p]).unwrap();
        assert!(stats.contains("topics 4"));
    }

    #[test]
    fn solve_all_registry_methods() {
        let g = tmp("m.graph");
        let p = tmp("m.probs");
        let pool = tmp("m.pool");
        let campaign = tmp("m.campaign.json");
        run_words(&[
            "generate",
            "--dataset",
            "lastfm",
            "--scale",
            "tiny",
            "--seed",
            "8",
            "--out-graph",
            &g,
            "--out-probs",
            &p,
        ])
        .unwrap();
        run_words(&[
            "sample",
            "--graph",
            &g,
            "--probs",
            &p,
            "--ell",
            "2",
            "--theta",
            "4000",
            "--seed",
            "8",
            "--out-pool",
            &pool,
            "--out-campaign",
            &campaign,
        ])
        .unwrap();
        for method in ["greedy", "tim", "bab", "plain"] {
            let report = run_words(&[
                "solve",
                "--pool",
                &pool,
                "--method",
                method,
                "--k",
                "3",
                "--max-nodes",
                "2",
            ])
            .unwrap();
            assert!(report.contains("\"utility\""), "{method}: {report}");
        }
        // IM additionally needs the graph and table for its collapsed pool.
        let report = run_words(&[
            "solve", "--pool", &pool, "--method", "im", "--k", "3", "--graph", &g, "--probs", &p,
            "--theta", "4000",
        ])
        .unwrap();
        assert!(report.contains("\"utility\""), "im: {report}");
    }

    #[test]
    fn batch_streams_jsonl_through_one_session() {
        let g = tmp("b.graph");
        let p = tmp("b.probs");
        let requests = tmp("b.requests.jsonl");
        let out = tmp("b.responses.jsonl");
        run_words(&[
            "generate",
            "--dataset",
            "lastfm",
            "--scale",
            "tiny",
            "--seed",
            "4",
            "--out-graph",
            &g,
            "--out-probs",
            &p,
        ])
        .unwrap();
        // Three requests sharing one pool key (amortized), one distinct,
        // one malformed (the batch must continue past it).
        let body = r#"# seeded batch fixture
{"method":"bab","budget":2,"ell":2,"theta":3000,"seed":5,"promoter_fraction":0.4,"max_nodes":8}
{"method":"greedy","budget":2,"ell":2,"theta":3000,"seed":5,"promoter_fraction":0.4,"max_nodes":8}
{"method":"tim","budget":2,"ell":2,"theta":3000,"seed":5,"promoter_fraction":0.4,"max_nodes":8}
{"method":"warp","budget":2}
{"method":"bab","budget":2,"ell":2,"theta":2000,"seed":5,"promoter_fraction":0.4,"max_nodes":8}
"#;
        std::fs::write(&requests, body).unwrap();
        let report = run_words(&[
            "batch",
            "--requests",
            &requests,
            "--graph",
            &g,
            "--probs",
            &p,
            "--out",
            &out,
        ])
        .unwrap();
        assert!(report.contains("5 requests, 4 ok, 1 failed"), "{report}");
        assert!(report.contains("2 hits"), "one shared pool key: {report}");
        let lines: Vec<String> = std::fs::read_to_string(&out)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        assert_eq!(lines.len(), 5);
        let first: SolveResponse = serde_json::from_str(&lines[0]).unwrap();
        assert!(!first.pool_cache_hit);
        let second: SolveResponse = serde_json::from_str(&lines[1]).unwrap();
        assert!(second.pool_cache_hit, "second request reuses the pool");
        assert!(lines[3].contains("\"error\""), "{}", lines[3]);

        // A partial --graph/--probs pair is rejected, not ignored.
        let err = run_words(&[
            "batch",
            "--requests",
            &requests,
            "--pool",
            &tmp("nonexistent.pool"),
            "--graph",
            &g,
        ])
        .unwrap_err();
        assert!(
            err.to_string().contains("given together") || err.to_string().contains("reading pool"),
            "{err}"
        );

        // --check fails when any request failed…
        let err = run_words(&[
            "batch",
            "--requests",
            &requests,
            "--graph",
            &g,
            "--probs",
            &p,
            "--check",
            "true",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("failed"), "{err}");

        // …and passes on a clean fixture where bab and greedy agree.
        let clean = tmp("b.clean.jsonl");
        std::fs::write(
            &clean,
            r#"{"method":"bab","budget":2,"ell":2,"theta":3000,"seed":5,"promoter_fraction":0.4,"max_nodes":8}
{"method":"greedy","budget":2,"ell":2,"theta":3000,"seed":5,"promoter_fraction":0.4,"max_nodes":8}
"#,
        )
        .unwrap();
        let report = run_words(&[
            "batch",
            "--requests",
            &clean,
            "--graph",
            &g,
            "--probs",
            &p,
            "--check",
            "true",
        ])
        .unwrap();
        assert!(report.contains("check passed"), "{report}");
    }

    /// The checked-in CI fixture must keep passing `--check` end to end
    /// (all 10 requests solve, bab/greedy pairs agree, pools amortize).
    #[test]
    fn checked_in_batch_fixture_passes_check() {
        let g = tmp("fix.graph");
        let p = tmp("fix.probs");
        run_words(&[
            "generate",
            "--dataset",
            "lastfm",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--out-graph",
            &g,
            "--out-probs",
            &p,
        ])
        .unwrap();
        let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/batch10.jsonl");
        let report = run_words(&[
            "batch",
            "--requests",
            fixture,
            "--graph",
            &g,
            "--probs",
            &p,
            "--check",
            "true",
        ])
        .unwrap();
        assert!(report.contains("10 requests, 10 ok, 0 failed"), "{report}");
        assert!(report.contains("check passed"), "{report}");
        assert!(
            report.contains("8 hits"),
            "pool amortization broke: {report}"
        );
    }

    /// The full store lifecycle through the CLI: a graph-based solve
    /// populates the store, a rerun recalls the pool from disk, `verify`
    /// flags a corrupted segment, `gc` quarantines it, and `verify` is
    /// clean again.
    #[test]
    fn solve_with_store_dir_persists_and_recovers() {
        let g = tmp("st.graph");
        let p = tmp("st.probs");
        let dir = tmp("st.store");
        let _ = std::fs::remove_dir_all(&dir);
        run_words(&[
            "generate",
            "--dataset",
            "lastfm",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--out-graph",
            &g,
            "--out-probs",
            &p,
        ])
        .unwrap();
        let solve = |store: &str| {
            run_words(&[
                "solve",
                "--graph",
                &g,
                "--probs",
                &p,
                "--ell",
                "2",
                "--theta",
                "3000",
                "--k",
                "3",
                "--max-nodes",
                "8",
                "--seed",
                "5",
                "--store-dir",
                store,
                "--shards",
                "4",
                "--eviction",
                "lfu",
            ])
            .unwrap()
        };
        // Cold: samples, persists. Rerun ("restart"): served from disk.
        let cold = solve(&dir);
        assert!(cold.contains("\"pool_cache_hit\": false"), "{cold}");
        let warm = solve(&dir);
        assert!(warm.contains("\"pool_tier\": \"disk\""), "{warm}");
        assert!(warm.contains("\"pool_cache_hit\": true"), "{warm}");

        // Same answers on both paths.
        let plan_of = |report: &str| {
            let v: serde_json::Value = serde_json::from_str(report).unwrap();
            serde_json::to_string(v.get("plan").unwrap()).unwrap()
        };
        assert_eq!(plan_of(&cold), plan_of(&warm));

        let ls = run_words(&["store", "ls", "--dir", &dir]).unwrap();
        assert!(ls.contains("1 segments"), "{ls}");
        assert!(ls.contains("1 region(s)"), "{ls}");
        assert!(ls.contains("eviction lfu"), "{ls}");
        // Fingerprints and epochs render as zero-padded hex, the pool is
        // live at the lineage head, and no purge has ever happened.
        assert!(ls.contains("live"), "{ls}");
        assert!(ls.contains("lineage "), "{ls}");
        assert!(ls.contains("epoch 0000, 0 stale"), "{ls}");
        assert!(!ls.contains("purge"), "{ls}");
        assert!(run_words(&["store", "verify", "--dir", &dir])
            .unwrap()
            .contains("1 segment(s) verified clean"));

        // Corrupt one payload byte: verify must flag it (exit-2 error)…
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(oipa_store::REGION_PREFIX)
            })
            .expect("a region file")
            .path();
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&seg, &bytes).unwrap();
        let err = run_words(&["store", "verify", "--dir", &dir]).unwrap_err();
        assert!(err.to_string().contains("CORRUPT"), "{err}");
        assert_eq!(err.exit_code(), 2);

        // …gc quarantines it, and verify is clean again — and lists the
        // set-aside file with its recorded reason.
        let gc = run_words(&["store", "gc", "--dir", &dir]).unwrap();
        assert!(gc.contains("quarantined 1 corrupt"), "{gc}");
        let verify = run_words(&["store", "verify", "--dir", &dir]).unwrap();
        assert!(verify.contains("0 segment(s) verified clean"), "{verify}");
        assert!(verify.contains("1 in quarantine"), "{verify}");
        assert!(verify.contains("quarantined "), "{verify}");
        // The next stored solve goes cold again (the segment is gone).
        let resampled = solve(&dir);
        assert!(
            resampled.contains("\"pool_cache_hit\": false"),
            "{resampled}"
        );
    }

    /// `--fault-schedule` (dev flag): a disk-full first segment write
    /// must not fail the solve — the answer comes back, the store just
    /// has nothing persisted. A bad spec is rejected loudly.
    #[test]
    fn solve_with_fault_schedule_survives_disk_full() {
        let g = tmp("fs.graph");
        let p = tmp("fs.probs");
        let dir = tmp("fs.store");
        let _ = std::fs::remove_dir_all(&dir);
        run_words(&[
            "generate",
            "--dataset",
            "lastfm",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--out-graph",
            &g,
            "--out-probs",
            &p,
        ])
        .unwrap();
        // Writes #0/#1 are the open's manifest persist and the instance
        // stamp; write #2 is the segment this solve tries to spill —
        // where the disk "fills up".
        let report = run_words(&[
            "solve",
            "--graph",
            &g,
            "--probs",
            &p,
            "--ell",
            "2",
            "--theta",
            "2000",
            "--k",
            "3",
            "--max-nodes",
            "8",
            "--seed",
            "5",
            "--store-dir",
            &dir,
            "--fault-schedule",
            "write:enospc=2",
        ])
        .unwrap();
        assert!(report.contains("\"pool_cache_hit\": false"), "{report}");
        let ls = run_words(&["store", "ls", "--dir", &dir]).unwrap();
        assert!(ls.contains("0 segments"), "{ls}");

        let err = run_words(&[
            "solve",
            "--graph",
            &g,
            "--probs",
            &p,
            "--ell",
            "2",
            "--store-dir",
            &dir,
            "--fault-schedule",
            "write:banana=1",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("fault-schedule"), "{err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn solve_from_graph_needs_ell() {
        let g = tmp("ne.graph");
        let p = tmp("ne.probs");
        run_words(&[
            "generate",
            "--dataset",
            "lastfm",
            "--scale",
            "tiny",
            "--seed",
            "3",
            "--out-graph",
            &g,
            "--out-probs",
            &p,
        ])
        .unwrap();
        let err = run_words(&["solve", "--graph", &g, "--probs", &p]).unwrap_err();
        assert!(err.to_string().contains("--ell"), "{err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn bench_store_smoke() {
        let out = tmp("bench_store.json");
        let dir = tmp("bench_store.dir");
        let report = run_words(&[
            "bench",
            "store",
            "--smoke",
            "true",
            "--out",
            &out,
            "--store-dir",
            &dir,
        ])
        .unwrap();
        assert!(report.contains("disk_warm"), "{report}");
        assert!(report.contains("speedup"), "{report}");
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("oipa.bench.store/v2"));
    }

    #[test]
    fn bench_solver_smoke() {
        let out = tmp("bench_solver.json");
        let report = run_words(&["bench", "solver", "--smoke", "true", "--out", &out]).unwrap();
        assert!(report.contains("bab-celf"), "{report}");
        assert!(report.contains("speedup"), "{report}");
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("oipa.bench.solver/v1"));
        // Unknown suites are rejected with the available list.
        let err = run_words(&["bench", "nope"]).unwrap_err();
        assert!(err.to_string().contains("available: solver, service"));
    }

    #[test]
    fn bench_service_smoke() {
        let out = tmp("bench_service.json");
        let report = run_words(&["bench", "service", "--smoke", "true", "--out", &out]).unwrap();
        assert!(report.contains("warm"), "{report}");
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("oipa.bench.service/v1"));
    }

    #[test]
    fn bench_concurrent_smoke() {
        let out = tmp("bench_concurrent.json");
        let report = run_words(&["bench", "concurrent", "--smoke", "true", "--out", &out]).unwrap();
        assert!(report.contains("cold race"), "{report}");
        assert!(report.contains("sampled exactly once: true"), "{report}");
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("oipa.bench.concurrent/v2"));
    }

    #[test]
    fn bench_dynamic_smoke() {
        let out = tmp("bench_dynamic.json");
        let report = run_words(&["bench", "dynamic", "--smoke", "true", "--out", &out]).unwrap();
        assert!(report.contains("single_edge"), "{report}");
        assert!(report.contains("one_percent"), "{report}");
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("oipa.bench.dynamic/v1"));
    }

    /// `batch --threads N` must produce the same answers, in the same
    /// order, as the sequential path — only the summary's timing and
    /// thread count may differ.
    #[test]
    fn threaded_batch_matches_sequential_output() {
        let g = tmp("tb.graph");
        let p = tmp("tb.probs");
        let requests = tmp("tb.requests.jsonl");
        run_words(&[
            "generate",
            "--dataset",
            "lastfm",
            "--scale",
            "tiny",
            "--seed",
            "6",
            "--out-graph",
            &g,
            "--out-probs",
            &p,
        ])
        .unwrap();
        // Six requests over two pool keys, one malformed line (both modes
        // must place its error object at the same position).
        let body = r#"{"method":"bab","budget":2,"ell":2,"theta":3000,"seed":5,"promoter_fraction":0.4,"max_nodes":8}
{"method":"greedy","budget":2,"ell":2,"theta":3000,"seed":5,"promoter_fraction":0.4,"max_nodes":8}
{"method":"tim","budget":2,"ell":2,"theta":3000,"seed":5,"promoter_fraction":0.4,"max_nodes":8}
{"method":"warp","budget":2}
{"method":"bab","budget":3,"ell":2,"theta":2000,"seed":5,"promoter_fraction":0.4,"max_nodes":8}
{"method":"greedy","budget":3,"ell":2,"theta":2000,"seed":5,"promoter_fraction":0.4,"max_nodes":8}
"#;
        std::fs::write(&requests, body).unwrap();
        let run_with = |threads: &str, out: &str| {
            run_words(&[
                "batch",
                "--requests",
                &requests,
                "--graph",
                &g,
                "--probs",
                &p,
                "--threads",
                threads,
                "--out",
                out,
            ])
            .unwrap()
        };
        let seq_out = tmp("tb.seq.jsonl");
        let par_out = tmp("tb.par.jsonl");
        let seq_report = run_with("1", &seq_out);
        let par_report = run_with("3", &par_out);
        assert!(
            seq_report.contains("6 requests, 5 ok, 1 failed"),
            "{seq_report}"
        );
        assert!(
            par_report.contains("6 requests, 5 ok, 1 failed"),
            "{par_report}"
        );
        assert!(par_report.contains("3 thread(s)"), "{par_report}");

        let read_lines = |path: &str| -> Vec<String> {
            std::fs::read_to_string(path)
                .unwrap()
                .lines()
                .map(String::from)
                .collect()
        };
        let seq_lines = read_lines(&seq_out);
        let par_lines = read_lines(&par_out);
        assert_eq!(seq_lines.len(), 6);
        assert_eq!(par_lines.len(), 6);
        for (i, (s, p)) in seq_lines.iter().zip(&par_lines).enumerate() {
            if s.contains("\"error\"") {
                assert_eq!(s, p, "line {i}: error objects must match");
                continue;
            }
            let a: SolveResponse = serde_json::from_str(s).unwrap();
            let b: SolveResponse = serde_json::from_str(p).unwrap();
            assert_eq!(a.plan, b.plan, "line {i}: plans diverged across modes");
            assert_eq!(
                a.utility.to_bits(),
                b.utility.to_bits(),
                "line {i}: utilities diverged across modes"
            );
            assert_eq!(a.theta, b.theta, "line {i}");
            assert_eq!(a.method, b.method, "line {i}: output order broke");
        }

        // --threads 0 is rejected up front.
        let err = run_words(&[
            "batch",
            "--requests",
            &requests,
            "--graph",
            &g,
            "--probs",
            &p,
            "--threads",
            "0",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--threads"), "{err}");
    }

    #[test]
    fn helpful_errors_and_exit_codes() {
        let missing_flag = run_words(&["stats"]).unwrap_err();
        assert!(missing_flag.to_string().contains("--graph"));
        assert_eq!(missing_flag.exit_code(), 2, "user error exits 2");

        let io = run_words(&["solve", "--pool", "/nonexistent.pool"]).unwrap_err();
        assert!(io.to_string().contains("reading pool"));
        assert_eq!(io.exit_code(), 1, "environment error exits 1");

        let method =
            run_words(&["solve", "--pool", "/nonexistent.pool", "--method", "magic"]).unwrap_err();
        assert!(
            method.to_string().contains("registered solvers"),
            "{method}"
        );
        assert_eq!(method.exit_code(), 2);
    }

    #[test]
    fn obs_table_renders_typed_aligned_rows() {
        let exposition = "\
# HELP oipa_http_requests_total Requests answered.\n\
# TYPE oipa_http_requests_total counter\n\
oipa_http_requests_total{endpoint=\"/solve\",status=\"200\"} 5\n\
# HELP oipa_http_request_seconds Request latency.\n\
# TYPE oipa_http_request_seconds histogram\n\
oipa_http_request_seconds_bucket{endpoint=\"/solve\",le=\"+Inf\"} 5\n\
oipa_http_request_seconds_count{endpoint=\"/solve\"} 5\n\
# HELP oipa_uptime_seconds Uptime.\n\
# TYPE oipa_uptime_seconds gauge\n\
oipa_uptime_seconds 1.5\n";
        let table = render_metrics_table(exposition).unwrap();
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].starts_with("series"), "{table}");
        assert!(
            lines[1].contains("counter") && lines[1].ends_with('5'),
            "{table}"
        );
        assert!(
            lines[2].contains("histogram") && lines[2].contains("le=\"+Inf\""),
            "{table}"
        );
        assert!(lines[3].contains("histogram"), "_count resolves: {table}");
        assert!(lines[4].contains("gauge"), "{table}");
        assert!(lines[5].contains("4 series across 3 families"), "{table}");
        // All rows align their type column.
        let col = lines[1].find("counter").unwrap();
        assert_eq!(lines[2].find("histogram"), Some(col), "{table}");
        assert_eq!(lines[4].find("gauge"), Some(col), "{table}");

        assert!(render_metrics_table("").is_err(), "empty exposition");
        assert!(render_metrics_table("junk without value\n# TYPE x counter\n").is_err());
    }

    #[test]
    fn obs_dump_scrapes_a_live_server() {
        let (graph, probs, _campaign) = oipa_sampler::testkit::fig1();
        let service = std::sync::Arc::new(std::sync::RwLock::new(
            PlannerService::new(graph, probs).unwrap(),
        ));
        let handle = oipa_server::Server::spawn(
            std::sync::Arc::clone(&service),
            oipa_server::ServerConfig::default(),
        )
        .unwrap();
        let addr = handle.addr().to_string();

        let table = run_words(&["obs", "dump", "--addr", &addr]).unwrap();
        assert!(table.contains("oipa_build_info"), "{table}");
        assert!(table.contains("oipa_store_mem_lookups_total"), "{table}");
        assert!(table.contains("series across"), "{table}");

        let err = run_words(&["obs", "wat", "--addr", &addr]).unwrap_err();
        assert!(err.to_string().contains("unknown obs action"), "{err}");
        handle.shutdown();

        let err = run_words(&["obs", "dump", "--addr", &addr]).unwrap_err();
        assert_eq!(err.exit_code(), 1, "a dead server is an I/O error");
    }

    #[test]
    fn plan_campaign_mismatch_detected() {
        let g = tmp("mm.graph");
        let p = tmp("mm.probs");
        run_words(&[
            "generate",
            "--dataset",
            "lastfm",
            "--scale",
            "tiny",
            "--seed",
            "9",
            "--out-graph",
            &g,
            "--out-probs",
            &p,
        ])
        .unwrap();
        let campaign = tmp("mm.campaign.json");
        let plan = tmp("mm.plan.json");
        // 3-piece campaign, 2-piece plan.
        let mut rng = StdRng::seed_from_u64(1);
        save_json(
            &Campaign::sample_one_hot(&mut rng, 20, 3),
            &campaign,
            "campaign",
        )
        .unwrap();
        save_json(&oipa_core::AssignmentPlan::empty(2), &plan, "plan").unwrap();
        let err = run_words(&[
            "simulate",
            "--graph",
            &g,
            "--probs",
            &p,
            "--campaign",
            &campaign,
            "--plan",
            &plan,
        ])
        .unwrap_err();
        assert!(err.to_string().contains("pieces"));
        assert_eq!(err.exit_code(), 2);
    }
}
