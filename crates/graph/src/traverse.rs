//! Traversals: BFS reachability, forward/backward closure, weakly-connected
//! components.
//!
//! These power the cascade simulator (forward closure over a sampled live
//! subgraph) and dataset sanity checks (component structure of generated
//! networks).

use crate::csr::{DiGraph, NodeId};

/// Reusable BFS scratch space with O(1) reset via visit stamps.
///
/// RR-set sampling performs millions of tiny BFS runs; clearing a `visited`
/// bitmap each time would dominate. Instead each run bumps a stamp and
/// marks nodes with it, so reset is a single increment.
#[derive(Debug, Clone)]
pub struct BfsScratch {
    stamp: u32,
    marks: Vec<u32>,
    queue: Vec<NodeId>,
}

impl BfsScratch {
    /// Creates scratch space for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        BfsScratch {
            stamp: 0,
            marks: vec![0; n],
            queue: Vec::new(),
        }
    }

    /// Begins a new traversal epoch; all nodes become unvisited.
    #[inline]
    pub fn begin(&mut self) {
        self.stamp = self.stamp.checked_add(1).unwrap_or_else(|| {
            // Stamp overflow after 2^32 epochs: do a full reset once.
            self.marks.iter_mut().for_each(|m| *m = 0);
            1
        });
        self.queue.clear();
    }

    /// Marks `v` visited in the current epoch; returns `true` if newly marked.
    #[inline]
    pub fn mark(&mut self, v: NodeId) -> bool {
        let slot = &mut self.marks[v as usize];
        if *slot == self.stamp {
            false
        } else {
            *slot = self.stamp;
            true
        }
    }

    /// Whether `v` has been visited in the current epoch.
    #[inline]
    pub fn is_marked(&self, v: NodeId) -> bool {
        self.marks[v as usize] == self.stamp
    }

    /// Access to the internal queue buffer (for callers running their own BFS).
    #[inline]
    pub fn queue_mut(&mut self) -> &mut Vec<NodeId> {
        &mut self.queue
    }
}

/// Nodes reachable from `source` following out-edges (including `source`).
pub fn forward_reachable(graph: &DiGraph, source: NodeId) -> Vec<NodeId> {
    bfs(graph, source, Direction::Forward)
}

/// Nodes that can reach `target` following out-edges, i.e. the backward
/// closure (including `target`).
pub fn backward_reachable(graph: &DiGraph, target: NodeId) -> Vec<NodeId> {
    bfs(graph, target, Direction::Backward)
}

enum Direction {
    Forward,
    Backward,
}

fn bfs(graph: &DiGraph, start: NodeId, dir: Direction) -> Vec<NodeId> {
    assert!((start as usize) < graph.node_count(), "start out of range");
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    visited[start as usize] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        let neighbors: &[NodeId] = match dir {
            Direction::Forward => graph.out_neighbors(u),
            Direction::Backward => graph.in_neighbors(u),
        };
        for &v in neighbors {
            if !visited[v as usize] {
                visited[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Weakly-connected component labelling.
///
/// Returns `(labels, component_count)` where `labels[v]` is a dense id in
/// `0..component_count`.
pub fn weakly_connected_components(graph: &DiGraph) -> (Vec<u32>, usize) {
    let n = graph.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as NodeId {
        if labels[s as usize] != u32::MAX {
            continue;
        }
        labels[s as usize] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in graph.out_neighbors(u).iter().chain(graph.in_neighbors(u)) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (labels, next as usize)
}

/// Size of the largest weakly-connected component.
pub fn largest_wcc_size(graph: &DiGraph) -> usize {
    let (labels, count) = weakly_connected_components(graph);
    let mut sizes = vec![0usize; count];
    for l in labels {
        sizes[l as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn forward_closure() {
        let g = chain();
        assert_eq!(forward_reachable(&g, 1), vec![1, 2, 3]);
        assert_eq!(forward_reachable(&g, 3), vec![3]);
    }

    #[test]
    fn backward_closure() {
        let g = chain();
        assert_eq!(backward_reachable(&g, 2), vec![2, 1, 0]);
        assert_eq!(backward_reachable(&g, 0), vec![0]);
    }

    #[test]
    fn components() {
        let g = DiGraph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[0]);
        assert_eq!(largest_wcc_size(&g), 2);
    }

    #[test]
    fn scratch_stamps() {
        let mut s = BfsScratch::new(3);
        s.begin();
        assert!(s.mark(0));
        assert!(!s.mark(0));
        assert!(s.is_marked(0));
        assert!(!s.is_marked(1));
        s.begin();
        assert!(!s.is_marked(0));
        assert!(s.mark(0));
    }

    #[test]
    fn direction_matters_on_cycle_tail() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]).unwrap();
        assert_eq!(forward_reachable(&g, 0).len(), 3);
        assert_eq!(backward_reachable(&g, 0).len(), 2); // 0 and 1, not 2
    }
}
