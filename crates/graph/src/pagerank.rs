//! PageRank by power iteration.
//!
//! Centrality heuristics are the cheap end of the influence-maximization
//! baseline spectrum (pick the k most "important" users and hope). The
//! bench suite uses PageRank and degree baselines to calibrate how much
//! of BAB's win comes from optimization rather than from just knowing who
//! the hubs are.

use crate::csr::{DiGraph, NodeId};

/// PageRank parameters.
#[derive(Debug, Clone, Copy)]
pub struct PageRankParams {
    /// Damping factor (probability of following an out-link).
    pub damping: f64,
    /// Convergence threshold on the L1 delta between iterations.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankParams {
    fn default() -> Self {
        PageRankParams {
            damping: 0.85,
            tolerance: 1e-9,
            max_iterations: 100,
        }
    }
}

/// Computes PageRank scores (summing to 1). Dangling mass is spread
/// uniformly, the standard convention.
pub fn pagerank(graph: &DiGraph, params: PageRankParams) -> Vec<f64> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    assert!((0.0..1.0).contains(&params.damping));
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..params.max_iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0f64;
        for u in 0..n as NodeId {
            let out = graph.out_degree(u);
            if out == 0 {
                dangling += rank[u as usize];
            } else {
                let share = rank[u as usize] / out as f64;
                for &v in graph.out_neighbors(u) {
                    next[v as usize] += share;
                }
            }
        }
        let base = (1.0 - params.damping) * uniform + params.damping * dangling * uniform;
        let mut delta = 0.0f64;
        for v in 0..n {
            let new = base + params.damping * next[v];
            delta += (new - rank[v]).abs();
            rank[v] = new;
        }
        if delta < params.tolerance {
            break;
        }
    }
    rank
}

/// The `k` nodes with the highest scores, descending (stable tie-break on
/// node id).
pub fn top_k_by_score(scores: &[f64], k: usize) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..scores.len() as NodeId).collect();
    order.sort_unstable_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .expect("scores are finite")
            .then_with(|| a.cmp(&b))
    });
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_to_one() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let g = crate::generators::erdos_renyi_gnm(&mut rng, 100, 600);
        let pr = pagerank(&g, PageRankParams::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(pr.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn sink_collects_rank() {
        // 0 -> 2, 1 -> 2: node 2 must outrank its feeders.
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let pr = pagerank(&g, PageRankParams::default());
        assert!(pr[2] > pr[0] && pr[2] > pr[1]);
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let pr = pagerank(&g, PageRankParams::default());
        for &p in &pr {
            assert!((p - 0.25).abs() < 1e-6, "{pr:?}");
        }
    }

    #[test]
    fn dangling_mass_redistributed() {
        // 0 -> 1, 1 dangles. Ranks must still sum to 1.
        let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        let pr = pagerank(&g, PageRankParams::default());
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr[1] > pr[0]);
    }

    #[test]
    fn top_k_ordering() {
        let scores = [0.1, 0.5, 0.3, 0.5];
        assert_eq!(top_k_by_score(&scores, 3), vec![1, 3, 2]);
        assert_eq!(top_k_by_score(&scores, 0), Vec::<u32>::new());
        assert_eq!(top_k_by_score(&scores, 10).len(), 4);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]).unwrap();
        assert!(pagerank(&g, PageRankParams::default()).is_empty());
    }
}
