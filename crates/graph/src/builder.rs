//! Incremental graph construction with configurable edge deduplication.

use crate::csr::{DiGraph, NodeId};
use crate::hashing::FxHashSet;

/// How [`GraphBuilder`] treats duplicate and self-loop edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupPolicy {
    /// Keep everything verbatim (parallel edges and self-loops allowed).
    KeepAll,
    /// Drop exact duplicate `(u, v)` pairs; self-loops allowed.
    #[default]
    DropDuplicates,
    /// Drop duplicates and self-loops — the setting used for all the
    /// paper-style social graphs, where an edge is a follow/friend relation.
    Simple,
}

/// Incremental builder producing a [`DiGraph`].
///
/// The builder grows the node set automatically: adding edge `(u, v)`
/// extends the graph to `max(u, v) + 1` nodes. Isolated trailing nodes can
/// be declared with [`GraphBuilder::ensure_nodes`].
///
/// ```
/// use oipa_graph::{DedupPolicy, GraphBuilder};
///
/// let mut b = GraphBuilder::with_policy(DedupPolicy::Simple);
/// b.add_edge(0, 1);
/// b.add_edge(0, 1); // duplicate: dropped
/// b.add_undirected(1, 2);
/// let g = b.build().unwrap();
/// assert_eq!(g.edge_count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<(NodeId, NodeId)>,
    policy: DedupPolicy,
    seen: FxHashSet<u64>,
    dropped: usize,
}

impl GraphBuilder {
    /// Creates a builder with the default [`DedupPolicy::DropDuplicates`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with an explicit dedup policy.
    pub fn with_policy(policy: DedupPolicy) -> Self {
        GraphBuilder {
            policy,
            ..Self::default()
        }
    }

    /// Pre-allocates room for `edges` edges.
    pub fn with_capacity(policy: DedupPolicy, edges: usize) -> Self {
        let mut b = Self::with_policy(policy);
        b.edges.reserve(edges);
        if policy != DedupPolicy::KeepAll {
            b.seen.reserve(edges);
        }
        b
    }

    /// Ensures the graph has at least `n` nodes.
    pub fn ensure_nodes(&mut self, n: u32) -> &mut Self {
        self.n = self.n.max(n);
        self
    }

    /// Adds one directed edge, subject to the dedup policy.
    ///
    /// Returns `true` if the edge was kept.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if self.policy == DedupPolicy::Simple && u == v {
            self.dropped += 1;
            return false;
        }
        if self.policy != DedupPolicy::KeepAll {
            let key = ((u as u64) << 32) | v as u64;
            if !self.seen.insert(key) {
                self.dropped += 1;
                return false;
            }
        }
        self.n = self.n.max(u.max(v).saturating_add(1));
        self.edges.push((u, v));
        true
    }

    /// Adds both `(u, v)` and `(v, u)` — the paper's "bidirectional friend"
    /// relationship.
    pub fn add_undirected(&mut self, u: NodeId, v: NodeId) -> bool {
        let a = self.add_edge(u, v);
        let b = self.add_edge(v, u);
        a || b
    }

    /// Number of edges currently kept.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of edges dropped by the dedup policy so far.
    pub fn dropped_count(&self) -> usize {
        self.dropped
    }

    /// Current node count.
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// Finalizes into a CSR [`DiGraph`].
    pub fn build(self) -> crate::Result<DiGraph> {
        DiGraph::from_edges(self.n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_node_set() {
        let mut b = GraphBuilder::new();
        b.add_edge(3, 7);
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn drop_duplicates() {
        let mut b = GraphBuilder::new();
        assert!(b.add_edge(0, 1));
        assert!(!b.add_edge(0, 1));
        assert!(b.add_edge(1, 0));
        assert_eq!(b.dropped_count(), 1);
        assert_eq!(b.build().unwrap().edge_count(), 2);
    }

    #[test]
    fn simple_rejects_self_loops() {
        let mut b = GraphBuilder::with_policy(DedupPolicy::Simple);
        assert!(!b.add_edge(2, 2));
        assert!(b.add_edge(2, 3));
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn keep_all_keeps_everything() {
        let mut b = GraphBuilder::with_policy(DedupPolicy::KeepAll);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        assert_eq!(b.build().unwrap().edge_count(), 3);
    }

    #[test]
    fn undirected_adds_both() {
        let mut b = GraphBuilder::new();
        b.add_undirected(0, 1);
        let g = b.build().unwrap();
        assert!(g.find_edge(0, 1).is_some());
        assert!(g.find_edge(1, 0).is_some());
    }

    #[test]
    fn ensure_nodes_adds_isolated() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_nodes(10);
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.out_degree(9), 0);
    }
}
