//! Streaming CRC-32 (IEEE 802.3) for binary file formats.
//!
//! The persistent pool store writes multi-megabyte segment files that must
//! survive partial writes, torn renames and bit rot; every checksummed
//! format in the workspace (pool binio v2, store segments) shares this one
//! implementation. The polynomial is the reflected IEEE polynomial
//! `0xEDB88320` — the same CRC as zlib/gzip — computed with the
//! slicing-by-8 technique (eight lazily built 256-entry tables, 8 bytes
//! per step), so checksumming a disk-warm pool read stays a small
//! fraction of the read itself rather than dominating it.

use std::io::{Read, Write};
use std::sync::OnceLock;

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 tables: `t[0]` is the classic byte table; `t[k][i]`
/// advances a byte through `k` further zero bytes, letting one step fold
/// eight input bytes into the state at once.
fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        for k in 1..8 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// An incremental CRC-32 accumulator.
///
/// ```
/// use oipa_graph::checksum::Crc32;
///
/// let mut crc = Crc32::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finish(), 0xCBF4_3926); // the standard check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = tables();
        let mut c = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = c ^ u32::from_le_bytes(chunk[..4].try_into().expect("4-byte half"));
            let hi = u32::from_le_bytes(chunk[4..].try_into().expect("4-byte half"));
            c = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum of everything fed so far (the accumulator stays
    /// usable; further updates continue the stream).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// A [`Read`] adapter that checksums every byte the caller consumes.
///
/// Wrap it *around* any buffering (`Crc32Reader::new(BufReader::new(f))`)
/// so read-ahead does not pull unconsumed bytes into the digest.
pub struct Crc32Reader<R> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> Crc32Reader<R> {
    /// Wraps a reader.
    pub fn new(inner: R) -> Self {
        Crc32Reader {
            inner,
            crc: Crc32::new(),
        }
    }

    /// The checksum of everything read so far.
    pub fn digest(&self) -> u32 {
        self.crc.finish()
    }

    /// The wrapped reader, for reading trailing bytes (e.g. a stored
    /// checksum) without feeding them into the digest.
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: Read> Read for Crc32Reader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

/// A [`Write`] adapter that checksums every byte written through it.
pub struct Crc32Writer<W> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> Crc32Writer<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        Crc32Writer {
            inner,
            crc: Crc32::new(),
        }
    }

    /// The checksum of everything written so far.
    pub fn digest(&self) -> u32 {
        self.crc.finish()
    }

    /// The wrapped writer, for appending trailing bytes (e.g. the stored
    /// checksum itself) without feeding them into the digest.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: Write> Write for Crc32Writer<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut inc = Crc32::new();
        for chunk in data.chunks(7) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data: Vec<u8> = (0..64u8).collect();
        let clean = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 1;
            assert_ne!(crc32(&data), clean, "flip at {i} undetected");
            data[i] ^= 1;
        }
    }

    #[test]
    fn reader_and_writer_adapters_agree() {
        let data: Vec<u8> = (0..200u8).collect();
        let mut sink = Vec::new();
        let mut w = Crc32Writer::new(&mut sink);
        w.write_all(&data).unwrap();
        assert_eq!(w.digest(), crc32(&data));

        let mut r = Crc32Reader::new(&data[..]);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(r.digest(), crc32(&data));
    }

    #[test]
    fn reader_digest_covers_only_consumed_bytes() {
        let data = b"payloadTRAILER";
        let mut r = Crc32Reader::new(&data[..]);
        let mut head = [0u8; 7];
        r.read_exact(&mut head).unwrap();
        assert_eq!(r.digest(), crc32(b"payload"));
        // The trailer stays readable through the inner reader, unhashed.
        let mut tail = Vec::new();
        r.get_mut().read_to_end(&mut tail).unwrap();
        assert_eq!(&tail, b"TRAILER");
        assert_eq!(r.digest(), crc32(b"payload"));
    }
}
