//! Compact binary serialization for graphs.
//!
//! Edge-list text files are convenient but slow and large; pipelines that
//! repeatedly load multi-million-edge graphs (the `dblp`/`tweet` scales)
//! want a mmap-friendly binary form. The format is little-endian,
//! magic-tagged and versioned:
//!
//! ```text
//! [8]  magic  "OIPAGRPH"
//! [4]  version (u32)
//! [4]  n (u32)
//! [8]  m (u64)
//! [m·8] edges as (u32 source, u32 target) pairs in edge-id order
//! ```
//!
//! The same primitive helpers ([`write_u32_slice`] et al.) are reused by
//! the probability-table and RR-pool serializers in the other crates.

use crate::csr::DiGraph;
use crate::{GraphError, Result};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"OIPAGRPH";
const VERSION: u32 = 1;

/// Writes a `u32` little-endian.
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes a `u64` little-endian.
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes an `f32` little-endian.
pub fn write_f32<W: Write>(w: &mut W, v: f32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u32` little-endian.
pub fn read_u32<R: Read>(r: &mut R) -> std::io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Reads a `u64` little-endian.
pub fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Reads an `f32` little-endian.
pub fn read_f32<R: Read>(r: &mut R) -> std::io::Result<f32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

/// Bulk-writes a `u32` slice (length-prefixed).
pub fn write_u32_slice<W: Write>(w: &mut W, vs: &[u32]) -> std::io::Result<()> {
    write_u64(w, vs.len() as u64)?;
    for &v in vs {
        write_u32(w, v)?;
    }
    Ok(())
}

/// Bulk-reads a `u32` slice written by [`write_u32_slice`].
pub fn read_u32_slice<R: Read>(r: &mut R) -> std::io::Result<Vec<u32>> {
    let len = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(len.min(1 << 28));
    for _ in 0..len {
        out.push(read_u32(r)?);
    }
    Ok(out)
}

/// Serializes a graph to a writer.
pub fn write_graph<W: Write>(graph: &DiGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u32(&mut w, graph.node_count() as u32)?;
    write_u64(&mut w, graph.edge_count() as u64)?;
    for e in graph.edges() {
        write_u32(&mut w, e.source)?;
        write_u32(&mut w, e.target)?;
    }
    w.flush()?;
    Ok(())
}

/// Deserializes a graph from a reader.
pub fn read_graph<R: Read>(reader: R) -> Result<DiGraph> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            message: "bad magic: not an OIPA graph file".to_string(),
        });
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("unsupported graph file version {version}"),
        });
    }
    let n = read_u32(&mut r)?;
    let m = read_u64(&mut r)? as usize;
    let mut edges = Vec::with_capacity(m.min(1 << 28));
    for _ in 0..m {
        let u = read_u32(&mut r)?;
        let v = read_u32(&mut r)?;
        edges.push((u, v));
    }
    DiGraph::from_edges(n, &edges)
}

/// Serializes a graph to a file.
pub fn write_graph_file<P: AsRef<Path>>(graph: &DiGraph, path: P) -> Result<()> {
    write_graph(graph, std::fs::File::create(path)?)
}

/// Deserializes a graph from a file.
pub fn read_graph_file<P: AsRef<Path>>(path: P) -> Result<DiGraph> {
    read_graph(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_small() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_random() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = crate::generators::erdos_renyi_gnm(&mut rng, 200, 1500);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        assert_eq!(read_graph(&buf[..]).unwrap(), g);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_graph(&b"NOTAGRPH\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn rejects_truncated() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_graph(&buf[..]).is_err());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = DiGraph::from_edges(0, &[]).unwrap();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        assert_eq!(read_graph(&buf[..]).unwrap(), g);
    }

    #[test]
    fn slice_helpers_roundtrip() {
        let vs = vec![0u32, 1, u32::MAX, 42];
        let mut buf = Vec::new();
        write_u32_slice(&mut buf, &vs).unwrap();
        assert_eq!(read_u32_slice(&mut &buf[..]).unwrap(), vs);
    }
}
