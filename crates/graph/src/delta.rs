//! Graph deltas and epoch-stamped fingerprint lineages.
//!
//! The OIPA pipeline was originally frozen-graph: pools were sampled once
//! against an immutable [`DiGraph`] and a single content fingerprint tied
//! every cache to it. Real influence graphs churn — edges appear and
//! disappear, probabilities get re-estimated — so this module introduces
//! the *delta* model:
//!
//! * [`GraphDelta`] — a batch of edge insertions, removals and per-edge
//!   topic-probability updates, with a content [`GraphDelta::digest`].
//! * [`DiGraph::apply_delta`] — rebuilds the CSR for the post-delta edge
//!   set and reports a [`DeltaApplication`]: the new graph, an old→new
//!   edge-id remap (CSR ids are dense and source-sorted, so they shift),
//!   and the set of *dirty targets* — nodes whose in-edge row changed.
//! * [`Lineage`] — an epoch chain of fingerprints where
//!   `fingerprint(epoch N) = mix(fingerprint(N − 1), delta_digest)`.
//!   Two instances share ancestry iff one chain is a prefix of the other
//!   (up to a divergence point); caches keyed by lineage can therefore
//!   distinguish "stale but repairable" from "unrelated, purge".
//!
//! Dirty targets are the load-bearing output: reverse-reachable sampling
//! only ever iterates `in_edges(v)` of visited nodes, so a stored RR walk
//! is affected by a delta **iff** its visited set contains a dirty
//! target. Everything the sampler needs to classify walks as live or dead
//! is in [`DeltaApplication::dirty_targets`].
//!
//! Deltas are edge-only by design: the node count never changes, so root
//! sequences drawn for a pre-delta graph remain valid afterwards.

use crate::hashing::{FxHashMap, FxHasher};
use crate::{DiGraph, EdgeId, GraphError, NodeId};
use serde::{de, Deserialize, Error as SerdeError, Serialize, Value};
use std::collections::VecDeque;
use std::hash::Hasher as _;

/// One sparse topic-probability entry carried by a delta.
///
/// Plain data on purpose: `oipa-graph` knows nothing about probability
/// tables; the topic layer interprets these rows when rebuilding its CSR.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopicProb {
    /// Topic index into the table's `0..topic_count` space.
    pub topic: u16,
    /// Influence probability `p(e | topic)` in `[0, 1]`.
    pub prob: f32,
}

/// An edge mutation that carries a probability row: an insertion (the row
/// is the new edge's profile) or a reweight (the row replaces the old
/// profile of an existing edge).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeChange {
    /// Source node.
    pub source: NodeId,
    /// Target node.
    pub target: NodeId,
    /// Sparse per-topic probability row for the edge.
    pub probs: Vec<TopicProb>,
}

/// A batch of graph mutations applied atomically as one epoch step.
///
/// Semantics (all validated by [`DiGraph::apply_delta`]):
///
/// * `insert` — the edge must not already exist (and no duplicates within
///   the batch); self-loops are rejected to match [`crate::GraphBuilder`].
/// * `remove` — the edge must exist.
/// * `reweight` — the edge must exist and must not also be removed.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct GraphDelta {
    /// Edges to insert, with their probability rows.
    pub insert: Vec<EdgeChange>,
    /// Edges to remove, as `(source, target)` pairs.
    pub remove: Vec<(NodeId, NodeId)>,
    /// Existing edges whose probability rows are replaced.
    pub reweight: Vec<EdgeChange>,
}

// Hand-written: absent lists deserialize as empty, so a wire delta like
// `{"insert":[...]}` does not have to spell out `"remove":[]` etc.
impl Deserialize for GraphDelta {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let insert: Option<Vec<EdgeChange>> = de::field(v, "insert")?;
        let remove: Option<Vec<(NodeId, NodeId)>> = de::field(v, "remove")?;
        let reweight: Option<Vec<EdgeChange>> = de::field(v, "reweight")?;
        Ok(GraphDelta {
            insert: insert.unwrap_or_default(),
            remove: remove.unwrap_or_default(),
            reweight: reweight.unwrap_or_default(),
        })
    }
}

impl GraphDelta {
    /// Whether the delta performs no mutations at all.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.remove.is_empty() && self.reweight.is_empty()
    }

    /// Total number of edge operations in the batch.
    pub fn op_count(&self) -> usize {
        self.insert.len() + self.remove.len() + self.reweight.len()
    }

    /// A content digest over every operation, order-sensitive.
    ///
    /// Feeds [`mix_fingerprint`]: the digest is what advances a
    /// [`Lineage`] by one epoch, so two instances that applied the same
    /// delta sequence to the same base graph fingerprint identically.
    pub fn digest(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write_u8(1); // domain tag: insert section
        h.write_u64(self.insert.len() as u64);
        for c in &self.insert {
            hash_change(&mut h, c);
        }
        h.write_u8(2); // remove section
        h.write_u64(self.remove.len() as u64);
        for &(u, v) in &self.remove {
            h.write_u32(u);
            h.write_u32(v);
        }
        h.write_u8(3); // reweight section
        h.write_u64(self.reweight.len() as u64);
        for c in &self.reweight {
            hash_change(&mut h, c);
        }
        h.finish()
    }
}

fn hash_change(h: &mut FxHasher, c: &EdgeChange) {
    h.write_u32(c.source);
    h.write_u32(c.target);
    h.write_u64(c.probs.len() as u64);
    for e in &c.probs {
        h.write_u16(e.topic);
        h.write_u32(e.prob.to_bits());
    }
}

/// Chains a parent fingerprint with a delta digest into the child epoch's
/// fingerprint: `fingerprint(N) = mix(fingerprint(N − 1), digest)`.
pub fn mix_fingerprint(parent: u64, delta_digest: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(parent);
    h.write_u64(delta_digest);
    h.finish()
}

/// An epoch chain of instance fingerprints.
///
/// `fingerprints()[e]` is the fingerprint at epoch `e`; epoch 0 is the
/// base (graph, table) fingerprint and each later entry is
/// [`mix_fingerprint`] of its parent and the applied delta's digest. The
/// current epoch is `len − 1` and its fingerprint is [`Lineage::head`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lineage {
    fingerprints: Vec<u64>,
}

impl Lineage {
    /// A fresh lineage rooted at a base instance fingerprint (epoch 0).
    pub fn new(root: u64) -> Lineage {
        Lineage {
            fingerprints: vec![root],
        }
    }

    /// Rebuilds a lineage from a stored fingerprint chain.
    ///
    /// Returns `None` for an empty chain — a lineage always has a root.
    pub fn from_fingerprints(fingerprints: Vec<u64>) -> Option<Lineage> {
        if fingerprints.is_empty() {
            None
        } else {
            Some(Lineage { fingerprints })
        }
    }

    /// Advances the chain by one epoch, returning the new head.
    pub fn advance(&mut self, delta_digest: u64) -> u64 {
        let next = mix_fingerprint(self.head(), delta_digest);
        self.fingerprints.push(next);
        next
    }

    /// The epoch-0 fingerprint.
    pub fn root(&self) -> u64 {
        self.fingerprints[0]
    }

    /// The current (newest) fingerprint.
    pub fn head(&self) -> u64 {
        *self.fingerprints.last().expect("lineage is never empty")
    }

    /// The current epoch number (`0` for a fresh lineage).
    pub fn epoch(&self) -> u64 {
        self.fingerprints.len() as u64 - 1
    }

    /// The full chain, epoch 0 first.
    pub fn fingerprints(&self) -> &[u64] {
        &self.fingerprints
    }

    /// Number of leading epochs shared with another chain.
    ///
    /// `0` means unrelated instances (different roots); a value `k` means
    /// epochs `0..k` agree, so entries stamped with an epoch `< k` are
    /// common ancestry — stale at worst, never foreign.
    pub fn common_prefix(&self, other: &[u64]) -> usize {
        self.fingerprints
            .iter()
            .zip(other)
            .take_while(|(a, b)| a == b)
            .count()
    }
}

/// The result of applying a [`GraphDelta`]: the rebuilt graph plus the
/// bookkeeping every downstream cache needs to survive the change.
#[derive(Debug, Clone)]
pub struct DeltaApplication {
    /// The post-delta graph.
    pub graph: DiGraph,
    /// Old edge id → new edge id (`None` for removed edges).
    ///
    /// CSR edge ids are dense and source-sorted, so an insertion or
    /// removal shifts every id after it; per-edge attribute tables must
    /// be re-indexed through this map.
    pub remap: Vec<Option<EdgeId>>,
    /// New edge ids of the inserted edges, aligned with
    /// [`GraphDelta::insert`].
    pub inserted_ids: Vec<EdgeId>,
    /// *Old* edge ids of the reweighted edges, aligned with
    /// [`GraphDelta::reweight`].
    pub reweighted_ids: Vec<EdgeId>,
    /// Nodes whose in-edge row changed (sorted, deduplicated): the
    /// targets of every inserted, removed and reweighted edge. A stored
    /// RR walk is dead iff its visited set intersects this list.
    pub dirty_targets: Vec<NodeId>,
    /// The delta's content digest (input to [`mix_fingerprint`]).
    pub digest: u64,
}

impl DiGraph {
    /// Applies a [`GraphDelta`], returning the rebuilt graph and the
    /// old→new edge-id remap.
    ///
    /// The node count is preserved (deltas are edge-only). Validation is
    /// all-or-nothing: any invalid operation rejects the whole delta and
    /// leaves `self` untouched (it is never mutated — the new CSR is a
    /// separate value).
    pub fn apply_delta(&self, delta: &GraphDelta) -> crate::Result<DeltaApplication> {
        let n = self.node_count() as u64;
        let check_node = |node: NodeId| -> crate::Result<()> {
            if (node as u64) < n {
                Ok(())
            } else {
                Err(GraphError::NodeOutOfRange {
                    node: node as u64,
                    node_count: n,
                })
            }
        };

        // Resolve removals against current edge ids.
        let mut removed = vec![false; self.edge_count()];
        for &(u, v) in &delta.remove {
            check_node(u)?;
            check_node(v)?;
            let edge = self
                .find_edge(u, v)
                .filter(|e| !removed[e.id as usize])
                .ok_or(GraphError::EdgeMissing {
                    source: u,
                    target: v,
                })?;
            removed[edge.id as usize] = true;
        }

        // Reweights must name surviving edges.
        let mut reweighted_ids = Vec::with_capacity(delta.reweight.len());
        for c in &delta.reweight {
            check_node(c.source)?;
            check_node(c.target)?;
            let edge = self
                .find_edge(c.source, c.target)
                .filter(|e| !removed[e.id as usize])
                .ok_or(GraphError::EdgeMissing {
                    source: c.source,
                    target: c.target,
                })?;
            reweighted_ids.push(edge.id);
        }

        // Insertions must be genuinely new (no duplicates, no self-loops).
        let mut fresh: FxHashMap<(NodeId, NodeId), ()> = FxHashMap::default();
        for c in &delta.insert {
            check_node(c.source)?;
            check_node(c.target)?;
            if c.source == c.target {
                return Err(GraphError::SelfLoopRejected { node: c.source });
            }
            let pre_existing = self
                .find_edge(c.source, c.target)
                .is_some_and(|e| !removed[e.id as usize]);
            if pre_existing || fresh.insert((c.source, c.target), ()).is_some() {
                return Err(GraphError::EdgeExists {
                    source: c.source,
                    target: c.target,
                });
            }
        }

        // Rebuild the edge list: survivors in old id order, then inserts.
        let mut edges: Vec<(NodeId, NodeId)> =
            Vec::with_capacity(self.edge_count() - delta.remove.len() + delta.insert.len());
        for e in self.edges() {
            if !removed[e.id as usize] {
                edges.push((e.source, e.target));
            }
        }
        for c in &delta.insert {
            edges.push((c.source, c.target));
        }
        let graph = DiGraph::from_edges(self.node_count() as u32, &edges)?;

        // Map each (source, target) pair to its new ids, ascending; pairs
        // with parallel edges consume ids in old-id order, which matches
        // the new CSR's (source, target)-sorted order.
        let mut pair_ids: FxHashMap<(NodeId, NodeId), VecDeque<EdgeId>> = FxHashMap::default();
        for e in graph.edges() {
            pair_ids
                .entry((e.source, e.target))
                .or_default()
                .push_back(e.id);
        }
        let mut remap = vec![None; self.edge_count()];
        for e in self.edges() {
            if !removed[e.id as usize] {
                let slot = pair_ids
                    .get_mut(&(e.source, e.target))
                    .and_then(|q| q.pop_front())
                    .expect("surviving edge present in rebuilt graph");
                remap[e.id as usize] = Some(slot);
            }
        }
        let inserted_ids: Vec<EdgeId> = delta
            .insert
            .iter()
            .map(|c| {
                pair_ids
                    .get_mut(&(c.source, c.target))
                    .and_then(|q| q.pop_front())
                    .expect("inserted edge present in rebuilt graph")
            })
            .collect();

        let mut dirty_targets: Vec<NodeId> = delta
            .remove
            .iter()
            .map(|&(_, v)| v)
            .chain(delta.insert.iter().map(|c| c.target))
            .chain(delta.reweight.iter().map(|c| c.target))
            .collect();
        dirty_targets.sort_unstable();
        dirty_targets.dedup();

        Ok(DeltaApplication {
            graph,
            remap,
            inserted_ids,
            reweighted_ids,
            dirty_targets,
            digest: delta.digest(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    fn change(source: NodeId, target: NodeId, prob: f32) -> EdgeChange {
        EdgeChange {
            source,
            target,
            probs: vec![TopicProb { topic: 0, prob }],
        }
    }

    #[test]
    fn insert_and_remove_rebuild_csr() {
        let g = diamond();
        let delta = GraphDelta {
            insert: vec![change(3, 0, 0.5)],
            remove: vec![(0, 2)],
            reweight: vec![],
        };
        let app = g.apply_delta(&delta).unwrap();
        assert_eq!(app.graph.edge_count(), 4);
        assert!(app.graph.find_edge(3, 0).is_some());
        assert!(app.graph.find_edge(0, 2).is_none());
        // Identical to building the post-delta graph from scratch.
        let cold = DiGraph::from_edges(4, &[(0, 1), (1, 3), (2, 3), (3, 0)]).unwrap();
        assert_eq!(app.graph, cold);
    }

    #[test]
    fn remap_tracks_edge_attributes() {
        let g = diamond();
        let delta = GraphDelta {
            insert: vec![change(0, 3, 0.5)],
            remove: vec![(0, 1)],
            reweight: vec![],
        };
        let app = g.apply_delta(&delta).unwrap();
        // Removed edge maps to None; every survivor's endpoints survive
        // the remap.
        let old_01 = g.find_edge(0, 1).unwrap().id;
        assert_eq!(app.remap[old_01 as usize], None);
        for e in g.edges() {
            if e.id == old_01 {
                continue;
            }
            let new_id = app.remap[e.id as usize].unwrap();
            assert_eq!(app.graph.edge_endpoints(new_id), Some((e.source, e.target)));
        }
        assert_eq!(app.inserted_ids.len(), 1);
        assert_eq!(app.graph.edge_endpoints(app.inserted_ids[0]), Some((0, 3)));
    }

    #[test]
    fn dirty_targets_are_changed_in_rows() {
        let g = diamond();
        let delta = GraphDelta {
            insert: vec![change(3, 1, 0.2)],
            remove: vec![(2, 3)],
            reweight: vec![change(0, 1, 0.9)],
        };
        let app = g.apply_delta(&delta).unwrap();
        assert_eq!(app.dirty_targets, vec![1, 3]);
    }

    #[test]
    fn invalid_operations_rejected() {
        let g = diamond();
        let dup = GraphDelta {
            insert: vec![change(0, 1, 0.5)],
            ..GraphDelta::default()
        };
        assert!(matches!(
            g.apply_delta(&dup),
            Err(GraphError::EdgeExists {
                source: 0,
                target: 1
            })
        ));
        let missing = GraphDelta {
            remove: vec![(3, 0)],
            ..GraphDelta::default()
        };
        assert!(matches!(
            g.apply_delta(&missing),
            Err(GraphError::EdgeMissing {
                source: 3,
                target: 0
            })
        ));
        let loop_insert = GraphDelta {
            insert: vec![change(2, 2, 0.5)],
            ..GraphDelta::default()
        };
        assert!(matches!(
            g.apply_delta(&loop_insert),
            Err(GraphError::SelfLoopRejected { node: 2 })
        ));
        let out_of_range = GraphDelta {
            remove: vec![(0, 9)],
            ..GraphDelta::default()
        };
        assert!(g.apply_delta(&out_of_range).is_err());
    }

    #[test]
    fn remove_then_reinsert_is_allowed() {
        let g = diamond();
        let delta = GraphDelta {
            insert: vec![change(0, 1, 0.7)],
            remove: vec![(0, 1)],
            reweight: vec![],
        };
        let app = g.apply_delta(&delta).unwrap();
        assert_eq!(app.graph.edge_count(), 4);
        assert_eq!(app.dirty_targets, vec![1]);
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = GraphDelta {
            remove: vec![(0, 1), (1, 3)],
            ..GraphDelta::default()
        };
        let b = GraphDelta {
            remove: vec![(1, 3), (0, 1)],
            ..GraphDelta::default()
        };
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.clone().digest());
        let mut c = a.clone();
        c.reweight.push(change(0, 1, 0.25));
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn lineage_chains_and_prefixes() {
        let mut a = Lineage::new(0xdead_beef);
        let d1 = 11u64;
        let d2 = 22u64;
        let e1 = a.advance(d1);
        assert_eq!(e1, mix_fingerprint(0xdead_beef, d1));
        assert_eq!(a.epoch(), 1);
        let mut b = Lineage::new(0xdead_beef);
        b.advance(d1);
        assert_eq!(a.common_prefix(b.fingerprints()), 2);
        b.advance(d2);
        assert_eq!(a.common_prefix(b.fingerprints()), 2);
        let foreign = Lineage::new(0x1234);
        assert_eq!(a.common_prefix(foreign.fingerprints()), 0);
        assert!(Lineage::from_fingerprints(vec![]).is_none());
    }

    #[test]
    fn delta_wire_format_tolerates_absent_lists() {
        let delta: GraphDelta = serde_json::from_str(
            r#"{"insert":[{"source":3,"target":0,"probs":[{"topic":0,"prob":0.5}]}]}"#,
        )
        .unwrap();
        assert_eq!(delta.insert.len(), 1);
        assert!(delta.remove.is_empty() && delta.reweight.is_empty());
        let json = serde_json::to_string(&delta).unwrap();
        let back: GraphDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(delta, back);
    }
}
