//! # oipa-graph
//!
//! Directed-graph substrate for the OIPA reproduction of
//! *Maximizing Multifaceted Network Influence* (ICDE 2019).
//!
//! The paper's algorithms operate on a directed social graph `G(V, E)` where
//! each edge carries a topic-wise influence-probability vector. This crate
//! provides the topology half of that contract:
//!
//! * [`DiGraph`] — an immutable compressed-sparse-row (CSR) directed graph
//!   with stable edge identifiers and an always-available transpose, so that
//!   *reverse* traversals (the backbone of reverse-reachable-set sampling)
//!   can recover the original edge id of every in-edge in O(1).
//! * [`GraphBuilder`] — incremental construction with deduplication options.
//! * [`io`] — plain-text edge-list readers/writers.
//! * [`generators`] — synthetic network models (Barabási–Albert,
//!   power-law configuration model, Erdős–Rényi, Watts–Strogatz) used to
//!   stand in for the paper's proprietary `lastfm`/`dblp`/`tweet` datasets.
//! * [`stats`] — degree statistics and a power-law exponent estimator
//!   (the paper's §V-C complexity argument rests on the power-law principle).
//! * [`traverse`] — BFS, reachability and weakly-connected components.
//! * [`hashing`] — a small FxHash-style hasher for integer-keyed maps, so we
//!   do not pull in an external hashing crate.
//! * [`checksum`] — streaming CRC-32 shared by every checksummed binary
//!   format in the workspace (pool binio v2, the persistent pool store).
//!
//! Node ids are dense `u32` values in `0..n`; edge ids are dense `u32`
//! values in `0..m` assigned in CSR order (sorted by source node).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binio;
mod builder;
pub mod checksum;
mod csr;
pub mod delta;
pub mod generators;
pub mod hashing;
pub mod io;
pub mod pagerank;
pub mod stats;
pub mod subgraph;
pub mod traverse;

pub use builder::{DedupPolicy, GraphBuilder};
pub use csr::{DiGraph, EdgeId, EdgeRef, NodeId};
pub use delta::{mix_fingerprint, DeltaApplication, EdgeChange, GraphDelta, Lineage, TopicProb};

/// Errors produced by graph construction and IO.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint was outside the declared node range.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The number of nodes in the graph.
        node_count: u64,
    },
    /// A self-loop was rejected by the active [`DedupPolicy`].
    SelfLoopRejected {
        /// The node carrying the loop.
        node: NodeId,
    },
    /// The input exceeded the `u32` node/edge-id space.
    TooLarge {
        /// Human-readable description of what overflowed.
        what: &'static str,
    },
    /// An IO or parse failure while reading an edge list.
    Io(std::io::Error),
    /// A malformed line in an edge-list file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A delta tried to insert an edge that already exists.
    EdgeExists {
        /// Source node.
        source: NodeId,
        /// Target node.
        target: NodeId,
    },
    /// A delta named an edge that does not exist (remove/reweight).
    EdgeMissing {
        /// Source node.
        source: NodeId,
        /// Target node.
        target: NodeId,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            GraphError::SelfLoopRejected { node } => {
                write!(f, "self-loop on node {node} rejected by dedup policy")
            }
            GraphError::TooLarge { what } => write!(f, "{what} exceeds u32 id space"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::EdgeExists { source, target } => {
                write!(f, "edge {source} -> {target} already exists")
            }
            GraphError::EdgeMissing { source, target } => {
                write!(f, "edge {source} -> {target} does not exist")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
