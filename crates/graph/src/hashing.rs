//! A minimal FxHash-style hasher for integer-keyed maps.
//!
//! The hot paths of RR-set indexing and branch-and-bound exclusion checks
//! hash small integers; `SipHash` (std's default) is needlessly slow there
//! and HashDoS is not a concern for in-process ids. Rather than pulling in
//! `rustc-hash`, we vendor the ~30-line multiply-rotate scheme it uses.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fibonacci-style multiplicative mixer (same constant as rustc's Fx).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for small keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_values() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&37], 74);
        let s: FxHashSet<u32> = (0..100).collect();
        assert!(s.contains(&99));
        assert!(!s.contains(&100));
    }

    #[test]
    fn byte_stream_tail_handling() {
        // Two different streams must not collide via zero-padding ambiguity
        // in typical use (not a cryptographic guarantee; just sanity).
        let mut a = FxHasher::default();
        a.write(b"abcdefgh");
        let mut b = FxHasher::default();
        b.write(b"abcdefg");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn low_collision_rate_on_dense_keys() {
        use std::collections::HashSet;
        let hashes: HashSet<u64> = (0u64..10_000)
            .map(|k| {
                let mut h = FxHasher::default();
                h.write_u64(k);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 10_000, "dense u64 keys must not collide");
    }
}
