//! Plain-text edge-list IO.
//!
//! Format: one `u v` pair per line (whitespace separated), `#`-prefixed
//! comment lines ignored — the format used by SNAP dumps, which the paper's
//! `tweet` dataset comes from.

use crate::builder::{DedupPolicy, GraphBuilder};
use crate::csr::DiGraph;
use crate::{GraphError, Result};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads an edge list from any reader.
pub fn read_edge_list<R: Read>(reader: R, policy: DedupPolicy) -> Result<DiGraph> {
    let mut builder = GraphBuilder::with_policy(policy);
    let mut buf = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if buf.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u = parse_node(it.next(), lineno)?;
        let v = parse_node(it.next(), lineno)?;
        builder.add_edge(u, v);
    }
    builder.build()
}

fn parse_node(token: Option<&str>, line: usize) -> Result<u32> {
    let tok = token.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two node ids".to_string(),
    })?;
    tok.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad node id {tok:?}: {e}"),
    })
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P, policy: DedupPolicy) -> Result<DiGraph> {
    read_edge_list(std::fs::File::open(path)?, policy)
}

/// Writes the graph as an edge list with a statistics header comment.
pub fn write_edge_list<W: Write>(graph: &DiGraph, writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(
        out,
        "# nodes {} edges {}",
        graph.node_count(),
        graph.edge_count()
    )?;
    for e in graph.edges() {
        writeln!(out, "{} {}", e.source, e.target)?;
    }
    out.flush()?;
    Ok(())
}

/// Writes the graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &DiGraph, path: P) -> Result<()> {
    write_edge_list(graph, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let mut bytes = Vec::new();
        write_edge_list(&g, &mut bytes).unwrap();
        let g2 = read_edge_list(&bytes[..], DedupPolicy::KeepAll).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\n0 1\n# mid\n1 2\n";
        let g = read_edge_list(text.as_bytes(), DedupPolicy::Simple).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn reports_parse_error_with_line() {
        let text = "0 1\nnot a line\n";
        let err = read_edge_list(text.as_bytes(), DedupPolicy::Simple).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn missing_second_token() {
        let err = read_edge_list("42\n".as_bytes(), DedupPolicy::Simple).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn tabs_and_multiple_spaces() {
        let g = read_edge_list("0\t1\n1   2\n".as_bytes(), DedupPolicy::Simple).unwrap();
        assert_eq!(g.edge_count(), 2);
    }
}
