//! Compressed-sparse-row directed graph with a built-in transpose.
//!
//! The OIPA algorithms need two traversal directions:
//!
//! * forward (out-edges) for Monte-Carlo cascade simulation, and
//! * backward (in-edges) for reverse-reachable (RR) set sampling, where each
//!   in-edge must be kept with its *topic-dependent* probability — hence the
//!   transpose stores the original [`EdgeId`] of every in-edge so edge
//!   attribute tables indexed by edge id work in both directions.

/// Dense node identifier (`0..n`).
pub type NodeId = u32;
/// Dense edge identifier (`0..m`) in CSR (source-sorted) order.
pub type EdgeId = u32;

/// A borrowed view of one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Edge id in CSR order.
    pub id: EdgeId,
    /// Source node.
    pub source: NodeId,
    /// Target node.
    pub target: NodeId,
}

/// An immutable directed graph in CSR form.
///
/// Construction goes through [`crate::GraphBuilder`] (or the generators /
/// IO helpers, which use the builder internally). The structure keeps both
/// the out-adjacency and the in-adjacency (transpose); the transpose rows
/// carry `(source, edge_id)` pairs so per-edge attributes stored in flat
/// `Vec`s indexed by [`EdgeId`] are usable during reverse traversal.
///
/// ```
/// use oipa_graph::DiGraph;
///
/// let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
/// assert_eq!(g.out_neighbors(0), &[1, 2]);
/// assert_eq!(g.in_degree(2), 2);
/// // Reverse traversal recovers original edge ids for attribute lookup.
/// let in_edge = g.in_edges(2).next().unwrap();
/// assert_eq!(g.edge_endpoints(in_edge.id), Some((in_edge.source, 2)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiGraph {
    n: u32,
    // Out CSR: edge ids are implicit (row-major position).
    out_offsets: Vec<u32>,
    out_targets: Vec<NodeId>,
    // In CSR (transpose).
    in_offsets: Vec<u32>,
    in_sources: Vec<NodeId>,
    in_edge_ids: Vec<EdgeId>,
}

impl DiGraph {
    /// Builds a graph from a node count and an edge list.
    ///
    /// Edges may be in any order and may contain duplicates (kept verbatim);
    /// use [`crate::GraphBuilder`] for deduplication. Edge ids are assigned
    /// in source-sorted order, stable under permutation of the input.
    pub fn from_edges(n: u32, edges: &[(NodeId, NodeId)]) -> crate::Result<Self> {
        if edges.len() > u32::MAX as usize {
            return Err(crate::GraphError::TooLarge { what: "edge count" });
        }
        for &(u, v) in edges {
            if u >= n || v >= n {
                return Err(crate::GraphError::NodeOutOfRange {
                    node: u.max(v) as u64,
                    node_count: n as u64,
                });
            }
        }
        let m = edges.len();
        // Counting sort by source to build the out-CSR.
        let mut out_offsets = vec![0u32; n as usize + 1];
        for &(u, _) in edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n as usize {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = vec![0 as NodeId; m];
        {
            let mut cursor = out_offsets.clone();
            // Within a source node, preserve input order for determinism, and
            // then sort each row by target for binary-searchable adjacency.
            for &(u, v) in edges {
                let slot = cursor[u as usize] as usize;
                out_targets[slot] = v;
                cursor[u as usize] += 1;
            }
        }
        for u in 0..n as usize {
            let (lo, hi) = (out_offsets[u] as usize, out_offsets[u + 1] as usize);
            out_targets[lo..hi].sort_unstable();
        }
        // Transpose with edge ids.
        let mut in_offsets = vec![0u32; n as usize + 1];
        for &v in &out_targets {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n as usize {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_sources = vec![0 as NodeId; m];
        let mut in_edge_ids = vec![0 as EdgeId; m];
        {
            let mut cursor = in_offsets.clone();
            for u in 0..n {
                let (lo, hi) = (out_offsets[u as usize], out_offsets[u as usize + 1]);
                for eid in lo..hi {
                    let v = out_targets[eid as usize];
                    let slot = cursor[v as usize] as usize;
                    in_sources[slot] = u;
                    in_edge_ids[slot] = eid;
                    cursor[v as usize] += 1;
                }
            }
        }
        Ok(DiGraph {
            n,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            in_edge_ids,
        })
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n as usize
    }

    /// Number of edges `m = |E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterator over all node ids `0..n`.
    #[inline]
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> {
        0..self.n
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        debug_assert!(u < self.n);
        (self.out_offsets[u as usize + 1] - self.out_offsets[u as usize]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        debug_assert!(v < self.n);
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as usize
    }

    /// Out-neighbors of `u`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let (lo, hi) = (
            self.out_offsets[u as usize] as usize,
            self.out_offsets[u as usize + 1] as usize,
        );
        &self.out_targets[lo..hi]
    }

    /// Out-edges of `u` with their edge ids.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> impl ExactSizeIterator<Item = EdgeRef> + '_ {
        let lo = self.out_offsets[u as usize];
        let hi = self.out_offsets[u as usize + 1];
        (lo..hi).map(move |eid| EdgeRef {
            id: eid,
            source: u,
            target: self.out_targets[eid as usize],
        })
    }

    /// In-edges of `v`: `(source, original edge id)` pairs.
    ///
    /// This is the hot loop of RR-set sampling: the edge id indexes into
    /// per-edge probability tables kept by the topic layer.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl ExactSizeIterator<Item = EdgeRef> + '_ {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        (lo..hi).map(move |slot| EdgeRef {
            id: self.in_edge_ids[slot],
            source: self.in_sources[slot],
            target: v,
        })
    }

    /// In-neighbor slice of `v` (sources only).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let (lo, hi) = (
            self.in_offsets[v as usize] as usize,
            self.in_offsets[v as usize + 1] as usize,
        );
        &self.in_sources[lo..hi]
    }

    /// Looks up the edge `u -> v`, returning its [`EdgeRef`] if present.
    ///
    /// O(log out_degree(u)) via binary search on the sorted adjacency row.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeRef> {
        if u >= self.n || v >= self.n {
            return None;
        }
        let lo = self.out_offsets[u as usize] as usize;
        let hi = self.out_offsets[u as usize + 1] as usize;
        let row = &self.out_targets[lo..hi];
        row.binary_search(&v).ok().map(|pos| EdgeRef {
            id: (lo + pos) as EdgeId,
            source: u,
            target: v,
        })
    }

    /// Returns `(source, target)` for an edge id.
    ///
    /// O(log n) — the source is recovered by binary search on the offset
    /// array. Prefer carrying [`EdgeRef`]s where possible.
    pub fn edge_endpoints(&self, eid: EdgeId) -> Option<(NodeId, NodeId)> {
        if eid as usize >= self.out_targets.len() {
            return None;
        }
        let target = self.out_targets[eid as usize];
        // partition_point gives the first offset > eid; the source row is one before.
        let source = self.out_offsets.partition_point(|&off| off <= eid) as NodeId - 1;
        Some((source, target))
    }

    /// Iterates over all edges in edge-id order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        (0..self.n).flat_map(move |u| self.out_edges(u))
    }

    /// Returns a new graph with every edge reversed.
    ///
    /// Note: edge ids are re-assigned in the reversed graph's own CSR order;
    /// this is a structural reversal, not a view.
    pub fn reversed(&self) -> DiGraph {
        let edges: Vec<(NodeId, NodeId)> = self.edges().map(|e| (e.target, e.source)).collect();
        DiGraph::from_edges(self.n, &edges).expect("reversal preserves validity")
    }

    /// A content fingerprint over the node count and every edge in edge-id
    /// order. Two graphs fingerprint equal iff they have identical CSR
    /// topology, so persistent caches (the pool store) can detect that a
    /// directory of pools was sampled from a different graph.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = crate::hashing::FxHasher::default();
        h.write_u32(self.n);
        h.write_u64(self.out_targets.len() as u64);
        for e in self.edges() {
            h.write_u32(e.source);
            h.write_u32(e.target);
        }
        h.finish()
    }

    /// Total heap bytes used by the CSR arrays (approximate).
    pub fn heap_bytes(&self) -> usize {
        (self.out_offsets.capacity() + self.in_offsets.capacity()) * 4
            + (self.out_targets.capacity()
                + self.in_sources.capacity()
                + self.in_edge_ids.capacity())
                * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn out_adjacency_sorted() {
        let g = DiGraph::from_edges(3, &[(0, 2), (0, 1)]).unwrap();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
    }

    #[test]
    fn transpose_edge_ids_roundtrip() {
        let g = diamond();
        for v in g.nodes() {
            for e in g.in_edges(v) {
                let (s, t) = g.edge_endpoints(e.id).unwrap();
                assert_eq!((s, t), (e.source, v));
            }
        }
    }

    #[test]
    fn find_edge_present_and_absent() {
        let g = diamond();
        let e = g.find_edge(0, 2).unwrap();
        assert_eq!((e.source, e.target), (0, 2));
        assert!(g.find_edge(3, 0).is_none());
        assert!(g.find_edge(0, 99).is_none());
    }

    #[test]
    fn edge_endpoints_all() {
        let g = diamond();
        let collected: Vec<_> = g.edges().map(|e| (e.source, e.target)).collect();
        for (i, &(s, t)) in collected.iter().enumerate() {
            assert_eq!(g.edge_endpoints(i as EdgeId), Some((s, t)));
        }
        assert_eq!(g.edge_endpoints(collected.len() as EdgeId), None);
    }

    #[test]
    fn reversed_swaps_direction() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.out_neighbors(3), &[1, 2]);
        assert_eq!(r.in_degree(0), 2);
        assert_eq!(r.reversed(), g);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(DiGraph::from_edges(2, &[(0, 2)]).is_err());
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn parallel_edges_kept() {
        let g = DiGraph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_neighbors(0), &[1, 1]);
        assert_eq!(g.in_degree(1), 2);
    }

    #[test]
    fn edge_ids_stable_under_input_permutation() {
        let a = DiGraph::from_edges(4, &[(0, 1), (2, 3), (0, 2)]).unwrap();
        let b = DiGraph::from_edges(4, &[(2, 3), (0, 2), (0, 1)]).unwrap();
        assert_eq!(a, b);
    }
}
