//! Induced subgraphs, component extraction and k-core decomposition.
//!
//! Dataset preparation routinely restricts a crawled network to its
//! largest weakly-connected component (isolated fragments contribute no
//! influence paths) or to a k-core (to focus on the engaged population).
//! Extraction relabels nodes densely and reports the mapping so per-node
//! and per-edge attribute tables can be carried over.

use crate::csr::{DiGraph, EdgeId, NodeId};
use crate::traverse::weakly_connected_components;

/// The result of an extraction: the new graph plus id mappings.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// The induced subgraph with densely relabelled node ids.
    pub graph: DiGraph,
    /// `old_of_new[new_id] = old_id`.
    pub old_of_new: Vec<NodeId>,
    /// `new_of_old[old_id] = Some(new_id)` for kept nodes.
    pub new_of_old: Vec<Option<NodeId>>,
    /// For each kept edge (in the new graph's edge-id order), the old
    /// edge id — use to gather rows from an `EdgeTopicProbs`-style table.
    pub old_edge_of_new: Vec<EdgeId>,
}

/// Extracts the subgraph induced by `keep` (any iterable of node ids;
/// duplicates ignored).
pub fn induced_subgraph(graph: &DiGraph, keep: impl IntoIterator<Item = NodeId>) -> Extraction {
    let n = graph.node_count();
    let mut keep_mask = vec![false; n];
    for v in keep {
        assert!((v as usize) < n, "node {v} out of range");
        keep_mask[v as usize] = true;
    }
    let mut new_of_old: Vec<Option<NodeId>> = vec![None; n];
    let mut old_of_new: Vec<NodeId> = Vec::new();
    for v in 0..n {
        if keep_mask[v] {
            new_of_old[v] = Some(old_of_new.len() as NodeId);
            old_of_new.push(v as NodeId);
        }
    }
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut old_edge_of_new: Vec<EdgeId> = Vec::new();
    // Walk in edge-id order so the CSR rebuild preserves relative order;
    // DiGraph::from_edges sorts by (source, target), and since relabelling
    // is monotone the new edge order equals the filtered old order.
    for e in graph.edges() {
        if let (Some(s), Some(t)) = (new_of_old[e.source as usize], new_of_old[e.target as usize]) {
            edges.push((s, t));
            old_edge_of_new.push(e.id);
        }
    }
    let graph = DiGraph::from_edges(old_of_new.len() as u32, &edges)
        .expect("induced edges are valid by construction");
    Extraction {
        graph,
        old_of_new,
        new_of_old,
        old_edge_of_new,
    }
}

/// Extracts the largest weakly-connected component.
pub fn largest_component(graph: &DiGraph) -> Extraction {
    let (labels, count) = weakly_connected_components(graph);
    if count == 0 {
        return induced_subgraph(graph, std::iter::empty());
    }
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let biggest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .expect("non-empty");
    induced_subgraph(
        graph,
        labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == biggest)
            .map(|(v, _)| v as NodeId),
    )
}

/// Peeling-order k-core numbers over *total* degree (in + out).
///
/// `core[v]` is the largest k such that v belongs to a subgraph where
/// every node has total degree ≥ k. O(n + m) bucket peeling.
pub fn core_numbers(graph: &DiGraph) -> Vec<u32> {
    let n = graph.node_count();
    let mut degree: Vec<usize> = (0..n as NodeId)
        .map(|v| graph.out_degree(v) + graph.in_degree(v))
        .collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket queues by current degree.
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d].push(v as NodeId);
    }
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut k = 0usize;
    let mut processed = 0usize;
    let mut cursor = 0usize;
    while processed < n {
        // Find the lowest non-empty bucket at or below the frontier.
        while cursor <= max_deg && buckets[cursor].is_empty() {
            cursor += 1;
        }
        if cursor > max_deg {
            break;
        }
        let v = buckets[cursor].pop().expect("non-empty bucket");
        if removed[v as usize] || degree[v as usize] != cursor {
            // Stale entry: the node moved to a lower bucket already.
            continue;
        }
        k = k.max(cursor);
        core[v as usize] = k as u32;
        removed[v as usize] = true;
        processed += 1;
        for &u in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
            if !removed[u as usize] && degree[u as usize] > 0 {
                degree[u as usize] -= 1;
                let d = degree[u as usize];
                buckets[d].push(u);
                if d < cursor {
                    cursor = d;
                }
            }
        }
    }
    core
}

/// Extracts the k-core subgraph (nodes with core number ≥ k).
pub fn k_core(graph: &DiGraph, k: u32) -> Extraction {
    let core = core_numbers(graph);
    induced_subgraph(
        graph,
        core.iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(v, _)| v as NodeId),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let ex = induced_subgraph(&g, [1u32, 2, 3]);
        assert_eq!(ex.graph.node_count(), 3);
        assert_eq!(ex.graph.edge_count(), 2); // 1->2, 2->3
        assert_eq!(ex.old_of_new, vec![1, 2, 3]);
        assert_eq!(ex.new_of_old[0], None);
        assert_eq!(ex.new_of_old[1], Some(0));
        // Edge mapping points at the original ids.
        for (new_e, &old_e) in ex.old_edge_of_new.iter().enumerate() {
            let (os, ot) = g.edge_endpoints(old_e).unwrap();
            let ns = ex.old_of_new[ex.graph.edges().nth(new_e).unwrap().source as usize];
            let nt = ex.old_of_new[ex.graph.edges().nth(new_e).unwrap().target as usize];
            assert_eq!((os, ot), (ns, nt));
        }
    }

    #[test]
    fn largest_component_extraction() {
        // Two components: {0,1,2} and {3,4}.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let ex = largest_component(&g);
        assert_eq!(ex.graph.node_count(), 3);
        assert_eq!(ex.graph.edge_count(), 2);
        assert_eq!(ex.old_of_new, vec![0, 1, 2]);
    }

    #[test]
    fn core_numbers_on_clique_plus_tail() {
        // Directed triangle (total degree 2 each… use bidirectional edges
        // for a clean 2-core) plus a pendant.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2), (2, 3)])
            .unwrap();
        let core = core_numbers(&g);
        // Pendant node 3 has total degree 1 -> core 1.
        assert_eq!(core[3], 1);
        // Triangle nodes survive to a deeper core than the pendant.
        assert!(core[0] >= 3 && core[1] >= 3);
        assert_eq!(core[0], core[1]);
    }

    #[test]
    fn k_core_extraction_removes_fringe() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2), (2, 3)])
            .unwrap();
        let ex = k_core(&g, 2);
        assert_eq!(ex.graph.node_count(), 3, "pendant must be peeled");
        assert!(ex.new_of_old[3].is_none());
    }

    #[test]
    fn empty_and_full_extractions() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let none = induced_subgraph(&g, std::iter::empty());
        assert_eq!(none.graph.node_count(), 0);
        let all = induced_subgraph(&g, 0..3u32);
        assert_eq!(all.graph, g);
        assert_eq!(all.old_edge_of_new, vec![0, 1]);
    }

    #[test]
    fn core_of_star() {
        // Star: hub total degree 4, leaves 1 → everything is 1-core only.
        let g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let core = core_numbers(&g);
        assert!(core.iter().all(|&c| c == 1), "{core:?}");
    }
}
