//! Synthetic network generators.
//!
//! The paper evaluates on three real social networks we cannot redistribute
//! (`lastfm`, `dblp`, `tweet`). The dataset crate rebuilds stand-ins with
//! matched statistics on top of these generators. The key structural
//! property the paper's §V-C complexity analysis relies on — a power-law
//! influence/degree distribution with exponent `2 < α < 3` — is provided by
//! [`power_law_configuration`] and [`barabasi_albert`].

use crate::builder::{DedupPolicy, GraphBuilder};
use crate::csr::{DiGraph, NodeId};
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Samples an integer from a discrete power law `P(d) ∝ d^{-alpha}` over
/// `d ∈ [min_degree, max_degree]` via inverse-CDF on the continuous Pareto
/// approximation.
pub fn power_law_degree<R: Rng + ?Sized>(
    rng: &mut R,
    alpha: f64,
    min_degree: f64,
    max_degree: f64,
) -> usize {
    assert!(alpha > 1.0, "power-law exponent must exceed 1");
    assert!(min_degree >= 1.0 && max_degree >= min_degree);
    let u: f64 = rng.gen_range(0.0..1.0);
    // Inverse CDF of a truncated Pareto with shape alpha-1.
    let a = 1.0 - alpha;
    let lo = min_degree.powf(a);
    let hi = max_degree.powf(a);
    let x = (lo + u * (hi - lo)).powf(1.0 / a);
    x.round().clamp(min_degree, max_degree) as usize
}

/// Directed configuration-model power-law graph.
///
/// Each node draws an out-degree from a truncated power law with exponent
/// `alpha`, then targets are chosen uniformly at random (rejecting
/// self-loops and duplicates). `target_edges` rescales the drawn degree
/// sequence so the expected edge count matches; pass `None` to keep the raw
/// sequence.
pub fn power_law_configuration<R: Rng + ?Sized>(
    rng: &mut R,
    n: u32,
    alpha: f64,
    min_degree: f64,
    target_edges: Option<usize>,
    max_degree: Option<f64>,
) -> DiGraph {
    assert!(n >= 2, "need at least two nodes");
    let max_deg = max_degree
        .unwrap_or(((n - 1) as f64).sqrt() * 4.0)
        .min((n - 1) as f64);
    let mut degrees: Vec<usize> = (0..n)
        .map(|_| power_law_degree(rng, alpha, min_degree, max_deg.max(min_degree)))
        .collect();
    if let Some(target) = target_edges {
        let total: usize = degrees.iter().sum();
        if total > 0 {
            let scale = target as f64 / total as f64;
            for d in &mut degrees {
                let scaled = (*d as f64 * scale).round() as usize;
                *d = scaled.min(n as usize - 1);
            }
            // Fix up rounding drift by topping up random nodes.
            let mut total: isize = degrees.iter().sum::<usize>() as isize;
            let want = target as isize;
            let idx = Uniform::new(0, n as usize);
            let mut attempts = 0usize;
            while total != want && attempts < 20 * n as usize {
                let i = idx.sample(rng);
                if total < want && degrees[i] < n as usize - 1 {
                    degrees[i] += 1;
                    total += 1;
                } else if total > want && degrees[i] > 0 {
                    degrees[i] -= 1;
                    total -= 1;
                }
                attempts += 1;
            }
        }
    }
    let expected: usize = degrees.iter().sum();
    let mut builder = GraphBuilder::with_capacity(DedupPolicy::Simple, expected);
    builder.ensure_nodes(n);
    let pick = Uniform::new(0, n);
    for (u, &d) in degrees.iter().enumerate() {
        let u = u as NodeId;
        let mut placed = 0usize;
        let mut tries = 0usize;
        // Duplicate/self-loop rejection; cap retries so pathological degree
        // requests terminate.
        while placed < d && tries < 10 * d + 32 {
            let v = pick.sample(rng);
            if v != u && builder.add_edge(u, v) {
                placed += 1;
            }
            tries += 1;
        }
    }
    builder.build().expect("generator produces valid edges")
}

/// Directed Barabási–Albert preferential attachment.
///
/// Starts from a small seed clique; each new node attaches `m_attach`
/// out-edges to existing nodes chosen proportionally to (in-degree + 1).
/// Produces a power-law in-degree distribution with exponent ≈ 3.
pub fn barabasi_albert<R: Rng + ?Sized>(rng: &mut R, n: u32, m_attach: usize) -> DiGraph {
    assert!(m_attach >= 1);
    assert!(n as usize > m_attach + 1, "n must exceed m_attach + 1");
    let mut builder = GraphBuilder::with_capacity(DedupPolicy::Simple, n as usize * m_attach);
    builder.ensure_nodes(n);
    // Repeated-endpoint list implements preferential attachment in O(1).
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n as usize * m_attach);
    let seed = (m_attach + 1) as NodeId;
    for u in 0..seed {
        for v in 0..seed {
            if u != v {
                builder.add_edge(u, v);
                endpoints.push(v);
            }
        }
        endpoints.push(u);
    }
    for u in seed..n {
        let mut placed = 0usize;
        let mut tries = 0usize;
        while placed < m_attach && tries < 10 * m_attach + 32 {
            let v = endpoints[rng.gen_range(0..endpoints.len())];
            if v != u && builder.add_edge(u, v) {
                endpoints.push(v);
                placed += 1;
            }
            tries += 1;
        }
        endpoints.push(u);
    }
    builder.build().expect("generator produces valid edges")
}

/// Erdős–Rényi `G(n, m)` digraph: `m` distinct directed edges placed
/// uniformly at random (no self-loops).
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(rng: &mut R, n: u32, m: usize) -> DiGraph {
    assert!(n >= 2);
    let max_edges = n as usize * (n as usize - 1);
    assert!(m <= max_edges, "too many edges requested");
    let mut builder = GraphBuilder::with_capacity(DedupPolicy::Simple, m);
    builder.ensure_nodes(n);
    let pick = Uniform::new(0, n);
    while builder.edge_count() < m {
        let u = pick.sample(rng);
        let v = pick.sample(rng);
        if u != v {
            builder.add_edge(u, v);
        }
    }
    builder.build().expect("generator produces valid edges")
}

/// Watts–Strogatz small-world digraph.
///
/// A directed ring lattice where each node points to its `k` clockwise
/// neighbors, with each edge's target rewired uniformly with probability
/// `beta`. Used in tests as a low-variance, non-power-law contrast model.
pub fn watts_strogatz<R: Rng + ?Sized>(rng: &mut R, n: u32, k: usize, beta: f64) -> DiGraph {
    assert!(n as usize > k + 1, "ring needs n > k + 1");
    assert!((0.0..=1.0).contains(&beta));
    let mut builder = GraphBuilder::with_capacity(DedupPolicy::Simple, n as usize * k);
    builder.ensure_nodes(n);
    let pick = Uniform::new(0, n);
    for u in 0..n {
        for hop in 1..=k {
            let mut v = (u + hop as u32) % n;
            if rng.gen_bool(beta) {
                // Rewire; retry a few times on collision.
                for _ in 0..16 {
                    let cand = pick.sample(rng);
                    if cand != u {
                        v = cand;
                        break;
                    }
                }
            }
            builder.add_edge(u, v);
        }
    }
    builder.build().expect("generator produces valid edges")
}

/// Complete digraph on `n` nodes (every ordered pair, no loops). Used by the
/// Max-Clique hardness gadget tests.
pub fn complete<Rr>(n: u32) -> DiGraph
where
    Rr: Sized,
{
    let mut builder =
        GraphBuilder::with_capacity(DedupPolicy::Simple, n as usize * (n as usize - 1));
    builder.ensure_nodes(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                builder.add_edge(u, v);
            }
        }
    }
    builder.build().expect("complete graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_degree_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let d = power_law_degree(&mut rng, 2.3, 1.0, 50.0);
            assert!((1..=50).contains(&d));
        }
    }

    #[test]
    fn power_law_degree_skews_low() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<usize> = (0..5000)
            .map(|_| power_law_degree(&mut rng, 2.5, 1.0, 100.0))
            .collect();
        let low = samples.iter().filter(|&&d| d <= 3).count();
        assert!(
            low > samples.len() / 2,
            "power law must concentrate at low degrees, got {low}/{}",
            samples.len()
        );
    }

    #[test]
    fn configuration_model_hits_target_edges() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = power_law_configuration(&mut rng, 500, 2.3, 1.0, Some(4000), None);
        assert_eq!(g.node_count(), 500);
        let m = g.edge_count();
        assert!(
            (3200..=4000).contains(&m),
            "edge count {m} too far from target 4000"
        );
    }

    #[test]
    fn ba_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(&mut rng, 300, 3);
        assert_eq!(g.node_count(), 300);
        // Every non-seed node has out-degree close to m_attach.
        let deficient = (4..300).filter(|&u| g.out_degree(u as NodeId) < 2).count();
        assert!(deficient < 10, "too many deficient nodes: {deficient}");
        // Hubs exist: max in-degree well above the mean.
        let max_in = (0..300).map(|u| g.in_degree(u)).max().unwrap();
        assert!(max_in >= 10, "expected a hub, max in-degree {max_in}");
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi_gnm(&mut rng, 100, 700);
        assert_eq!(g.edge_count(), 700);
        for e in g.edges() {
            assert_ne!(e.source, e.target);
        }
    }

    #[test]
    fn watts_strogatz_degree() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = watts_strogatz(&mut rng, 200, 4, 0.1);
        // Rewiring can collide with existing edges, so allow small losses.
        assert!(g.edge_count() >= 200 * 4 - 40);
        assert!(g.edge_count() <= 200 * 4);
    }

    #[test]
    fn watts_strogatz_zero_beta_is_ring() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = watts_strogatz(&mut rng, 10, 2, 0.0);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(9), &[0, 1]);
    }

    #[test]
    fn complete_graph() {
        let g = complete::<()>(5);
        assert_eq!(g.edge_count(), 20);
        for u in 0..5u32 {
            assert_eq!(g.out_degree(u), 4);
        }
    }

    #[test]
    fn generators_deterministic_under_seed() {
        let a = power_law_configuration(
            &mut StdRng::seed_from_u64(42),
            100,
            2.5,
            1.0,
            Some(500),
            None,
        );
        let b = power_law_configuration(
            &mut StdRng::seed_from_u64(42),
            100,
            2.5,
            1.0,
            Some(500),
            None,
        );
        assert_eq!(a, b);
    }
}
