//! Degree statistics and power-law diagnostics.
//!
//! The paper's progressive-bound complexity result (Theorem 4) assumes the
//! social-influence distribution follows a power law with exponent
//! `2 < α < 3`. [`power_law_exponent_mle`] lets the dataset generators and
//! benches verify their stand-in networks actually satisfy that premise.

use crate::csr::DiGraph;
use serde::Serialize;

/// Summary statistics of a graph, mirroring the paper's Table III rows.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GraphStats {
    /// `|V|`.
    pub nodes: usize,
    /// `|E|`.
    pub edges: usize,
    /// Average out-degree (= average in-degree) `m / n`.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Number of nodes with no edges at all.
    pub isolated: usize,
}

/// Computes [`GraphStats`].
pub fn graph_stats(graph: &DiGraph) -> GraphStats {
    let n = graph.node_count();
    let mut max_out = 0usize;
    let mut max_in = 0usize;
    let mut isolated = 0usize;
    for u in graph.nodes() {
        let od = graph.out_degree(u);
        let id = graph.in_degree(u);
        max_out = max_out.max(od);
        max_in = max_in.max(id);
        if od == 0 && id == 0 {
            isolated += 1;
        }
    }
    GraphStats {
        nodes: n,
        edges: graph.edge_count(),
        avg_degree: if n == 0 {
            0.0
        } else {
            graph.edge_count() as f64 / n as f64
        },
        max_out_degree: max_out,
        max_in_degree: max_in,
        isolated,
    }
}

/// Out-degree histogram: `hist[d]` = number of nodes with out-degree `d`.
pub fn out_degree_histogram(graph: &DiGraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for u in graph.nodes() {
        let d = graph.out_degree(u);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// In-degree histogram.
pub fn in_degree_histogram(graph: &DiGraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for u in graph.nodes() {
        let d = graph.in_degree(u);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Clauset–Shalizi–Newman discrete MLE for the power-law exponent of a
/// degree sequence, `α̂ = 1 + n / Σ ln(d_i / (d_min − 1/2))` over degrees
/// `d_i ≥ d_min`.
///
/// Returns `None` if fewer than 10 observations reach `d_min`.
pub fn power_law_exponent_mle(
    degrees: impl IntoIterator<Item = usize>,
    d_min: usize,
) -> Option<f64> {
    assert!(d_min >= 1);
    let shift = d_min as f64 - 0.5;
    let mut count = 0usize;
    let mut log_sum = 0.0f64;
    for d in degrees {
        if d >= d_min {
            count += 1;
            log_sum += (d as f64 / shift).ln();
        }
    }
    if count < 10 || log_sum <= 0.0 {
        None
    } else {
        Some(1.0 + count as f64 / log_sum)
    }
}

/// Estimated power-law exponent of a graph's in-degree distribution.
pub fn in_degree_exponent(graph: &DiGraph, d_min: usize) -> Option<f64> {
    power_law_exponent_mle(graph.nodes().map(|v| graph.in_degree(v)), d_min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stats_small() {
        let g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 3);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.isolated, 2);
        assert!((s.avg_degree - 0.6).abs() < 1e-12);
    }

    #[test]
    fn histograms_sum_to_n() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::erdos_renyi_gnm(&mut rng, 50, 200);
        assert_eq!(out_degree_histogram(&g).iter().sum::<usize>(), 50);
        assert_eq!(in_degree_histogram(&g).iter().sum::<usize>(), 50);
    }

    #[test]
    fn mle_recovers_exponent_on_synthetic_sample() {
        let mut rng = StdRng::seed_from_u64(33);
        let degrees: Vec<usize> = (0..20000)
            .map(|_| generators::power_law_degree(&mut rng, 2.5, 1.0, 10_000.0))
            .collect();
        let alpha = power_law_exponent_mle(degrees, 2).unwrap();
        assert!(
            (2.1..=2.9).contains(&alpha),
            "MLE exponent {alpha} outside plausible band for true 2.5"
        );
    }

    #[test]
    fn mle_requires_enough_observations() {
        assert_eq!(power_law_exponent_mle(vec![5usize; 3], 2), None);
    }

    #[test]
    fn ba_graph_in_power_law_band() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = generators::barabasi_albert(&mut rng, 3000, 4);
        let alpha = in_degree_exponent(&g, 5).expect("enough hubs");
        // BA is asymptotically exponent 3; finite-size estimates drift.
        assert!(
            (2.0..=4.0).contains(&alpha),
            "BA exponent estimate {alpha} implausible"
        );
    }

    #[test]
    fn empty_graph_stats() {
        let g = DiGraph::from_edges(0, &[]).unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.avg_degree, 0.0);
    }
}
