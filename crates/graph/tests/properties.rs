//! Property-based invariants of the graph substrate.

use oipa_graph::{generators, io, stats, subgraph, traverse, DedupPolicy, DiGraph};
use proptest::prelude::*;

/// Arbitrary edge list over a bounded node universe.
fn edges_strategy(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..max_m);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSR invariants: degree sums equal edge counts, transpose agrees
    /// with forward adjacency, edge-id round trips hold.
    #[test]
    fn csr_invariants((n, edges) in edges_strategy(40, 120)) {
        let g = DiGraph::from_edges(n, &edges).unwrap();
        prop_assert_eq!(g.edge_count(), edges.len());
        let out_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, edges.len());
        prop_assert_eq!(in_sum, edges.len());
        for v in g.nodes() {
            for e in g.in_edges(v) {
                let (s, t) = g.edge_endpoints(e.id).unwrap();
                prop_assert_eq!((s, t), (e.source, v));
            }
        }
    }

    /// Double reversal is the identity.
    #[test]
    fn reversal_involution((n, edges) in edges_strategy(30, 80)) {
        let g = DiGraph::from_edges(n, &edges).unwrap();
        prop_assert_eq!(g.reversed().reversed(), g);
    }

    /// Text and binary IO round-trip losslessly (modulo dedup-free input).
    #[test]
    fn io_roundtrips((n, edges) in edges_strategy(30, 60)) {
        let g = DiGraph::from_edges(n, &edges).unwrap();
        let mut text = Vec::new();
        io::write_edge_list(&g, &mut text).unwrap();
        let g2 = io::read_edge_list(&text[..], DedupPolicy::KeepAll).unwrap();
        // Text IO loses trailing isolated nodes; compare edge sets.
        let a: Vec<_> = g.edges().map(|e| (e.source, e.target)).collect();
        let b: Vec<_> = g2.edges().map(|e| (e.source, e.target)).collect();
        prop_assert_eq!(a, b);

        let mut bin = Vec::new();
        oipa_graph::binio::write_graph(&g, &mut bin).unwrap();
        prop_assert_eq!(oipa_graph::binio::read_graph(&bin[..]).unwrap(), g);
    }

    /// Reachability is reflexive and consistent with the transpose:
    /// v ∈ forward(u) ⇔ u ∈ backward(v).
    #[test]
    fn reachability_duality((n, edges) in edges_strategy(20, 50), s1 in 0u32..20, s2 in 0u32..20) {
        let g = DiGraph::from_edges(n, &edges).unwrap();
        let u = s1 % n;
        let v = s2 % n;
        let fwd = traverse::forward_reachable(&g, u);
        let bwd = traverse::backward_reachable(&g, v);
        prop_assert!(fwd.contains(&u));
        prop_assert_eq!(fwd.contains(&v), bwd.contains(&u));
    }

    /// Component labels partition the nodes and are edge-consistent.
    #[test]
    fn component_partition((n, edges) in edges_strategy(30, 60)) {
        let g = DiGraph::from_edges(n, &edges).unwrap();
        let (labels, count) = traverse::weakly_connected_components(&g);
        prop_assert_eq!(labels.len(), n as usize);
        prop_assert!(labels.iter().all(|&l| (l as usize) < count));
        for e in g.edges() {
            prop_assert_eq!(labels[e.source as usize], labels[e.target as usize]);
        }
    }

    /// Induced subgraph of everything is the identity; of nothing, empty;
    /// edge mapping is consistent.
    #[test]
    fn subgraph_extremes((n, edges) in edges_strategy(25, 60)) {
        let g = DiGraph::from_edges(n, &edges).unwrap();
        let all = subgraph::induced_subgraph(&g, 0..n);
        prop_assert_eq!(&all.graph, &g);
        let none = subgraph::induced_subgraph(&g, std::iter::empty());
        prop_assert_eq!(none.graph.node_count(), 0);
        // Half extraction: every kept edge's endpoints are kept nodes.
        let half = subgraph::induced_subgraph(&g, (0..n).filter(|v| v % 2 == 0));
        for e in half.graph.edges() {
            let old_s = half.old_of_new[e.source as usize];
            let old_t = half.old_of_new[e.target as usize];
            prop_assert!(old_s % 2 == 0 && old_t % 2 == 0);
            prop_assert!(g.find_edge(old_s, old_t).is_some());
        }
    }

    /// Core numbers never exceed total degree and peel monotonically:
    /// the k-core subgraph has min total degree ≥ k (within the subgraph).
    #[test]
    fn core_number_bounds((n, edges) in edges_strategy(25, 80)) {
        let g = DiGraph::from_edges(n, &edges).unwrap();
        let core = subgraph::core_numbers(&g);
        for v in g.nodes() {
            prop_assert!(core[v as usize] as usize <= g.out_degree(v) + g.in_degree(v));
        }
        let k = 2;
        let ex = subgraph::k_core(&g, k);
        for v in ex.graph.nodes() {
            let total = ex.graph.out_degree(v) + ex.graph.in_degree(v);
            prop_assert!(
                total >= k as usize || ex.graph.node_count() == 0,
                "k-core node {v} has degree {total}"
            );
        }
    }

    /// Graph statistics are internally consistent.
    #[test]
    fn stats_consistency((n, edges) in edges_strategy(30, 80)) {
        let g = DiGraph::from_edges(n, &edges).unwrap();
        let s = stats::graph_stats(&g);
        prop_assert_eq!(s.nodes, n as usize);
        prop_assert_eq!(s.edges, edges.len());
        let hist = stats::out_degree_histogram(&g);
        prop_assert_eq!(hist.iter().sum::<usize>(), n as usize);
        let mass: usize = hist.iter().enumerate().map(|(d, &c)| d * c).sum();
        prop_assert_eq!(mass, edges.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generators honor their basic contracts for arbitrary seeds.
    #[test]
    fn generator_contracts(seed in 0u64..10_000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let gnm = generators::erdos_renyi_gnm(&mut rng, 40, 100);
        prop_assert_eq!(gnm.edge_count(), 100);
        let ba = generators::barabasi_albert(&mut rng, 50, 2);
        prop_assert_eq!(ba.node_count(), 50);
        for e in ba.edges() {
            prop_assert_ne!(e.source, e.target);
        }
        let pl = generators::power_law_configuration(&mut rng, 60, 2.5, 1.0, Some(200), None);
        prop_assert!(pl.edge_count() <= 200);
    }
}
