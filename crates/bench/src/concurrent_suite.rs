//! The `concurrent` benchmark family: multi-threaded request throughput
//! through one shared `PlannerService`.
//!
//! Produces the `BENCH_concurrent.json` artifact quantifying what the
//! `&self` serving refactor buys: one session behind an `Arc` answering
//! requests from N worker threads at once. For each thread count the
//! suite drives the same warm-pool request mix through the shared
//! session and reports wall-clock, mean latency, and requests/sec; a
//! separate cold phase races every worker against one unsampled pool key
//! and checks that the key is sampled **exactly once**. Every answer —
//! at every thread count — is cross-checked bitwise against a sequential
//! reference run: concurrency may only ever change latency, never
//! results. Reproduce with `oipa-cli bench concurrent [--smoke]` or
//! `cargo run --release -p oipa-bench --bin bench_concurrent`.

use oipa_sampler::testkit::small_random_instance;
use oipa_sampler::MrrPool;
use oipa_service::{Method, PlannerService, SolveRequest, SolveResponse};
use oipa_store::{EvictionPolicyKind, PoolKey, PoolStore};
use oipa_topics::Campaign;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Schema identifier stamped into every report. v2 adds the lock-stripe
/// contention matrix (`contention`) introduced with the sharded arena.
pub const CONCURRENT_SCHEMA: &str = "oipa.bench.concurrent/v2";

/// Suite configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConcurrentSuiteConfig {
    /// Tiny single-phase mode for CI smoke checks.
    pub smoke: bool,
    /// Base seed for instance generation.
    pub seed: u64,
}

/// One thread-count measurement over the shared warm session.
#[derive(Debug, Clone, Serialize)]
pub struct ConcurrentPhaseRecord {
    /// Worker threads driving the shared session.
    pub threads: usize,
    /// Requests answered in this phase.
    pub requests: usize,
    /// Wall-clock for the whole phase, milliseconds.
    pub total_ms: f64,
    /// Mean per-request wall-clock (total / requests), milliseconds.
    pub mean_ms: f64,
    /// Phase throughput.
    pub requests_per_sec: f64,
    /// Pool-cache hits (warm phases must be all-hit).
    pub pool_cache_hits: usize,
    /// Whether every answer matched the sequential reference bitwise.
    pub answers_match_sequential: bool,
}

/// One cell of the lock-stripe contention matrix: N threads hammering a
/// warm key set through `PoolStore::get`, with the keys either all
/// hashing to **one** arena shard (`same-shard` — the worst case a
/// striped lock can face) or placed one-per-stripe (`spread` — the case
/// striping exists for).
#[derive(Debug, Clone, Serialize)]
pub struct ContentionRecord {
    /// Worker threads issuing lookups concurrently.
    pub threads: usize,
    /// Arena lock stripes in the store under test.
    pub shards: usize,
    /// `"same-shard"` or `"spread"`.
    pub keyset: String,
    /// Total lookups issued across all threads.
    pub ops: usize,
    /// Wall-clock for the cell, milliseconds.
    pub total_ms: f64,
    /// Lookup throughput.
    pub ops_per_sec: f64,
    /// Aggregated counters stayed lossless under the race:
    /// `lookups == hits + misses`, all hits, exact op count.
    pub counters_lossless: bool,
}

/// The full suite report (the `BENCH_concurrent.json` payload).
#[derive(Debug, Clone, Serialize)]
pub struct ConcurrentSuiteReport {
    /// Schema identifier (`oipa.bench.concurrent/v2`).
    pub schema: String,
    /// Whether this was a smoke run.
    pub smoke: bool,
    /// Base seed.
    pub seed: u64,
    /// Instance nodes.
    pub nodes: usize,
    /// Instance edges.
    pub edges: usize,
    /// Campaign pieces ℓ.
    pub ell: usize,
    /// MRR samples θ per pool.
    pub theta: usize,
    /// Budget k.
    pub k: usize,
    /// `std::thread::available_parallelism()` on the benching machine —
    /// the gate for any throughput expectation (1-CPU CI measures
    /// correctness, not speedup).
    pub available_parallelism: usize,
    /// Distinct pool keys in the request mix.
    pub distinct_pool_keys: usize,
    /// Cold-race result: N workers hammering one unsampled key must
    /// trigger exactly one sampling run.
    pub sampled_once: bool,
    /// Workers in the cold race.
    pub cold_race_threads: usize,
    /// Per-thread-count measurements.
    pub records: Vec<ConcurrentPhaseRecord>,
    /// The lock-stripe contention matrix: same-shard vs spread key sets
    /// at every (threads × shards) combination.
    pub contention: Vec<ContentionRecord>,
}

struct Spec {
    nodes: u32,
    edges: usize,
    ell: usize,
    theta: usize,
    k: usize,
    requests: usize,
    max_nodes: usize,
    thread_counts: &'static [usize],
    /// Arena stripe counts the contention matrix sweeps.
    contention_shards: &'static [usize],
    /// Warm lookups per worker per contention cell.
    contention_rounds: usize,
}

fn spec(smoke: bool) -> Spec {
    if smoke {
        Spec {
            nodes: 120,
            edges: 900,
            ell: 3,
            theta: 4_000,
            k: 3,
            requests: 12,
            max_nodes: 20,
            thread_counts: &[1, 2],
            contention_shards: &[1, 4],
            contention_rounds: 400,
        }
    } else {
        // The seeded medium instance of the service bench: pools are
        // primed, so the phases measure pure concurrent solve throughput.
        Spec {
            nodes: 400,
            edges: 3_200,
            ell: 3,
            theta: 30_000,
            k: 4,
            requests: 48,
            max_nodes: 40,
            thread_counts: &[1, 2, 4],
            contention_shards: &[1, 4, 16],
            contention_rounds: 20_000,
        }
    }
}

/// Builds `count` keys that all hash to stripe 0 (`same == true`) or
/// cycle one-per-stripe (`same == false`) of `store`'s arena, by probing
/// the stable key → shard mapping.
fn contention_keys(store: &PoolStore, count: usize, same: bool, theta: usize) -> Vec<PoolKey> {
    let shards = store.shard_count();
    let mut out = Vec::with_capacity(count);
    let mut i = 0u64;
    while out.len() < count {
        let key = PoolKey::sampled(format!("contend-{i}"), theta, i);
        let want = if same { 0 } else { out.len() % shards };
        if store.shard_of(&key) == want {
            out.push(key);
        }
        i += 1;
    }
    out
}

/// Runs the contention matrix: for each stripe count, a fresh warm
/// memory-only store is hammered by N threads over a same-shard and a
/// spread key set. Lookup throughput is the measurement; the lossless
/// counter invariant is the correctness check.
fn contention_matrix(spec: &Spec, pool: &Arc<MrrPool>) -> Vec<ContentionRecord> {
    let keys_per_set = 8;
    let mut records = Vec::new();
    for &shards in spec.contention_shards {
        for same in [true, false] {
            // Budget sized so even a single stripe (which gets 1/shards
            // of it) holds the whole key set: eviction is the store
            // bench's subject, not this one's.
            let store = PoolStore::memory_only_with(
                shards * keys_per_set * 2 * pool.memory_bytes().max(1),
                shards,
                EvictionPolicyKind::Lru,
            );
            let keys = contention_keys(&store, keys_per_set, same, spec.theta);
            for key in &keys {
                store.insert(key.clone(), Arc::clone(pool));
            }
            for &threads in spec.thread_counts {
                let tp = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("thread pool builds");
                let before = store.arena_stats();
                let start = Instant::now();
                let _: Vec<()> = tp.install(|| {
                    (0..threads)
                        .collect::<Vec<_>>()
                        .par_iter()
                        .map(|worker| {
                            for round in 0..spec.contention_rounds {
                                let key = &keys[(worker + round) % keys.len()];
                                assert!(store.get(key).is_some(), "warm key missed");
                            }
                        })
                        .collect()
                });
                let total_ms = start.elapsed().as_secs_f64() * 1e3;
                let ops = threads * spec.contention_rounds;
                let after = store.arena_stats();
                let counters_lossless = after.lookups == after.hits + after.misses
                    && after.lookups - before.lookups == ops as u64
                    && after.misses == before.misses;
                records.push(ContentionRecord {
                    threads,
                    shards,
                    keyset: if same { "same-shard" } else { "spread" }.to_string(),
                    ops,
                    total_ms,
                    ops_per_sec: ops as f64 / (total_ms / 1e3).max(1e-9),
                    counters_lossless,
                });
            }
        }
    }
    records
}

/// The request mix: solver methods × two pool seeds, cycled to fill the
/// phase. Two distinct keys make threads collide on shared pools while
/// still exercising the arena's key dispatch.
fn request_mix(spec: &Spec, campaign: &Campaign, seed: u64) -> Vec<SolveRequest> {
    let shapes = [
        (Method::BabP, spec.k, 0u64),
        (Method::Greedy, spec.k, 0),
        (Method::BabP, spec.k.saturating_sub(1).max(1), 1),
        (Method::Tim, spec.k, 1),
    ];
    (0..spec.requests)
        .map(|i| {
            let (method, k, key) = shapes[i % shapes.len()];
            let mut req = SolveRequest::new(method, k);
            req.campaign = Some(campaign.clone());
            req.theta = Some(spec.theta);
            req.seed = Some(seed ^ key);
            req.promoter_fraction = Some(0.2);
            req.max_nodes = Some(spec.max_nodes);
            req
        })
        .collect()
}

/// The answer-bearing part of a response (timing and cache-tier flags
/// are scheduling-dependent; plans, utilities, and bounds are not).
fn answer(r: &SolveResponse) -> (String, u64, Option<u64>, usize) {
    (
        serde_json::to_string(&r.plan).expect("plan serializes"),
        r.utility.to_bits(),
        r.upper_bound.map(f64::to_bits),
        r.theta,
    )
}

/// Runs the suite. Concurrency must never change answers — every phase
/// is compared bitwise to the sequential reference.
pub fn run_concurrent_suite(config: ConcurrentSuiteConfig) -> ConcurrentSuiteReport {
    let spec = spec(config.smoke);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xc0c0);
    let (graph, table, campaign) =
        small_random_instance(&mut rng, spec.nodes, spec.edges, spec.ell + 1, spec.ell);
    let requests = request_mix(&spec, &campaign, config.seed ^ 0x5eed);

    // Sequential reference (and pool priming for the shared session).
    let service = PlannerService::new(graph, table).expect("valid instance");
    let reference: Vec<_> = requests
        .iter()
        .map(|r| answer(&service.solve(r).expect("bench request solves")))
        .collect();

    let mut records = Vec::new();
    for &threads in spec.thread_counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool builds");
        let start = Instant::now();
        let responses: Vec<SolveResponse> = pool.install(|| {
            requests
                .par_iter()
                .map(|r| service.solve(r).expect("bench request solves"))
                .collect()
        });
        let total_ms = start.elapsed().as_secs_f64() * 1e3;
        let hits = responses.iter().filter(|r| r.pool_cache_hit).count();
        let matches = responses
            .iter()
            .zip(&reference)
            .all(|(r, expected)| &answer(r) == expected);
        records.push(ConcurrentPhaseRecord {
            threads,
            requests: responses.len(),
            total_ms,
            mean_ms: total_ms / responses.len().max(1) as f64,
            requests_per_sec: responses.len() as f64 / (total_ms / 1e3).max(1e-9),
            pool_cache_hits: hits,
            answers_match_sequential: matches,
        });
    }

    // Cold race: a fresh session, one unsampled key, every worker at
    // once. Exactly one request may pay for sampling.
    let cold_race_threads = *spec.thread_counts.iter().max().expect("thread counts");
    let (graph, table, _) = small_random_instance(
        &mut StdRng::seed_from_u64(config.seed ^ 0xc0c0),
        spec.nodes,
        spec.edges,
        spec.ell + 1,
        spec.ell,
    );
    let cold_service = PlannerService::new(graph, table).expect("valid instance");
    let cold_req = &requests[0];
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(cold_race_threads)
        .build()
        .expect("thread pool builds");
    let race: Vec<SolveResponse> = pool.install(|| {
        (0..cold_race_threads)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|_| cold_service.solve(cold_req).expect("cold request solves"))
            .collect()
    });
    let sampled_once = race.iter().filter(|r| !r.pool_cache_hit).count() == 1;

    // Contention matrix: raw store lookups, no solver in the loop — the
    // pool is a small instance so the cost under test is the lock, not
    // the payload.
    let mut contention_rng = StdRng::seed_from_u64(config.seed ^ 0xf00d);
    let (cg, ct, cc) = small_random_instance(&mut contention_rng, 60, 400, spec.ell + 1, spec.ell);
    let contention_pool = Arc::new(MrrPool::generate(&cg, &ct, &cc, 500, 1));
    let contention = contention_matrix(&spec, &contention_pool);

    ConcurrentSuiteReport {
        schema: CONCURRENT_SCHEMA.to_string(),
        smoke: config.smoke,
        seed: config.seed,
        nodes: spec.nodes as usize,
        edges: spec.edges,
        ell: spec.ell,
        theta: spec.theta,
        k: spec.k,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        distinct_pool_keys: 2,
        sampled_once,
        cold_race_threads,
        records,
        contention,
    }
}

/// Validates a report's schema and the invariants the CI smoke step
/// asserts: every phase is all-hit and answer-identical to sequential,
/// the cold race sampled exactly once, and — only off CI-class 1-CPU
/// machines (`available_parallelism > 1`) on full runs — the best
/// multi-threaded phase must beat the single-threaded one.
pub fn validate_report(report: &ConcurrentSuiteReport) -> Result<(), String> {
    if report.schema != CONCURRENT_SCHEMA {
        return Err(format!(
            "schema mismatch: {} != {CONCURRENT_SCHEMA}",
            report.schema
        ));
    }
    if report.records.is_empty() {
        return Err("no thread-count records".to_string());
    }
    for r in &report.records {
        if !r.answers_match_sequential {
            return Err(format!(
                "{} thread(s): answers diverged from the sequential reference",
                r.threads
            ));
        }
        if r.pool_cache_hits != r.requests {
            return Err(format!(
                "{} thread(s): warm phase had {} hits over {} requests",
                r.threads, r.pool_cache_hits, r.requests
            ));
        }
        if r.requests_per_sec <= 0.0 {
            return Err(format!("{} thread(s): empty phase", r.threads));
        }
    }
    if !report.sampled_once {
        return Err(format!(
            "cold race over {} workers did not sample exactly once",
            report.cold_race_threads
        ));
    }
    if report.contention.is_empty() {
        return Err("no contention records".to_string());
    }
    for c in &report.contention {
        if !c.counters_lossless {
            return Err(format!(
                "contention {} threads × {} shards ({}): counters lost updates",
                c.threads, c.shards, c.keyset
            ));
        }
        if c.ops_per_sec <= 0.0 {
            return Err(format!(
                "contention {} threads × {} shards ({}): empty cell",
                c.threads, c.shards, c.keyset
            ));
        }
    }
    // The throughput expectation is gated on real parallelism: a 1-CPU
    // container (this repo's CI) can only measure correctness. A 10%
    // tolerance absorbs scheduler noise on loaded machines — the gate
    // catches a serialized (lock-convoyed) implementation, not jitter.
    if !report.smoke && report.available_parallelism > 1 {
        let single = report
            .records
            .iter()
            .find(|r| r.threads == 1)
            .ok_or("missing single-thread record")?;
        let best = report
            .records
            .iter()
            .filter(|r| r.threads > 1)
            .map(|r| r.requests_per_sec)
            .fold(0.0f64, f64::max);
        if best < 0.9 * single.requests_per_sec {
            return Err(format!(
                "every multi-threaded phase fell >10% below the single-threaded \
                 {:.2} req/s (best: {best:.2}) despite available_parallelism = {}",
                single.requests_per_sec, report.available_parallelism
            ));
        }
        // Striping's reason to exist: at the highest thread and stripe
        // counts, keys spread across stripes must not run materially
        // slower than keys convoyed on one stripe. (25% tolerance — this
        // catches a striping implementation that serializes everything,
        // not scheduler jitter.)
        let max_threads = report.records.iter().map(|r| r.threads).max().unwrap_or(1);
        let max_shards = report
            .contention
            .iter()
            .map(|c| c.shards)
            .max()
            .unwrap_or(1);
        let cell = |keyset: &str| {
            report
                .contention
                .iter()
                .find(|c| c.threads == max_threads && c.shards == max_shards && c.keyset == keyset)
                .map(|c| c.ops_per_sec)
        };
        if let (Some(same), Some(spread)) = (cell("same-shard"), cell("spread")) {
            if spread < 0.75 * same {
                return Err(format!(
                    "spread keys ({spread:.0} ops/s) ran >25% behind same-shard keys \
                     ({same:.0} ops/s) at {max_threads} threads × {max_shards} shards"
                ));
            }
        }
    }
    Ok(())
}

/// Renders the human-readable summary printed by the bin and CLI.
pub fn summary_text(report: &ConcurrentSuiteReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "concurrent bench: {} nodes, {} edges, ell={}, theta={}, k={}, \
         available_parallelism={}",
        report.nodes,
        report.edges,
        report.ell,
        report.theta,
        report.k,
        report.available_parallelism
    );
    let _ = writeln!(
        out,
        "{:>8} {:>9} {:>10} {:>10} {:>10} {:>6} {:>8}",
        "threads", "requests", "total_ms", "mean_ms", "req/s", "hits", "parity"
    );
    for r in &report.records {
        let _ = writeln!(
            out,
            "{:>8} {:>9} {:>10.1} {:>10.2} {:>10.2} {:>6} {:>8}",
            r.threads,
            r.requests,
            r.total_ms,
            r.mean_ms,
            r.requests_per_sec,
            r.pool_cache_hits,
            if r.answers_match_sequential {
                "ok"
            } else {
                "DIVERGED"
            }
        );
    }
    let _ = writeln!(
        out,
        "cold race: {} workers, sampled exactly once: {}",
        report.cold_race_threads, report.sampled_once
    );
    let _ = writeln!(
        out,
        "contention (warm store lookups; throughput only meaningful when \
         available_parallelism > 1):"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>7} {:>11} {:>9} {:>10} {:>12} {:>9}",
        "threads", "shards", "keyset", "ops", "total_ms", "ops/s", "counters"
    );
    for c in &report.contention {
        let _ = writeln!(
            out,
            "{:>8} {:>7} {:>11} {:>9} {:>10.1} {:>12.0} {:>9}",
            c.threads,
            c.shards,
            c.keyset,
            c.ops,
            c.total_ms,
            c.ops_per_sec,
            if c.counters_lossless { "ok" } else { "LOSSY" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_passes_validation() {
        let report = run_concurrent_suite(ConcurrentSuiteConfig {
            smoke: true,
            seed: 0,
        });
        assert_eq!(report.records.len(), 2);
        assert!(report.sampled_once);
        // 2 stripe counts × 2 keysets × 2 thread counts.
        assert_eq!(report.contention.len(), 8);
        assert!(report.contention.iter().all(|c| c.counters_lossless));
        validate_report(&report).expect("smoke report must validate");
        let text = summary_text(&report);
        assert!(text.contains("cold race"), "{text}");
        assert!(text.contains("same-shard"), "{text}");
    }
}
