//! # oipa-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation (§VI). One binary per artifact:
//!
//! | artifact | binary |
//! |---|---|
//! | Table III (dataset statistics + sample time) | `table3_stats` |
//! | Figure 3 (utility vs ε) | `fig3_epsilon` |
//! | Figure 4 (utility & time vs k) | `fig4_vary_k` |
//! | Figure 5 (utility & time vs ℓ) | `fig5_vary_l` |
//! | Figure 6 (utility vs β/α) | `fig6_beta_alpha` |
//!
//! Every binary accepts `--scale tiny|small|medium|full`, `--theta N`,
//! `--seed N` and `--csv` (machine-readable output). Method timings
//! exclude MRR sampling, matching the paper's methodology ("we exclude the
//! sampling time … since the time is the same for all compared
//! approaches"); sampling time itself is Table III's last row.
//!
//! Beyond the paper's artifacts, two suites track the repo's own perf
//! trajectory: [`solver_suite`] (the `bench_solver` bin, also reachable
//! as `oipa-cli bench solver`) emits `BENCH_solver.json` with wall-clock,
//! τ-evaluation and search-shape counters for the incremental vs
//! reference engines, [`service_suite`] (the `bench_service` bin /
//! `oipa-cli bench service`) emits `BENCH_service.json` with cold-pool vs
//! warm-pool request latency through the `PlannerService` arena,
//! [`store_suite`] (the `bench_store` bin / `oipa-cli bench store`) emits
//! `BENCH_store.json` with cold vs disk-warm vs mem-warm latency through
//! the persistent pool store, and [`concurrent_suite`] (the
//! `bench_concurrent` bin / `oipa-cli bench concurrent`) emits
//! `BENCH_concurrent.json` with per-thread-count latency and
//! requests/sec through one shared `&self` session, answers cross-checked
//! bitwise against a sequential run, and [`serve_suite`] (the
//! `bench_serve` bin / `oipa-cli bench serve`) emits `BENCH_serve.json`
//! with open-loop p50/p99/p999 latency through a live `oipa-server` HTTP
//! front door under a zipfian campaign-key mix, answers cross-checked
//! bitwise against an in-process session, and [`dynamic_suite`] (the
//! `bench_dynamic` bin / `oipa-cli bench dynamic`) emits
//! `BENCH_dynamic.json` with delta-repair vs cold-resample latency
//! through the epoch machinery, repaired answers cross-checked bitwise
//! against a cold post-delta solve.
//!
//! Criterion micro/ablation benches live in `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod concurrent_suite;
pub mod dynamic_suite;
pub mod runner;
pub mod serve_suite;
pub mod service_suite;
pub mod solver_suite;
pub mod store_suite;
pub mod table;

pub use args::HarnessArgs;
pub use concurrent_suite::{run_concurrent_suite, ConcurrentSuiteConfig, ConcurrentSuiteReport};
pub use dynamic_suite::{run_dynamic_suite, DynamicSuiteConfig, DynamicSuiteReport};
pub use runner::{run_all_methods, ExperimentSetup, MethodOutcome};
pub use serve_suite::{run_serve_suite, ServeSuiteConfig, ServeSuiteReport};
pub use service_suite::{run_service_suite, ServiceSuiteConfig, ServiceSuiteReport};
pub use solver_suite::{run_solver_suite, SolverSuiteConfig, SolverSuiteReport};
pub use store_suite::{run_store_suite, StoreSuiteConfig, StoreSuiteReport};
pub use table::TablePrinter;
