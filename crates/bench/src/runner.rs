//! Shared experiment runner: one MRR pool, four methods, timed rows.

use oipa_baselines::{im_baseline, paper::collapsed_pool, tim_baseline};
use oipa_core::{AuEstimator, BabConfig, BranchAndBound, OipaInstance};
use oipa_datasets::Dataset;
use oipa_sampler::MrrPool;
use oipa_topics::{Campaign, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Everything needed to run the four compared methods once.
pub struct ExperimentSetup<'a> {
    /// The dataset under test.
    pub dataset: &'a Dataset,
    /// The campaign (ℓ pieces, one-hot topic vectors per §VI-A).
    pub campaign: Campaign,
    /// Adoption model.
    pub model: LogisticAdoption,
    /// Budget k.
    pub k: usize,
    /// MRR samples per piece.
    pub theta: usize,
    /// ε for BAB-P.
    pub eps: f64,
    /// RNG seed (promoter pool + sampling).
    pub seed: u64,
    /// Node-expansion cap for both BAB variants.
    pub max_nodes: usize,
}

/// One method's outcome in an experiment row.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Method label (`IM`/`TIM`/`BAB`/`BAB-P`).
    pub method: &'static str,
    /// Estimated adoption utility (user units).
    pub utility: f64,
    /// Seed-selection time (sampling excluded).
    pub time: Duration,
}

/// Sampling products shared by all methods of one experiment.
pub struct Prepared {
    /// The MRR pool (θ × ℓ RR sets).
    pub pool: MrrPool,
    /// Wall time to generate the pool (Table III's "sample time").
    pub sample_time: Duration,
    /// The promoter pool (10% of users, §VI-A).
    pub promoters: Vec<u32>,
}

/// Samples the MRR pool and promoter pool for a setup.
pub fn prepare(setup: &ExperimentSetup<'_>) -> Prepared {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let start = Instant::now();
    let pool = MrrPool::generate_parallel(
        &setup.dataset.graph,
        &setup.dataset.table,
        &setup.campaign,
        setup.theta,
        setup.seed,
        threads,
    );
    let sample_time = start.elapsed();
    let mut rng = StdRng::seed_from_u64(setup.seed ^ 0x9090);
    let promoters =
        OipaInstance::sample_promoters(&mut rng, setup.dataset.graph.node_count(), 0.10);
    Prepared {
        pool,
        sample_time,
        promoters,
    }
}

/// Runs IM, TIM, BAB and BAB-P on a prepared pool; returns one row per
/// method in that order.
pub fn run_all_methods(setup: &ExperimentSetup<'_>, prepared: &Prepared) -> Vec<MethodOutcome> {
    let mut rows = Vec::with_capacity(4);
    let mut estimator = AuEstimator::new(&prepared.pool, setup.model);

    // IM: classical IM on the collapsed graph (sampling for the collapsed
    // pool is part of its setup cost but, like MRR sampling, excluded).
    let flat = collapsed_pool(
        &setup.dataset.graph,
        &setup.dataset.table,
        setup.theta,
        setup.seed ^ 0x1111,
    );
    let im = im_baseline(
        &flat,
        &prepared.pool,
        &mut estimator,
        &prepared.promoters,
        setup.k,
    );
    rows.push(MethodOutcome {
        method: "IM",
        utility: im.utility,
        time: im.elapsed,
    });

    // TIM.
    let tim = tim_baseline(&prepared.pool, &mut estimator, &prepared.promoters, setup.k);
    rows.push(MethodOutcome {
        method: "TIM",
        utility: tim.utility,
        time: tim.elapsed,
    });

    // BAB — with the paper's plain-greedy ComputeBound (Algorithm 2 as
    // printed). Our CELF-accelerated variant is measured separately in the
    // `ablation_lazy`/`bounds` benches; using it here would hide the very
    // rescan cost BAB-P's speedup claim is about.
    let instance = OipaInstance::new(
        &prepared.pool,
        setup.model,
        prepared.promoters.clone(),
        setup.k,
    )
    .unwrap();
    let config = BabConfig {
        max_nodes: Some(setup.max_nodes),
        method: oipa_core::BoundMethod::PlainGreedy,
        ..BabConfig::bab()
    };
    let sol = BranchAndBound::new(&instance, config).solve();
    rows.push(MethodOutcome {
        method: "BAB",
        utility: sol.utility,
        time: sol.stats.elapsed,
    });

    // BAB-P.
    let config = BabConfig {
        max_nodes: Some(setup.max_nodes),
        ..BabConfig::bab_p(setup.eps)
    };
    let sol = BranchAndBound::new(&instance, config).solve();
    rows.push(MethodOutcome {
        method: "BAB-P",
        utility: sol.utility,
        time: sol.stats.elapsed,
    });

    rows
}

/// The three stand-in datasets at their harness-default scales (`lastfm`
/// is tiny in the paper already, so it defaults to full scale; the big
/// two default to `Scale::Small` to stay laptop-friendly — raise with
/// `--scale`).
pub fn harness_datasets(args: &crate::HarnessArgs) -> Vec<Dataset> {
    use oipa_datasets::{dblp_like, lastfm_like, tweet_like, Scale};
    let mut out = Vec::new();
    if args.wants("lastfm") {
        out.push(lastfm_like(args.scale_for(Scale::Full), args.seed));
    }
    if args.wants("dblp") {
        out.push(dblp_like(args.scale_for(Scale::Small), args.seed));
    }
    if args.wants("tweet") {
        out.push(tweet_like(args.scale_for(Scale::Small), args.seed));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_datasets::{lastfm_like, Scale};

    #[test]
    fn end_to_end_tiny_run() {
        let dataset = lastfm_like(Scale::Tiny, 5);
        let mut rng = StdRng::seed_from_u64(5);
        let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 3);
        let setup = ExperimentSetup {
            dataset: &dataset,
            campaign,
            model: LogisticAdoption::from_ratio(0.5),
            k: 5,
            theta: 5_000,
            eps: 0.5,
            seed: 5,
            max_nodes: 8,
        };
        let prepared = prepare(&setup);
        assert_eq!(prepared.pool.theta(), 5_000);
        assert!(!prepared.promoters.is_empty());
        let rows = run_all_methods(&setup, &prepared);
        assert_eq!(rows.len(), 4);
        let by_name: std::collections::HashMap<_, _> =
            rows.iter().map(|r| (r.method, r.utility)).collect();
        // The proposed methods must not lose to the baselines (they share
        // the estimator; BAB explores a strict superset of plans).
        assert!(by_name["BAB"] + 1e-9 >= by_name["IM"]);
        assert!(by_name["BAB"] + 1e-9 >= by_name["TIM"] * 0.95);
        for r in &rows {
            assert!(r.utility.is_finite() && r.utility >= 0.0);
        }
    }
}
