//! Figure 3 — tuning ε for BAB-P.
//!
//! For each dataset, sweep ε ∈ {0.1, 0.3, 0.5, 0.7, 0.9} at k = 50,
//! ℓ = 3, β/α = 0.5 and report BAB-P's adoption utility. The paper
//! observes a shallow descending trend (quality drops by 0.08%–6.6%
//! from ε = 0.1 to 0.9).
//!
//! ```text
//! cargo run --release -p oipa-bench --bin fig3_epsilon -- [--scale ...] [--csv]
//! ```

use oipa_bench::runner::{harness_datasets, prepare, ExperimentSetup};
use oipa_bench::table::{secs, utility, TablePrinter};
use oipa_bench::HarnessArgs;
use oipa_core::{BabConfig, BranchAndBound, OipaInstance};
use oipa_topics::{Campaign, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::from_env();
    let mut table = TablePrinter::new(&["dataset", "epsilon", "utility", "time_s"], args.csv);
    for dataset in harness_datasets(&args) {
        let mut rng = StdRng::seed_from_u64(args.seed);
        let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 3);
        let k = 50.min(dataset.graph.node_count() / 4).max(2);
        let setup = ExperimentSetup {
            dataset: &dataset,
            campaign,
            model: LogisticAdoption::from_ratio(0.5),
            k,
            theta: args.theta,
            eps: 0.5,
            seed: args.seed,
            max_nodes: args.max_nodes,
        };
        let prepared = prepare(&setup);
        for &eps in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let instance = OipaInstance::new(
                &prepared.pool,
                setup.model,
                prepared.promoters.clone(),
                setup.k,
            )
            .unwrap();
            let config = BabConfig {
                max_nodes: Some(args.max_nodes),
                ..BabConfig::bab_p(eps)
            };
            let sol = BranchAndBound::new(&instance, config).solve();
            table.row(&[
                dataset.name.to_string(),
                format!("{eps:.1}"),
                utility(sol.utility),
                secs(sol.stats.elapsed),
            ]);
        }
    }
    println!(
        "# Figure 3 — BAB-P utility vs ε (paper: descending, −0.08%/−6.6%/−1.4% from ε=0.1 to 0.9)"
    );
    table.print();
}
