//! `bench_dynamic` — emits the `BENCH_dynamic.json` artifact for
//! surgical invalidation (delta repair vs cold resample latency).
//!
//! ```text
//! bench_dynamic [--smoke] [--check] [--seed N] [--out FILE]
//! ```
//!
//! * `--smoke` — one tiny instance (seconds; the CI mode)
//! * `--check` — validate the report invariants (both scenarios,
//!   bitwise answer parity, surgical resample fractions, the ≥10×
//!   repair bar on full runs) and the written JSON, exiting non-zero
//!   on violation
//! * `--out`   — output path (default `BENCH_dynamic.json`)

use oipa_bench::dynamic_suite::{
    run_dynamic_suite, summary_text, validate_report, DynamicSuiteConfig, DYNAMIC_SCHEMA,
};

fn main() {
    let mut config = DynamicSuiteConfig::default();
    let mut check = false;
    let mut out = String::from("BENCH_dynamic.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => config.smoke = true,
            "--check" => check = true,
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| die("--out needs a path"));
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }

    let report = run_dynamic_suite(config).unwrap_or_else(|e| die(&e));
    print!("{}", summary_text(&report));
    let json = serde_json::to_string_pretty(&report).unwrap_or_else(|e| die(&format!("{e}")));
    std::fs::write(&out, &json).unwrap_or_else(|e| die(&format!("writing {out}: {e}")));
    println!("wrote {out} ({} records)", report.records.len());

    if check {
        if let Err(e) = validate_report(&report) {
            die(&format!("validation failed: {e}"));
        }
        let text = std::fs::read_to_string(&out).unwrap_or_else(|e| die(&format!("{e}")));
        let value: serde_json::Value =
            serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("invalid JSON: {e}")));
        match value.get("schema") {
            Some(serde_json::Value::String(s)) if s == DYNAMIC_SCHEMA => {}
            other => die(&format!("schema field mismatch in {out}: {other:?}")),
        }
        println!("check passed: schema + invariants hold");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("bench_dynamic: {msg}");
    std::process::exit(1);
}
