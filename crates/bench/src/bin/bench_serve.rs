//! `bench_serve` — emits the `BENCH_serve.json` artifact for the HTTP
//! serving stack (open-loop load against a live in-process
//! `oipa-server`).
//!
//! ```text
//! bench_serve [--smoke] [--check] [--seed N] [--rate RPS] [--out FILE]
//! ```
//!
//! * `--smoke` — one tiny instance (seconds; the CI mode)
//! * `--check` — validate the report invariants and the written JSON,
//!   exiting non-zero on violation
//! * `--rate`  — warm-phase open-loop target rate, requests/second
//! * `--out`   — output path (default `BENCH_serve.json`)

use oipa_bench::serve_suite::{
    run_serve_suite, summary_text, validate_report, ServeSuiteConfig, SERVE_SCHEMA,
};

fn main() {
    let mut smoke = false;
    let mut check = false;
    let mut seed = 0u64;
    let mut rate: Option<f64> = None;
    let mut out = String::from("BENCH_serve.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--rate" => {
                rate = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--rate needs a number")),
                );
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| die("--out needs a path"));
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }

    let report = run_serve_suite(ServeSuiteConfig { smoke, seed, rate })
        .unwrap_or_else(|e| die(&format!("suite failed: {e}")));
    print!("{}", summary_text(&report));
    let json = serde_json::to_string_pretty(&report).unwrap_or_else(|e| die(&format!("{e}")));
    std::fs::write(&out, &json).unwrap_or_else(|e| die(&format!("writing {out}: {e}")));
    println!("wrote {out} ({} records)", report.records.len());

    if check {
        if let Err(e) = validate_report(&report) {
            die(&format!("validation failed: {e}"));
        }
        let text = std::fs::read_to_string(&out).unwrap_or_else(|e| die(&format!("{e}")));
        let value: serde_json::Value =
            serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("invalid JSON: {e}")));
        match value.get("schema") {
            Some(serde_json::Value::String(s)) if s == SERVE_SCHEMA => {}
            other => die(&format!("schema field mismatch in {out}: {other:?}")),
        }
        println!("check passed: schema + invariants hold");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("bench_serve: {msg}");
    std::process::exit(1);
}
