//! `bench_store` — emits the `BENCH_store.json` artifact for the
//! persistent pool store (cold vs disk-warm vs mem-warm latency).
//!
//! ```text
//! bench_store [--smoke] [--check] [--seed N] [--out FILE] [--store-dir DIR]
//! ```
//!
//! * `--smoke` — one tiny instance (seconds; the CI mode)
//! * `--check` — validate the report invariants (three phases per
//!   method, bitwise answer parity, the ≥10× disk-warm bar on full
//!   runs) and the written JSON, exiting non-zero on violation
//! * `--out`       — output path (default `BENCH_store.json`)
//! * `--store-dir` — store directory (default: per-seed temp dir; wiped)

use oipa_bench::store_suite::{
    run_store_suite, summary_text, validate_report, StoreSuiteConfig, STORE_SCHEMA,
};

fn main() {
    let mut config = StoreSuiteConfig::default();
    let mut check = false;
    let mut out = String::from("BENCH_store.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => config.smoke = true,
            "--check" => check = true,
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| die("--out needs a path"));
            }
            "--store-dir" => {
                let dir = args
                    .next()
                    .unwrap_or_else(|| die("--store-dir needs a path"));
                config.store_dir = Some(dir.into());
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }

    let report = run_store_suite(config).unwrap_or_else(|e| die(&e));
    print!("{}", summary_text(&report));
    let json = serde_json::to_string_pretty(&report).unwrap_or_else(|e| die(&format!("{e}")));
    std::fs::write(&out, &json).unwrap_or_else(|e| die(&format!("writing {out}: {e}")));
    println!("wrote {out} ({} records)", report.records.len());

    if check {
        if let Err(e) = validate_report(&report) {
            die(&format!("validation failed: {e}"));
        }
        let text = std::fs::read_to_string(&out).unwrap_or_else(|e| die(&format!("{e}")));
        let value: serde_json::Value =
            serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("invalid JSON: {e}")));
        match value.get("schema") {
            Some(serde_json::Value::String(s)) if s == STORE_SCHEMA => {}
            other => die(&format!("schema field mismatch in {out}: {other:?}")),
        }
        println!("check passed: schema + invariants hold");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("bench_store: {msg}");
    std::process::exit(1);
}
