//! Figure 4 — utility and runtime of all four methods as the number of
//! promoters k varies (10..100 in the paper; scaled to the pool size
//! here), at ℓ = 3, β/α = 0.5, ε = 0.5.
//!
//! Expected shapes (paper §VI-C): utilities increase with k for all
//! methods; IM worst, TIM better, BAB/BAB-P best and near-identical;
//! IM/TIM fastest, BAB slowest, BAB-P between (up to 24× faster than
//! BAB).
//!
//! ```text
//! cargo run --release -p oipa-bench --bin fig4_vary_k -- [--scale ...] [--csv]
//! ```

use oipa_bench::runner::{harness_datasets, prepare, run_all_methods, ExperimentSetup};
use oipa_bench::table::{secs, utility, TablePrinter};
use oipa_bench::HarnessArgs;
use oipa_topics::{Campaign, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::from_env();
    let mut table = TablePrinter::new(&["dataset", "k", "method", "utility", "time_s"], args.csv);
    let mut speedups: Vec<(String, usize, f64)> = Vec::new();
    for dataset in harness_datasets(&args) {
        let mut rng = StdRng::seed_from_u64(args.seed);
        let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 3);
        // The paper sweeps k = 10..100; clamp to the promoter pool (10% of
        // nodes) so scaled-down datasets stay feasible.
        let pool_size = (dataset.graph.node_count() / 10).max(10);
        let ks: Vec<usize> = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
            .into_iter()
            .filter(|&k| k <= pool_size)
            .collect();
        let mut setup = ExperimentSetup {
            dataset: &dataset,
            campaign,
            model: LogisticAdoption::from_ratio(0.5),
            k: 10,
            theta: args.theta,
            eps: 0.5,
            seed: args.seed,
            max_nodes: args.max_nodes,
        };
        let prepared = prepare(&setup);
        for k in ks {
            setup.k = k;
            let rows = run_all_methods(&setup, &prepared);
            let bab_time = rows
                .iter()
                .find(|r| r.method == "BAB")
                .map(|r| r.time.as_secs_f64())
                .unwrap_or(0.0);
            let bab_p_time = rows
                .iter()
                .find(|r| r.method == "BAB-P")
                .map(|r| r.time.as_secs_f64())
                .unwrap_or(0.0);
            if bab_p_time > 0.0 {
                speedups.push((dataset.name.to_string(), k, bab_time / bab_p_time));
            }
            for r in rows {
                table.row(&[
                    dataset.name.to_string(),
                    k.to_string(),
                    r.method.to_string(),
                    utility(r.utility),
                    secs(r.time),
                ]);
            }
        }
    }
    println!("# Figure 4 — utility & time vs k (paper: BAB≈BAB-P > TIM > IM; BAB-P up to 24× faster than BAB)");
    table.print();
    if let Some((name, k, s)) = speedups
        .iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
    {
        println!("# max BAB/BAB-P speedup: {s:.1}x ({name}, k={k})");
    }
}
