//! Figure 5 — utility and runtime as the number of viral pieces ℓ varies
//! (1..5), at k = 50, β/α = 0.5, ε = 0.5.
//!
//! Expected shapes (paper §VI-D): utilities rise with ℓ for all methods;
//! the IM/TIM gap to BAB/BAB-P widens with ℓ (they optimize one piece
//! only — on `tweet`, BAB reaches 71× IM and 2.9× TIM at ℓ = 5); run
//! time grows with ℓ.
//!
//! ```text
//! cargo run --release -p oipa-bench --bin fig5_vary_l -- [--scale ...] [--csv]
//! ```

use oipa_bench::runner::{harness_datasets, prepare, run_all_methods, ExperimentSetup};
use oipa_bench::table::{secs, utility, TablePrinter};
use oipa_bench::HarnessArgs;
use oipa_topics::{Campaign, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::from_env();
    let mut table = TablePrinter::new(&["dataset", "l", "method", "utility", "time_s"], args.csv);
    for dataset in harness_datasets(&args) {
        let k = 50.min((dataset.graph.node_count() / 10).max(10));
        for ell in 1..=5usize {
            // Fresh campaign per ℓ, same seed family as the paper's setup
            // (uniformly sampled one-hot topic per piece).
            let mut rng = StdRng::seed_from_u64(args.seed ^ ell as u64);
            let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, ell);
            let setup = ExperimentSetup {
                dataset: &dataset,
                campaign,
                model: LogisticAdoption::from_ratio(0.5),
                k,
                theta: args.theta,
                eps: 0.5,
                seed: args.seed,
                max_nodes: args.max_nodes,
            };
            let prepared = prepare(&setup);
            for r in run_all_methods(&setup, &prepared) {
                table.row(&[
                    dataset.name.to_string(),
                    ell.to_string(),
                    r.method.to_string(),
                    utility(r.utility),
                    secs(r.time),
                ]);
            }
        }
    }
    println!("# Figure 5 — utility & time vs ℓ (paper: gaps to IM/TIM widen with ℓ; tweet ℓ=5: BAB = 71×IM, 2.9×TIM)");
    table.print();
}
