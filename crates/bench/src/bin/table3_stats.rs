//! Table III — dataset statistics and MRR sample time.
//!
//! Prints one row per dataset: vertices, edges, average degree, topic
//! count, average per-edge topic support, and the time to generate θ MRR
//! sets for an ℓ = 3 campaign (the paper's "Sample Time" row measures RR
//! generation for the viral pieces).
//!
//! ```text
//! cargo run --release -p oipa-bench --bin table3_stats -- [--scale ...] [--theta N] [--csv]
//! ```

use oipa_bench::runner::{harness_datasets, prepare, ExperimentSetup};
use oipa_bench::table::{secs, TablePrinter};
use oipa_bench::HarnessArgs;
use oipa_topics::{Campaign, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::from_env();
    let mut table = TablePrinter::new(
        &[
            "dataset",
            "scale",
            "vertices",
            "edges",
            "avg_degree",
            "topics",
            "avg_topic_support",
            "sample_time_s",
        ],
        args.csv,
    );
    for dataset in harness_datasets(&args) {
        let stats = dataset.stats();
        let mut rng = StdRng::seed_from_u64(args.seed);
        let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 3);
        let setup = ExperimentSetup {
            dataset: &dataset,
            campaign,
            model: LogisticAdoption::from_ratio(0.5),
            k: 1,
            theta: args.theta,
            eps: 0.5,
            seed: args.seed,
            max_nodes: args.max_nodes,
        };
        let prepared = prepare(&setup);
        table.row(&[
            dataset.name.to_string(),
            format!("{:?}", dataset.scale),
            stats.nodes.to_string(),
            stats.edges.to_string(),
            format!("{:.1}", stats.avg_degree),
            dataset.topics.to_string(),
            format!("{:.2}", dataset.avg_topic_support()),
            secs(prepared.sample_time),
        ]);
    }
    println!("# Table III — dataset statistics (paper: lastfm 1.3K/15K/8.7/20, dblp 0.5M/6M/11.9/9, tweet 10M/12M/1.2/50)");
    table.print();
}
