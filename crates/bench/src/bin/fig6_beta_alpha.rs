//! Figure 6 — utility as the adoption-difficulty ratio β/α varies
//! (0.3, 0.5, 0.7), at k = 50, ℓ = 3, ε = 0.5.
//!
//! Expected shapes (paper §VI-E): utility rises with β/α for all methods
//! (smaller α = easier adoption); BAB/BAB-P's improvement over IM/TIM is
//! *largest at small β/α* (tweet: 280% over TIM at 0.3 vs 190% at 0.7) —
//! harder adoption demands multi-piece coordination.
//!
//! ```text
//! cargo run --release -p oipa-bench --bin fig6_beta_alpha -- [--scale ...] [--csv]
//! ```

use oipa_bench::runner::{harness_datasets, prepare, run_all_methods, ExperimentSetup};
use oipa_bench::table::{secs, utility, TablePrinter};
use oipa_bench::HarnessArgs;
use oipa_topics::{Campaign, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::from_env();
    let mut table = TablePrinter::new(
        &["dataset", "beta_over_alpha", "method", "utility", "time_s"],
        args.csv,
    );
    for dataset in harness_datasets(&args) {
        let mut rng = StdRng::seed_from_u64(args.seed);
        let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 3);
        let k = 50.min((dataset.graph.node_count() / 10).max(10));
        let base = ExperimentSetup {
            dataset: &dataset,
            campaign,
            model: LogisticAdoption::from_ratio(0.5),
            k,
            theta: args.theta,
            eps: 0.5,
            seed: args.seed,
            max_nodes: args.max_nodes,
        };
        // The pool is model-independent (MRR sets only depend on topics),
        // so one sampling pass serves all three ratios.
        let prepared = prepare(&base);
        for &ratio in &[0.3, 0.5, 0.7] {
            let setup = ExperimentSetup {
                model: LogisticAdoption::from_ratio(ratio),
                campaign: base.campaign.clone(),
                ..base
            };
            for r in run_all_methods(&setup, &prepared) {
                table.row(&[
                    dataset.name.to_string(),
                    format!("{ratio:.1}"),
                    r.method.to_string(),
                    utility(r.utility),
                    secs(r.time),
                ]);
            }
        }
    }
    println!(
        "# Figure 6 — utility vs β/α (paper: rising in β/α; BAB-over-TIM gain largest at 0.3)"
    );
    table.print();
}
