//! The `dynamic` benchmark family: delta repair vs cold resample through
//! the `PlannerService` epoch machinery.
//!
//! Produces the `BENCH_dynamic.json` artifact quantifying what surgical
//! invalidation buys on a churning graph: after a [`GraphDelta`] the
//! session's cached pool is stale, and the next request **repairs** it —
//! re-walks only the dead RR sets — instead of resampling from scratch.
//! Two scenarios bound the churn spectrum: `single_edge` reweights one
//! edge, `one_percent` re-estimates every incoming edge of a few
//! high-in-degree nodes until ~1% of all edges have changed (the "the
//! influence into a node got refit" shape real estimators produce —
//! many edges, few dirty targets). For each, the suite times the
//! end-to-end repaired request against a cold service solving the same
//! request on the post-delta inputs, asserts the answers are bitwise
//! identical, and (full runs) asserts repair is ≥ 10× cheaper.
//!
//! The instance uses **weighted-cascade** probabilities (`p(e|z)` scaled
//! by `1/in_degree`, the IM-literature convention): cascades are
//! subcritical, RR sets are small relative to the graph, and a dirty
//! target therefore kills few walks. That is the regime the paper's
//! datasets live in and the one where surgical invalidation pays;
//! uniformly high probabilities make RR sets giant and every delta
//! dirties most of the pool, which no classification can save.
//! Reproduce with `oipa-cli bench dynamic [--smoke]` or
//! `cargo run --release -p oipa-bench --bin bench_dynamic`.

use oipa_graph::DiGraph;
use oipa_service::{EdgeChange, GraphDelta, Method, PlannerService, SolveRequest, TopicProb};
use oipa_topics::{Campaign, SynthesisParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Schema identifier stamped into every report.
pub const DYNAMIC_SCHEMA: &str = "oipa.bench.dynamic/v1";

/// The scenarios every report must carry, in order.
pub const SCENARIOS: [&str; 2] = ["single_edge", "one_percent"];

/// Suite configuration.
#[derive(Debug, Clone, Default)]
pub struct DynamicSuiteConfig {
    /// Tiny single-phase mode for CI smoke checks.
    pub smoke: bool,
    /// Base seed for instance + delta generation.
    pub seed: u64,
}

/// One scenario's measurements. Repair is deterministic, so the set
/// counts are identical across repeats and reported once.
#[derive(Debug, Clone, Serialize)]
pub struct DynamicScenarioRecord {
    /// `single_edge` or `one_percent`.
    pub scenario: String,
    /// Delta operations applied (inserts + removes + reweights).
    pub ops: usize,
    /// Fraction of the graph's edges the delta touched.
    pub edge_fraction: f64,
    /// Distinct source nodes whose out-distributions changed — the
    /// dead-walk classification frontier.
    pub dirty_targets: usize,
    /// Timed repetitions per phase.
    pub repeats: usize,
    /// RR sets in the pool (θ).
    pub sets_total: usize,
    /// RR sets the repair re-walked (dead walks).
    pub sets_resampled: usize,
    /// `sets_resampled / sets_total` — how surgical the repair was.
    pub resample_fraction: f64,
    /// Mean end-to-end latency of the repaired request, milliseconds.
    pub repair_request_mean_ms: f64,
    /// Fastest repaired request, milliseconds.
    pub repair_request_min_ms: f64,
    /// Mean of the repair phase alone (classify + re-walk + write-back),
    /// milliseconds.
    pub repair_phase_mean_ms: f64,
    /// Mean end-to-end latency of a cold service answering the same
    /// request on the post-delta inputs, milliseconds.
    pub cold_request_mean_ms: f64,
    /// Fastest cold request, milliseconds.
    pub cold_request_min_ms: f64,
    /// `cold_request_mean_ms / repair_request_mean_ms`.
    pub speedup: f64,
    /// Whether every repaired answer (plan, utility, bound) was bitwise
    /// identical to its cold counterpart.
    pub answers_match: bool,
}

/// The full suite report (the `BENCH_dynamic.json` payload).
#[derive(Debug, Clone, Serialize)]
pub struct DynamicSuiteReport {
    /// Schema identifier (`oipa.bench.dynamic/v1`).
    pub schema: String,
    /// Whether this was a smoke run.
    pub smoke: bool,
    /// Base seed.
    pub seed: u64,
    /// Instance nodes.
    pub nodes: usize,
    /// Instance edges.
    pub edges: usize,
    /// Campaign pieces ℓ.
    pub ell: usize,
    /// MRR samples θ per pool.
    pub theta: usize,
    /// Budget k.
    pub k: usize,
    /// Solve method.
    pub method: String,
    /// One record per scenario.
    pub records: Vec<DynamicScenarioRecord>,
}

struct Spec {
    nodes: u32,
    edges: usize,
    ell: usize,
    theta: usize,
    k: usize,
    repeats: usize,
    max_nodes: usize,
}

fn spec(smoke: bool) -> Spec {
    if smoke {
        Spec {
            nodes: 400,
            edges: 3_200,
            ell: 3,
            theta: 5_000,
            k: 3,
            repeats: 1,
            max_nodes: 20,
        }
    } else {
        // Large and subcritical: sampling dominates the request (the
        // cost repair avoids) while each RR set covers a small slice of
        // the graph (the property repair exploits).
        Spec {
            nodes: 2_000,
            edges: 16_000,
            ell: 3,
            theta: 100_000,
            k: 4,
            repeats: 3,
            max_nodes: 40,
        }
    }
}

/// The weighted-cascade instance every scenario runs on.
fn instance(seed: u64, spec: &Spec) -> (DiGraph, oipa_topics::EdgeTopicProbs, Campaign) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd14a);
    let graph = oipa_graph::generators::erdos_renyi_gnm(&mut rng, spec.nodes, spec.edges);
    let table = oipa_topics::synthesize_random(
        &mut rng,
        &graph,
        SynthesisParams {
            topic_count: spec.ell + 1,
            avg_support: 1.5,
            max_prob: 0.8,
            weighted_cascade: true,
        },
    );
    let campaign = Campaign::sample_one_hot(&mut rng, spec.ell + 1, spec.ell);
    (graph, table, campaign)
}

const METHOD: Method = Method::BabP;

fn request(spec: &Spec, campaign: &Campaign, seed: u64) -> SolveRequest {
    let mut req = SolveRequest::new(METHOD, spec.k);
    req.campaign = Some(campaign.clone());
    req.theta = Some(spec.theta);
    req.seed = Some(seed);
    req.promoter_fraction = Some(0.2);
    req.max_nodes = Some(spec.max_nodes);
    req
}

/// A fresh single-topic probability row for a reweighted edge, scaled by
/// the target's in-degree to stay in the weighted-cascade regime.
fn random_row(rng: &mut StdRng, topic_count: usize, in_degree: usize) -> Vec<TopicProb> {
    vec![TopicProb {
        topic: rng.gen_range(0..topic_count) as u16,
        prob: rng.gen_range(0.05..0.8f32) / in_degree.max(1) as f32,
    }]
}

/// The in-degree of every node.
fn in_degrees(graph: &DiGraph) -> Vec<usize> {
    let mut degree = vec![0usize; graph.node_count()];
    for edge in graph.edges() {
        degree[edge.target as usize] += 1;
    }
    degree
}

/// Reweights exactly one edge.
fn single_edge_delta(rng: &mut StdRng, graph: &DiGraph, topic_count: usize) -> GraphDelta {
    let pick = rng.gen_range(0..graph.edge_count());
    let edge = graph.edges().nth(pick).expect("edge index in range");
    let in_degree = in_degrees(graph)[edge.target as usize];
    GraphDelta {
        reweight: vec![EdgeChange {
            source: edge.source,
            target: edge.target,
            probs: random_row(rng, topic_count, in_degree),
        }],
        ..GraphDelta::default()
    }
}

/// Re-estimates the influence *into* the highest-in-degree nodes until
/// at least 1% of the graph's edges are covered: every in-edge of each
/// chosen hub gets a fresh row. This is the localized-churn shape
/// probability refits produce — many edges, few dirty targets (RR walks
/// run in reverse, so a reweighted edge dirties its target).
fn hub_reweight_delta(rng: &mut StdRng, graph: &DiGraph, topic_count: usize) -> GraphDelta {
    let degree = in_degrees(graph);
    let mut order: Vec<usize> = (0..graph.node_count()).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(degree[v]));
    let target_ops = (graph.edge_count() / 100).max(2);
    let mut hubs = std::collections::HashSet::new();
    let mut covered = 0usize;
    for &v in &order {
        if covered >= target_ops {
            break;
        }
        hubs.insert(v as u32);
        covered += degree[v];
    }
    let mut delta = GraphDelta::default();
    for edge in graph.edges() {
        if hubs.contains(&edge.target) {
            let in_degree = degree[edge.target as usize];
            delta.reweight.push(EdgeChange {
                source: edge.source,
                target: edge.target,
                probs: random_row(rng, topic_count, in_degree),
            });
        }
    }
    delta
}

/// Runs the suite: for each scenario, a warm session absorbs the delta
/// and repairs its pool on the next request, a cold service solves the
/// same request from scratch on the post-delta inputs, and the answers
/// must agree bitwise.
pub fn run_dynamic_suite(config: DynamicSuiteConfig) -> Result<DynamicSuiteReport, String> {
    let spec = spec(config.smoke);
    let (graph, table, campaign) = instance(config.seed, &spec);
    let req = request(&spec, &campaign, config.seed ^ 0xd15c);
    let err = |e: oipa_core::OipaError| e.to_string();

    let mut records = Vec::new();
    for scenario in SCENARIOS {
        let mut delta_rng = StdRng::seed_from_u64(config.seed ^ 0xde17a);
        let delta = match scenario {
            "single_edge" => single_edge_delta(&mut delta_rng, &graph, spec.ell + 1),
            _ => hub_reweight_delta(&mut delta_rng, &graph, spec.ell + 1),
        };

        // The post-delta inputs every cold reference starts from.
        let app = graph.apply_delta(&delta).map_err(|e| e.to_string())?;
        let cold_table = table.apply_delta(&delta, &app).map_err(|e| e.to_string())?;
        let cold_graph = app.graph;

        let mut ops = 0;
        let mut dirty_targets = 0;
        let mut sets_total = 0;
        let mut sets_resampled = 0;
        let mut repair_phase = Vec::new();
        let mut repair_lat = Vec::new();
        let mut cold_lat = Vec::new();
        let mut answers_match = true;
        for _ in 0..spec.repeats {
            // Warm path: prime (untimed), mutate, time the repair solve.
            let mut warm = PlannerService::new(graph.clone(), table.clone()).map_err(err)?;
            let primed = warm.solve(&req).map_err(err)?;
            assert!(!primed.pool_cache_hit, "priming request found a cache");
            let report = warm.apply_delta(&delta).map_err(err)?;
            ops = report.ops;
            dirty_targets = report.dirty_targets;
            let repaired = warm.solve(&req).map_err(err)?;
            let repair = repaired
                .pool_repair
                .ok_or_else(|| format!("{scenario}: the stale pool was not repaired"))?;
            sets_total = repair.sets_total;
            sets_resampled = repair.sets_resampled;
            repair_phase.push(repair.seconds * 1e3);
            repair_lat.push(repaired.seconds * 1e3);

            // Cold path: a fresh service on the post-delta inputs.
            let cold_service =
                PlannerService::new(cold_graph.clone(), cold_table.clone()).map_err(err)?;
            let cold = cold_service.solve(&req).map_err(err)?;
            assert!(!cold.pool_cache_hit && cold.pool_repair.is_none());
            cold_lat.push(cold.seconds * 1e3);

            answers_match &= repaired.plan == cold.plan
                && repaired.utility.to_bits() == cold.utility.to_bits()
                && repaired.upper_bound.map(f64::to_bits) == cold.upper_bound.map(f64::to_bits);
        }

        let repair_mean = mean(&repair_lat);
        let cold_mean = mean(&cold_lat);
        records.push(DynamicScenarioRecord {
            scenario: scenario.to_string(),
            ops,
            edge_fraction: ops as f64 / graph.edge_count() as f64,
            dirty_targets,
            repeats: spec.repeats,
            sets_total,
            sets_resampled,
            resample_fraction: sets_resampled as f64 / sets_total.max(1) as f64,
            repair_request_mean_ms: repair_mean,
            repair_request_min_ms: min(&repair_lat),
            repair_phase_mean_ms: mean(&repair_phase),
            cold_request_mean_ms: cold_mean,
            cold_request_min_ms: min(&cold_lat),
            speedup: cold_mean / repair_mean.max(1e-9),
            answers_match,
        });
    }

    Ok(DynamicSuiteReport {
        schema: DYNAMIC_SCHEMA.to_string(),
        smoke: config.smoke,
        seed: config.seed,
        nodes: spec.nodes as usize,
        edges: spec.edges,
        ell: spec.ell,
        theta: spec.theta,
        k: spec.k,
        method: METHOD.name().to_string(),
        records,
    })
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Validates a report's schema and the invariants the CI smoke step
/// asserts: both scenarios present, every answer bitwise-matched its
/// cold counterpart, repair re-walked a strict subset of the pool, and
/// (full runs only) repair beat cold resampling by ≥ 10×.
pub fn validate_report(report: &DynamicSuiteReport) -> Result<(), String> {
    if report.schema != DYNAMIC_SCHEMA {
        return Err(format!(
            "schema mismatch: {} != {DYNAMIC_SCHEMA}",
            report.schema
        ));
    }
    for scenario in SCENARIOS {
        let r = report
            .records
            .iter()
            .find(|r| r.scenario == scenario)
            .ok_or_else(|| format!("missing {scenario} record"))?;
        if !r.answers_match {
            return Err(format!(
                "{scenario}: repaired answers diverged from cold post-delta answers"
            ));
        }
        if r.ops == 0 || r.dirty_targets == 0 {
            return Err(format!("{scenario}: the delta was empty"));
        }
        if r.sets_resampled >= r.sets_total {
            return Err(format!(
                "{scenario}: repair re-walked the whole pool ({} of {}) — nothing surgical",
                r.sets_resampled, r.sets_total
            ));
        }
        if r.resample_fraction > 0.5 {
            return Err(format!(
                "{scenario}: repair re-walked {:.0}% of the pool — the dead-walk \
                 classification is not pulling its weight",
                100.0 * r.resample_fraction
            ));
        }
        if !report.smoke && r.speedup < 10.0 {
            return Err(format!(
                "{scenario}: repair speedup {:.2}× is below the 10× bar \
                 (cold {:.1} ms vs repaired {:.1} ms)",
                r.speedup, r.cold_request_mean_ms, r.repair_request_mean_ms
            ));
        }
    }
    if report.records.len() != SCENARIOS.len() {
        return Err(format!(
            "expected {} records, found {}",
            SCENARIOS.len(),
            report.records.len()
        ));
    }
    Ok(())
}

/// Renders the human-readable summary printed by the bin and CLI.
pub fn summary_text(report: &DynamicSuiteReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dynamic bench: {} nodes, {} edges, ell={}, theta={}, k={}, method={}",
        report.nodes, report.edges, report.ell, report.theta, report.k, report.method
    );
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:>7} {:>11} {:>11} {:>11} {:>9}",
        "scenario", "ops", "dirty", "resampled", "repair_ms", "cold_ms", "speedup"
    );
    for r in &report.records {
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>7} {:>10.1}% {:>11.2} {:>11.2} {:>8.1}x",
            r.scenario,
            r.ops,
            r.dirty_targets,
            100.0 * r.resample_fraction,
            r.repair_request_mean_ms,
            r.cold_request_mean_ms,
            r.speedup,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_passes_validation() {
        let report = run_dynamic_suite(DynamicSuiteConfig {
            smoke: true,
            seed: 0,
        })
        .expect("smoke suite runs");
        assert_eq!(report.records.len(), SCENARIOS.len());
        validate_report(&report).expect("smoke report must validate");
        let one_percent = &report.records[1];
        assert!(
            one_percent.edge_fraction >= 0.01,
            "the hub delta must cover >= 1% of edges, got {:.3}",
            one_percent.edge_fraction
        );
        assert!(one_percent.ops > report.records[0].ops);
        let text = summary_text(&report);
        assert!(text.contains("one_percent"), "{text}");
    }
}
