//! The `solver` benchmark family: incremental vs reference
//! branch-and-bound engines on seeded random instances.
//!
//! Produces the `BENCH_solver.json` perf-trajectory artifact with
//! wall-clock, `tau_evaluations` (the paper's §V-C cost metric),
//! `nodes_expanded`, and the incremental engine's cache/trail counters,
//! so future perf PRs can regress against it. Reproduce with
//! `oipa-cli bench solver [--smoke]` or
//! `cargo run --release -p oipa-bench --bin bench_solver`.
//!
//! Every incremental run is paired with its reference run on the same
//! instance and records whether the plans matched — the suite doubles as
//! an end-to-end golden check of the engine-equivalence guarantee.

use oipa_core::{BabConfig, BoundMethod, BranchAndBound, OipaInstance, Solution, SolverEngine};
use oipa_sampler::testkit::small_random_instance;
use oipa_sampler::MrrPool;
use oipa_topics::LogisticAdoption;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Schema identifier stamped into every report.
pub const SOLVER_SCHEMA: &str = "oipa.bench.solver/v1";

/// Suite configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverSuiteConfig {
    /// Tiny single-instance mode for CI smoke checks.
    pub smoke: bool,
    /// Base seed for instance generation.
    pub seed: u64,
}

/// One (instance, method, engine) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct SolverBenchRecord {
    /// Instance label.
    pub instance: String,
    /// Graph nodes.
    pub nodes: usize,
    /// Graph edges.
    pub edges: usize,
    /// Campaign pieces ℓ.
    pub ell: usize,
    /// MRR samples θ.
    pub theta: usize,
    /// Budget k.
    pub k: usize,
    /// Bound method (`bab-celf`, `bab-plain`, `bab-p`).
    pub method: String,
    /// Engine (`reference` or `incremental`).
    pub engine: String,
    /// Wall-clock of `solve` in milliseconds.
    pub wall_ms: f64,
    /// τ marginal-gain evaluations (§V-C cost metric).
    pub tau_evaluations: u64,
    /// Branchings performed.
    pub nodes_expanded: usize,
    /// Bound computations.
    pub bounds_computed: usize,
    /// Seed-cache hits (incremental engine).
    pub seed_cache_hits: u64,
    /// Seed-cache misses / fresh scans (incremental engine).
    pub seed_cache_misses: u64,
    /// Trail entries pushed by the τ workspace.
    pub trail_pushes: u64,
    /// Trail entries popped by the τ workspace.
    pub trail_pops: u64,
    /// Estimated utility (user units).
    pub utility: f64,
    /// Certified upper bound (user units).
    pub upper_bound: f64,
    /// Whether this run's plan is identical to the reference engine's
    /// plan on the same (instance, method). Always true by construction
    /// for reference rows.
    pub plan_matches_reference: bool,
}

/// Per-(instance, method) incremental-vs-reference ratios.
#[derive(Debug, Clone, Serialize)]
pub struct SolverSpeedup {
    /// Instance label.
    pub instance: String,
    /// Bound method.
    pub method: String,
    /// `reference tau_evaluations / incremental tau_evaluations`.
    pub tau_eval_ratio: f64,
    /// `reference wall-clock / incremental wall-clock`.
    pub wall_clock_ratio: f64,
}

/// The full suite report (the `BENCH_solver.json` payload).
#[derive(Debug, Clone, Serialize)]
pub struct SolverSuiteReport {
    /// Schema identifier (`oipa.bench.solver/v1`).
    pub schema: String,
    /// Whether this was a smoke run.
    pub smoke: bool,
    /// Base seed.
    pub seed: u64,
    /// All measurements.
    pub records: Vec<SolverBenchRecord>,
    /// Incremental-vs-reference summaries.
    pub summary: Vec<SolverSpeedup>,
}

struct InstanceSpec {
    label: &'static str,
    seed: u64,
    nodes: u32,
    edges: usize,
    ell: usize,
    theta: usize,
    k: usize,
    alpha: f64,
    max_nodes: usize,
}

/// The seeded bench instances. α sits deep in the coverage range so the
/// logistic is genuinely non-concave over integer coverage and the
/// branch-and-bound actually branches.
fn instances(smoke: bool) -> Vec<InstanceSpec> {
    if smoke {
        vec![InstanceSpec {
            label: "smoke-40",
            seed: 11,
            nodes: 40,
            edges: 260,
            ell: 2,
            theta: 4_000,
            k: 3,
            alpha: 3.0,
            max_nodes: 30,
        }]
    } else {
        vec![
            InstanceSpec {
                label: "rand-90",
                seed: 77,
                nodes: 90,
                edges: 700,
                ell: 3,
                theta: 20_000,
                k: 5,
                alpha: 3.0,
                max_nodes: 120,
            },
            InstanceSpec {
                label: "rand-60",
                seed: 23,
                nodes: 60,
                edges: 420,
                ell: 3,
                theta: 16_000,
                k: 4,
                alpha: 3.5,
                max_nodes: 120,
            },
            InstanceSpec {
                label: "rand-120",
                seed: 29,
                nodes: 120,
                edges: 900,
                ell: 4,
                theta: 20_000,
                k: 6,
                alpha: 4.5,
                max_nodes: 120,
            },
        ]
    }
}

fn method_config(method: &str, max_nodes: usize) -> BabConfig {
    let base = BabConfig {
        max_nodes: Some(max_nodes),
        ..BabConfig::bab()
    };
    match method {
        "bab-celf" => base,
        "bab-plain" => BabConfig {
            method: BoundMethod::PlainGreedy,
            ..base
        },
        "bab-p" => BabConfig {
            method: BoundMethod::Progressive { eps: 0.5 },
            ..base
        },
        other => unreachable!("unknown bench method {other}"),
    }
}

fn record(
    spec: &InstanceSpec,
    method: &str,
    engine: &str,
    solution: &Solution,
    wall_ms: f64,
    plan_matches_reference: bool,
) -> SolverBenchRecord {
    SolverBenchRecord {
        instance: spec.label.to_string(),
        nodes: spec.nodes as usize,
        edges: spec.edges,
        ell: spec.ell,
        theta: spec.theta,
        k: spec.k,
        method: method.to_string(),
        engine: engine.to_string(),
        wall_ms,
        tau_evaluations: solution.stats.tau_evaluations,
        nodes_expanded: solution.stats.nodes_expanded,
        bounds_computed: solution.stats.bounds_computed,
        seed_cache_hits: solution.stats.seed_cache_hits,
        seed_cache_misses: solution.stats.seed_cache_misses,
        trail_pushes: solution.stats.trail_pushes,
        trail_pops: solution.stats.trail_pops,
        utility: solution.utility,
        upper_bound: solution.upper_bound,
        plan_matches_reference,
    }
}

/// Solves are repeated and the minimum wall-clock kept, so the timed
/// fields in the tracked artifact are usable for regression comparisons
/// on noisy (shared, single-core) machines. Everything else the solver
/// reports is deterministic across repeats.
const TIMING_REPEATS: usize = 3;

/// Runs one configuration `TIMING_REPEATS` times, returning the (repeat-
/// invariant) solution and the minimum wall-clock in milliseconds.
fn timed_solve(instance: &OipaInstance<'_>, config: BabConfig) -> (Solution, f64) {
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..TIMING_REPEATS {
        let solution = BranchAndBound::new(instance, config).solve();
        best_ms = best_ms.min(solution.stats.elapsed.as_secs_f64() * 1e3);
        last = Some(solution);
    }
    (last.expect("at least one repeat"), best_ms)
}

/// Runs the suite: for each seeded instance, BAB (CELF) and BAB-P under
/// both engines, plus the plain-greedy rescan baseline (reference engine
/// only — it is the §V-C cost yardstick).
pub fn run_solver_suite(config: SolverSuiteConfig) -> SolverSuiteReport {
    let mut records = Vec::new();
    let mut summary = Vec::new();
    for spec in instances(config.smoke) {
        let mut rng = StdRng::seed_from_u64(spec.seed ^ config.seed);
        let (g, table, campaign) =
            small_random_instance(&mut rng, spec.nodes, spec.edges, spec.ell + 1, spec.ell);
        let pool = MrrPool::generate(
            &g,
            &table,
            &campaign,
            spec.theta,
            spec.seed ^ config.seed ^ 0xbeef,
        );
        let model = LogisticAdoption::new(spec.alpha, 1.0);
        let promoters: Vec<u32> = (0..spec.nodes).step_by(3).collect();
        let instance = OipaInstance::new(&pool, model, promoters, spec.k).unwrap();

        // Plain-greedy rescan baseline (Algorithm 2 as printed).
        let (plain, plain_ms) = timed_solve(
            &instance,
            BabConfig {
                engine: SolverEngine::Reference,
                ..method_config("bab-plain", spec.max_nodes)
            },
        );
        records.push(record(
            &spec,
            "bab-plain",
            "reference",
            &plain,
            plain_ms,
            true,
        ));

        for method in ["bab-celf", "bab-p"] {
            let base = method_config(method, spec.max_nodes);
            let (reference, reference_ms) = timed_solve(
                &instance,
                BabConfig {
                    engine: SolverEngine::Reference,
                    ..base
                },
            );
            let (incremental, incremental_ms) = timed_solve(
                &instance,
                BabConfig {
                    engine: SolverEngine::Incremental,
                    ..base
                },
            );
            let matches = reference.plan == incremental.plan
                && reference.utility.to_bits() == incremental.utility.to_bits();
            summary.push(SolverSpeedup {
                instance: spec.label.to_string(),
                method: method.to_string(),
                tau_eval_ratio: reference.stats.tau_evaluations as f64
                    / incremental.stats.tau_evaluations.max(1) as f64,
                wall_clock_ratio: reference_ms / incremental_ms.max(1e-9),
            });
            records.push(record(
                &spec,
                method,
                "reference",
                &reference,
                reference_ms,
                true,
            ));
            records.push(record(
                &spec,
                method,
                "incremental",
                &incremental,
                incremental_ms,
                matches,
            ));
        }
    }
    SolverSuiteReport {
        schema: SOLVER_SCHEMA.to_string(),
        smoke: config.smoke,
        seed: config.seed,
        records,
        summary,
    }
}

/// Validates a report's schema and the invariants the CI smoke step
/// asserts: CELF never evaluates more than the plain-greedy rescan,
/// every incremental run returned the reference plan with no more
/// evaluations, and (full runs only) the incremental engine cut CELF τ
/// evaluations by ≥2× in aggregate.
pub fn validate_report(report: &SolverSuiteReport) -> Result<(), String> {
    if report.schema != SOLVER_SCHEMA {
        return Err(format!(
            "schema mismatch: {} != {SOLVER_SCHEMA}",
            report.schema
        ));
    }
    if report.records.is_empty() {
        return Err("no records".to_string());
    }
    let find = |instance: &str, method: &str, engine: &str| {
        report
            .records
            .iter()
            .find(|r| r.instance == instance && r.method == method && r.engine == engine)
    };
    let mut celf_ref_total = 0u64;
    let mut celf_inc_total = 0u64;
    for r in &report.records {
        if !r.plan_matches_reference {
            return Err(format!(
                "{}/{}/{}: plan diverged from reference",
                r.instance, r.method, r.engine
            ));
        }
        if r.engine == "incremental" {
            let reference = find(&r.instance, &r.method, "reference")
                .ok_or_else(|| format!("{}/{}: missing reference row", r.instance, r.method))?;
            if r.tau_evaluations > reference.tau_evaluations {
                return Err(format!(
                    "{}/{}: incremental used more τ evaluations ({} > {})",
                    r.instance, r.method, r.tau_evaluations, reference.tau_evaluations
                ));
            }
            if r.method == "bab-celf" {
                celf_ref_total += reference.tau_evaluations;
                celf_inc_total += r.tau_evaluations;
            }
        }
        if r.method == "bab-celf" && r.engine == "reference" {
            let plain = find(&r.instance, "bab-plain", "reference")
                .ok_or_else(|| format!("{}: missing bab-plain row", r.instance))?;
            if r.tau_evaluations > plain.tau_evaluations {
                return Err(format!(
                    "{}: CELF exceeded plain-greedy evaluations ({} > {})",
                    r.instance, r.tau_evaluations, plain.tau_evaluations
                ));
            }
        }
    }
    if !report.smoke && celf_inc_total * 2 > celf_ref_total {
        return Err(format!(
            "incremental CELF did not halve τ evaluations: {celf_inc_total} vs {celf_ref_total}"
        ));
    }
    Ok(())
}

/// Renders the human-readable summary table printed by the bin and CLI.
pub fn summary_text(report: &SolverSuiteReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>12} {:>13} {:>9} {:>9}",
        "instance", "method", "engine", "tau_evals", "nodes", "wall_ms"
    );
    for r in &report.records {
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>12} {:>13} {:>9} {:>9.1}",
            r.instance, r.method, r.engine, r.tau_evaluations, r.nodes_expanded, r.wall_ms
        );
    }
    for s in &report.summary {
        let _ = writeln!(
            out,
            "speedup {:<10} {:>9}: tau_evals {:.2}x, wall {:.2}x",
            s.instance, s.method, s.tau_eval_ratio, s.wall_clock_ratio
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_passes_validation() {
        let report = run_solver_suite(SolverSuiteConfig {
            smoke: true,
            seed: 0,
        });
        // 1 instance × (1 plain + 2 methods × 2 engines) = 5 rows.
        assert_eq!(report.records.len(), 5);
        assert_eq!(report.summary.len(), 2);
        validate_report(&report).expect("smoke report must validate");
        let text = summary_text(&report);
        assert!(text.contains("bab-celf"));
    }
}
