//! Aligned-table / CSV output for the harness binaries.

/// Collects rows and prints either an aligned ASCII table or CSV.
#[derive(Debug, Clone)]
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    csv: bool,
}

impl TablePrinter {
    /// Creates a printer with column headers.
    pub fn new(headers: &[&str], csv: bool) -> Self {
        TablePrinter {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            csv,
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        if self.csv {
            let mut out = String::new();
            out.push_str(&self.headers.join(","));
            out.push('\n');
            for row in &self.rows {
                out.push_str(&row.join(","));
                out.push('\n');
            }
            return out;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a duration in seconds with 3 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Formats a utility with 2 decimals.
pub fn utility(u: f64) -> String {
    format!("{u:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_output() {
        let mut t = TablePrinter::new(&["k", "method", "utility"], false);
        t.row(&["10".into(), "BAB".into(), "15.56".into()]);
        t.row(&["100".into(), "BAB-P".into(), "7.1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("method"));
        assert!(lines[2].ends_with("15.56"));
    }

    #[test]
    fn csv_output() {
        let mut t = TablePrinter::new(&["a", "b"], true);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.render(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = TablePrinter::new(&["a"], false);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.5000");
        assert_eq!(utility(2.71511), "2.72");
    }
}
