//! The `serve` benchmark family: open-loop HTTP load against a live
//! `oipa-server` over real loopback sockets.
//!
//! Produces the `BENCH_serve.json` artifact quantifying what the HTTP
//! front door costs on top of the in-process `PlannerService`: the suite
//! spawns a server in-process, drives a **cold phase** (one request per
//! distinct campaign key, paying for sampling) and a **warm phase** (an
//! open-loop zipfian key mix at a configurable target rate over
//! persistent keep-alive connections), and reports p50/p99/p999 latency
//! per phase. Open-loop means latency is measured from each request's
//! *scheduled* start, so a server that falls behind accrues queueing
//! delay instead of hiding it (no coordinated omission). Every warm
//! answer is cross-checked bitwise against an in-process reference
//! session, and the final `GET /stats` snapshot must be schema-tagged
//! and internally consistent. Latency percentiles are computed on the
//! same [`oipa_obs::Histogram`] the server exports on `GET /metrics`,
//! so bench and runtime percentiles are one implementation. Reproduce
//! with `oipa-cli bench serve [--smoke true] [--rate N]` or `cargo run
//! --release -p oipa-bench --bin bench_serve`.

use oipa_obs::Histogram;
use oipa_sampler::testkit::small_random_instance;
use oipa_server::{Server, ServerConfig, StatsBody};
use oipa_service::{Method, PlannerService, SolveRequest, SolveResponse};
use oipa_store::StatsSnapshot;
use oipa_topics::Campaign;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema identifier stamped into every report. v2 adds the server
/// identity check (`identity_ok`) and the `/metrics` scrape check
/// (`metrics_ok`), and computes percentiles on the shared
/// [`oipa_obs::Histogram`] (≤1/64 upward quantization above 128 ns).
pub const SERVE_SCHEMA: &str = "oipa.bench.serve/v2";

/// Suite configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeSuiteConfig {
    /// Tiny single-phase mode for CI smoke checks.
    pub smoke: bool,
    /// Base seed for instance generation and the zipfian mix.
    pub seed: u64,
    /// Warm-phase target rate override, requests/second.
    pub rate: Option<f64>,
}

/// One phase's latency profile.
#[derive(Debug, Clone, Serialize)]
pub struct ServePhaseRecord {
    /// `"cold"` (one request per key, sampling paid) or `"warm"`
    /// (zipfian mix over cached pools).
    pub phase: String,
    /// Requests issued.
    pub requests: usize,
    /// Open-loop target rate, requests/second (0 = sequential, no
    /// pacing — the cold phase).
    pub target_rate: f64,
    /// Rate actually achieved (requests / wall-clock).
    pub achieved_rate: f64,
    /// Wall-clock for the whole phase, milliseconds.
    pub total_ms: f64,
    /// Mean latency, milliseconds (open-loop: from scheduled start).
    pub mean_ms: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile latency, milliseconds.
    pub p999_ms: f64,
    /// Worst latency, milliseconds.
    pub max_ms: f64,
    /// Responses served from the pool store.
    pub pool_cache_hits: usize,
    /// Non-200 answers (must be 0).
    pub errors: usize,
}

/// The full suite report (the `BENCH_serve.json` payload).
#[derive(Debug, Clone, Serialize)]
pub struct ServeSuiteReport {
    /// Schema identifier (`oipa.bench.serve/v2`).
    pub schema: String,
    /// Whether this was a smoke run.
    pub smoke: bool,
    /// Base seed.
    pub seed: u64,
    /// Instance nodes.
    pub nodes: usize,
    /// Instance edges.
    pub edges: usize,
    /// Campaign pieces ℓ.
    pub ell: usize,
    /// MRR samples θ per pool.
    pub theta: usize,
    /// `std::thread::available_parallelism()` on the benching machine.
    pub available_parallelism: usize,
    /// Server worker threads.
    pub server_threads: usize,
    /// Client connections (each a persistent keep-alive socket).
    pub clients: usize,
    /// Distinct campaign keys (pool-store entries) in the mix.
    pub distinct_keys: usize,
    /// Zipf exponent of the warm-phase key mix.
    pub zipf_s: f64,
    /// Every warm answer matched the in-process reference bitwise.
    pub answers_match_in_process: bool,
    /// Connections the server rejected with 503 (must stay 0 — the
    /// suite sizes its client pool under the connection cap).
    pub rejected_503: u64,
    /// The final `GET /stats` snapshot carried the expected schema tag.
    pub stats_schema_ok: bool,
    /// The final snapshot's books balanced (lookups = hits + misses).
    pub stats_consistent: bool,
    /// The `/stats` identity header named this server build and both
    /// wire schemas.
    pub identity_ok: bool,
    /// The final `GET /metrics` scrape parsed and carried the request
    /// counter, latency histogram, and store-bridge families.
    pub metrics_ok: bool,
    /// The final wire snapshot, verbatim.
    pub stats: StatsSnapshot,
    /// Per-phase latency profiles (`cold`, then `warm`).
    pub records: Vec<ServePhaseRecord>,
}

struct Spec {
    nodes: u32,
    edges: usize,
    ell: usize,
    theta: usize,
    k: usize,
    distinct_keys: usize,
    warm_requests: usize,
    rate: f64,
    clients: usize,
    server_threads: usize,
    max_nodes: usize,
    zipf_s: f64,
}

fn spec(smoke: bool) -> Spec {
    if smoke {
        Spec {
            nodes: 100,
            edges: 700,
            ell: 2,
            theta: 2_000,
            k: 3,
            distinct_keys: 3,
            warm_requests: 30,
            rate: 100.0,
            clients: 2,
            server_threads: 2,
            max_nodes: 20,
            zipf_s: 1.0,
        }
    } else {
        Spec {
            nodes: 300,
            edges: 2_400,
            ell: 3,
            theta: 20_000,
            k: 4,
            distinct_keys: 8,
            warm_requests: 400,
            rate: 100.0,
            clients: 4,
            server_threads: 4,
            max_nodes: 40,
            zipf_s: 1.0,
        }
    }
}

/// One request template per campaign key: the key is the pool-store
/// identity (seed), the shape varies method and budget for diversity.
fn key_requests(spec: &Spec, campaign: &Campaign, seed: u64) -> Vec<SolveRequest> {
    (0..spec.distinct_keys)
        .map(|key| {
            let method = if key % 2 == 0 {
                Method::BabP
            } else {
                Method::Greedy
            };
            let mut req = SolveRequest::new(method, spec.k - (key % 2));
            req.campaign = Some(campaign.clone());
            req.theta = Some(spec.theta);
            req.seed = Some(seed ^ key as u64);
            req.promoter_fraction = Some(0.2);
            req.max_nodes = Some(spec.max_nodes);
            req
        })
        .collect()
}

/// The answer-bearing part of a response (timing and cache provenance
/// are scheduling-dependent; plans, utilities, and bounds are not).
fn answer(r: &SolveResponse) -> (String, u64, Option<u64>, usize) {
    (
        serde_json::to_string(&r.plan).expect("plan serializes"),
        r.utility.to_bits(),
        r.upper_bound.map(f64::to_bits),
        r.theta,
    )
}

/// A zipfian key sequence: key rank `i` drawn with weight `1/(i+1)^s`
/// via the inverse CDF over a seeded uniform stream.
fn zipf_sequence(keys: usize, s: f64, len: usize, rng: &mut StdRng) -> Vec<usize> {
    let weights: Vec<f64> = (0..keys).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let cdf: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w / total;
            Some(*acc)
        })
        .collect();
    (0..len)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            cdf.iter().position(|&c| u < c).unwrap_or(keys - 1)
        })
        .collect()
}

/// A minimal blocking HTTP/1.1 client over one keep-alive connection.
struct WireClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl WireClient {
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(WireClient {
            stream,
            buf: Vec::with_capacity(4096),
        })
    }

    /// One round-trip; returns `(status, body)`.
    fn round_trip(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\
             Connection: keep-alive\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let bad = |msg: &str| std::io::Error::new(ErrorKind::InvalidData, msg.to_string());
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk)? {
                0 => return Err(bad("server closed mid-response")),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let content_length: usize = head
            .lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(n, _)| n.trim().eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.trim().parse().ok())
            .ok_or_else(|| bad("response without Content-Length"))?;
        self.buf.drain(..head_end + 4);
        while self.buf.len() < content_length {
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk)? {
                0 => return Err(bad("server closed mid-body")),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
        let body = String::from_utf8_lossy(&self.buf[..content_length]).into_owned();
        self.buf.drain(..content_length);
        Ok((status, body))
    }
}

/// One completed request's bookkeeping.
struct Sample {
    key: usize,
    latency_ms: f64,
    cache_hit: bool,
    ok: bool,
    answer: Option<(String, u64, Option<u64>, usize)>,
}

fn phase_record(
    phase: &str,
    target_rate: f64,
    total_ms: f64,
    samples: &[Sample],
) -> ServePhaseRecord {
    // Latencies go through the same log₂-bucketed histogram the server
    // exports on `/metrics` (in nanoseconds, its latency convention):
    // bench percentiles and runtime percentiles are one implementation,
    // one ceil-rank rule, one ≤1/64 upward quantization bound.
    let hist = Histogram::new();
    for s in samples {
        hist.record((s.latency_ms.max(0.0) * 1e6) as u64);
    }
    let ns_to_ms = |ns: u64| ns as f64 / 1e6;
    // Percentiles round up to their bucket bound while `max` is exact,
    // so clamp to keep p999 ≤ max an invariant rather than a race.
    let max_ms = ns_to_ms(hist.max());
    ServePhaseRecord {
        phase: phase.to_string(),
        requests: samples.len(),
        target_rate,
        achieved_rate: samples.len() as f64 / (total_ms / 1e3).max(1e-9),
        total_ms,
        mean_ms: hist.mean() / 1e6,
        p50_ms: ns_to_ms(hist.percentile(0.50)).min(max_ms),
        p99_ms: ns_to_ms(hist.percentile(0.99)).min(max_ms),
        p999_ms: ns_to_ms(hist.percentile(0.999)).min(max_ms),
        max_ms,
        pool_cache_hits: samples.iter().filter(|s| s.cache_hit).count(),
        errors: samples.iter().filter(|s| !s.ok).count(),
    }
}

/// Runs the suite: spawn a server, cold phase, open-loop warm phase,
/// stats read-back, graceful shutdown.
pub fn run_serve_suite(config: ServeSuiteConfig) -> Result<ServeSuiteReport, String> {
    let spec = spec(config.smoke);
    let rate = config.rate.unwrap_or(spec.rate);
    if rate <= 0.0 {
        return Err("the warm-phase rate must be positive".to_string());
    }
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5e12e);
    let (graph, table, campaign) =
        small_random_instance(&mut rng, spec.nodes, spec.edges, spec.ell + 1, spec.ell);
    let requests = key_requests(&spec, &campaign, config.seed ^ 0x5eed);
    let bodies: Vec<String> = requests
        .iter()
        .map(|r| serde_json::to_string(r).expect("request serializes"))
        .collect();

    // In-process reference on a separate session: the server under test
    // must not be its own oracle.
    let reference: Vec<_> = {
        let (graph, table, _) = small_random_instance(
            &mut StdRng::seed_from_u64(config.seed ^ 0x5e12e),
            spec.nodes,
            spec.edges,
            spec.ell + 1,
            spec.ell,
        );
        let service = PlannerService::new(graph, table).expect("valid instance");
        requests
            .iter()
            .map(|r| answer(&service.solve(r).expect("reference request solves")))
            .collect::<Vec<_>>()
    };

    let service = Arc::new(std::sync::RwLock::new(
        PlannerService::new(graph, table).expect("valid instance"),
    ));
    let server_config = ServerConfig {
        threads: spec.server_threads,
        max_connections: spec.clients + 8,
        ..ServerConfig::default()
    };
    let handle = Server::spawn(Arc::clone(&service), server_config)
        .map_err(|e| format!("spawning the bench server: {e}"))?;
    let addr = handle.addr();

    let parse = |body: &str| -> Result<SolveResponse, String> {
        serde_json::from_str(body).map_err(|e| format!("unparseable SolveResponse: {e}"))
    };

    // Cold phase: one sequential request per distinct key. Latency here
    // includes MRR sampling — the price the warm phase amortizes.
    let mut cold_samples = Vec::new();
    let mut client = WireClient::connect(addr).map_err(|e| format!("connecting: {e}"))?;
    let cold_start = Instant::now();
    for (key, body) in bodies.iter().enumerate() {
        let sent = Instant::now();
        let (status, text) = client
            .round_trip("POST", "/solve", body)
            .map_err(|e| format!("cold request {key}: {e}"))?;
        let latency_ms = sent.elapsed().as_secs_f64() * 1e3;
        if status != 200 {
            return Err(format!("cold request {key} answered {status}: {text}"));
        }
        let response = parse(&text)?;
        cold_samples.push(Sample {
            key,
            latency_ms,
            cache_hit: response.pool_cache_hit,
            ok: status == 200,
            answer: Some(answer(&response)),
        });
    }
    let cold_total_ms = cold_start.elapsed().as_secs_f64() * 1e3;

    // Warm phase: open-loop zipfian mix. Request i is *scheduled* at
    // t0 + i/rate and its latency runs from that schedule, so falling
    // behind shows up as queueing delay, not as a rosier histogram.
    let schedule = zipf_sequence(
        spec.distinct_keys,
        spec.zipf_s,
        spec.warm_requests,
        &mut StdRng::seed_from_u64(config.seed ^ 0x21f),
    );
    let interval = Duration::from_secs_f64(1.0 / rate);
    let warm_start = Instant::now() + Duration::from_millis(50); // connect slack
    let warm_samples: Vec<Sample> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.clients)
            .map(|c| {
                let schedule = &schedule;
                let bodies = &bodies;
                scope.spawn(move || -> Result<Vec<Sample>, String> {
                    let mut client =
                        WireClient::connect(addr).map_err(|e| format!("client {c}: {e}"))?;
                    let mut samples = Vec::new();
                    for (i, &key) in schedule.iter().enumerate() {
                        if i % spec.clients != c {
                            continue;
                        }
                        let target = warm_start + interval.mul_f64(i as f64);
                        if let Some(wait) = target.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let (status, text) = client
                            .round_trip("POST", "/solve", &bodies[key])
                            .map_err(|e| format!("warm request {i}: {e}"))?;
                        let latency_ms = target.elapsed().as_secs_f64() * 1e3;
                        let ok = status == 200;
                        let (cache_hit, ans) = if ok {
                            let response = parse(&text)?;
                            (response.pool_cache_hit, Some(answer(&response)))
                        } else {
                            (false, None)
                        };
                        samples.push(Sample {
                            key,
                            latency_ms,
                            cache_hit,
                            ok,
                            answer: ans,
                        });
                    }
                    Ok(samples)
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("client thread panicked")?);
        }
        Ok::<_, String>(all)
    })?;
    let warm_total_ms = (Instant::now() - warm_start).as_secs_f64() * 1e3;

    let answers_match_in_process = cold_samples
        .iter()
        .chain(&warm_samples)
        .all(|s| s.answer.as_ref() == Some(&reference[s.key]));

    // Stats read-back over the wire: the body must round-trip as the
    // shared `StatsBody` type (identity header + snapshot), the
    // snapshot must balance its books, and the identity must name the
    // build that just served the load.
    let (status, text) = client
        .round_trip("GET", "/stats", "")
        .map_err(|e| format!("stats read-back: {e}"))?;
    if status != 200 {
        return Err(format!("GET /stats answered {status}: {text}"));
    }
    let body: StatsBody =
        serde_json::from_str(&text).map_err(|e| format!("unparseable StatsBody: {e}"))?;
    let identity_ok = body.server.service == "oipa-server"
        && body.server.stats_schema == oipa_store::STATS_SCHEMA
        && body.server.metrics_schema == oipa_server::METRICS_SCHEMA
        && body.server.uptime_seconds >= 0.0;
    let stats = body.store;
    let stats_schema_ok = stats.schema_ok();
    let stats_consistent = stats.mem.lookups == stats.mem.hits + stats.mem.misses;

    // Metrics read-back: the exposition the operators will scrape must
    // carry the request counters and latency histogram for the load we
    // just generated, plus the store bridge.
    let (status, text) = client
        .round_trip("GET", "/metrics", "")
        .map_err(|e| format!("metrics read-back: {e}"))?;
    let metrics_ok = status == 200
        && text.contains("oipa_http_requests_total{endpoint=\"/solve\",status=\"200\"}")
        && text.contains("oipa_http_request_seconds_bucket{endpoint=\"/solve\",le=\"+Inf\"}")
        && text.contains("oipa_store_mem_lookups_total");

    let rejected_503 = handle.rejected_503();
    handle.shutdown();

    Ok(ServeSuiteReport {
        schema: SERVE_SCHEMA.to_string(),
        smoke: config.smoke,
        seed: config.seed,
        nodes: spec.nodes as usize,
        edges: spec.edges,
        ell: spec.ell,
        theta: spec.theta,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        server_threads: spec.server_threads,
        clients: spec.clients,
        distinct_keys: spec.distinct_keys,
        zipf_s: spec.zipf_s,
        answers_match_in_process,
        rejected_503,
        stats_schema_ok,
        stats_consistent,
        identity_ok,
        metrics_ok,
        stats,
        records: vec![
            phase_record("cold", 0.0, cold_total_ms, &cold_samples),
            phase_record("warm", rate, warm_total_ms, &warm_samples),
        ],
    })
}

/// Validates a report's schema and the invariants the CI smoke step
/// asserts: error-free phases, bitwise wire/in-process parity, an
/// all-hit warm phase, a consistent schema-tagged stats snapshot, and —
/// on full runs — a warm p50 below the cold mean (the cache must beat
/// resampling).
pub fn validate_report(report: &ServeSuiteReport) -> Result<(), String> {
    if report.schema != SERVE_SCHEMA {
        return Err(format!(
            "schema mismatch: {} != {SERVE_SCHEMA}",
            report.schema
        ));
    }
    if !report.answers_match_in_process {
        return Err("wire answers diverged from the in-process reference".to_string());
    }
    if !report.stats_schema_ok {
        return Err(format!("stats snapshot schema: {}", report.stats.schema));
    }
    if !report.stats_consistent {
        return Err("stats snapshot books do not balance".to_string());
    }
    if !report.identity_ok {
        return Err("the /stats identity header did not name this build".to_string());
    }
    if !report.metrics_ok {
        return Err("the /metrics scrape was missing expected families".to_string());
    }
    if report.rejected_503 != 0 {
        return Err(format!(
            "{} connections hit the cap — the suite must run under it",
            report.rejected_503
        ));
    }
    let cold = report
        .records
        .iter()
        .find(|r| r.phase == "cold")
        .ok_or("missing cold phase")?;
    let warm = report
        .records
        .iter()
        .find(|r| r.phase == "warm")
        .ok_or("missing warm phase")?;
    for r in [cold, warm] {
        if r.requests == 0 {
            return Err(format!("{} phase is empty", r.phase));
        }
        if r.errors != 0 {
            return Err(format!(
                "{} phase had {} non-200 answers",
                r.phase, r.errors
            ));
        }
        if !(r.p50_ms <= r.p99_ms && r.p99_ms <= r.p999_ms && r.p999_ms <= r.max_ms) {
            return Err(format!("{} phase percentiles are not monotone", r.phase));
        }
    }
    if cold.pool_cache_hits != 0 {
        return Err(format!(
            "cold phase had {} cache hits over distinct keys",
            cold.pool_cache_hits
        ));
    }
    if warm.pool_cache_hits != warm.requests {
        return Err(format!(
            "warm phase had {} hits over {} requests — the cold phase primed every key",
            warm.pool_cache_hits, warm.requests
        ));
    }
    // Timing expectations only bind on full runs: a smoke instance is
    // too small for sampling to dominate reliably.
    if !report.smoke && warm.p50_ms >= cold.mean_ms {
        return Err(format!(
            "warm p50 {:.2}ms did not beat the cold mean {:.2}ms — the pool store \
             is not amortizing sampling over the wire",
            warm.p50_ms, cold.mean_ms
        ));
    }
    Ok(())
}

/// Renders the human-readable summary printed by the bin and CLI.
pub fn summary_text(report: &ServeSuiteReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve bench: {} nodes / {} edges, ell = {}, theta = {}, {} keys (zipf s = {}), \
         {} server workers, {} clients",
        report.nodes,
        report.edges,
        report.ell,
        report.theta,
        report.distinct_keys,
        report.zipf_s,
        report.server_threads,
        report.clients,
    );
    let _ = writeln!(
        out,
        "{:<6} {:>9} {:>11} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "phase", "requests", "rate req/s", "p50 ms", "p99 ms", "p999 ms", "max ms", "hits"
    );
    for r in &report.records {
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>11.1} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>7}",
            r.phase,
            r.requests,
            r.achieved_rate,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
            r.max_ms,
            r.pool_cache_hits,
        );
    }
    let _ = writeln!(
        out,
        "parity: {}; stats schema: {}; books: {}; identity: {}; metrics: {}; 503s: {}",
        if report.answers_match_in_process {
            "bitwise"
        } else {
            "DIVERGED"
        },
        if report.stats_schema_ok { "ok" } else { "BAD" },
        if report.stats_consistent {
            "balanced"
        } else {
            "INCONSISTENT"
        },
        if report.identity_ok { "ok" } else { "BAD" },
        if report.metrics_ok { "ok" } else { "BAD" },
        report.rejected_503,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sequence_is_seeded_and_skewed() {
        let mut rng = StdRng::seed_from_u64(7);
        let seq = zipf_sequence(5, 1.0, 2_000, &mut rng);
        assert!(seq.iter().all(|&k| k < 5));
        let mut counts = [0usize; 5];
        for &k in &seq {
            counts[k] += 1;
        }
        assert!(
            counts[0] > counts[4],
            "rank 0 must dominate rank 4: {counts:?}"
        );
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(seq, zipf_sequence(5, 1.0, 2_000, &mut rng), "not seeded");
    }

    #[test]
    fn phase_percentiles_are_the_shared_histogram_order_statistics() {
        // Latencies below 128 ns land in the histogram's exact range, so
        // the record must reproduce ceil-rank order statistics exactly —
        // the same rule the suite's private sorted-vector percentiles
        // implemented before the port onto `oipa_obs::Histogram`.
        let samples: Vec<Sample> = (1..=100)
            .map(|i| Sample {
                key: 0,
                latency_ms: i as f64 / 1e6, // i nanoseconds
                cache_hit: false,
                ok: true,
                answer: None,
            })
            .collect();
        let record = phase_record("warm", 0.0, 1.0, &samples);
        assert_eq!(record.p50_ms, 50.0 / 1e6);
        assert_eq!(record.p99_ms, 99.0 / 1e6);
        assert_eq!(record.p999_ms, 100.0 / 1e6);
        assert_eq!(record.max_ms, 100.0 / 1e6);
        assert!((record.mean_ms - 50.5 / 1e6).abs() < 1e-15);

        let empty = phase_record("warm", 0.0, 1.0, &[]);
        assert_eq!(empty.p50_ms, 0.0);
        assert_eq!(empty.max_ms, 0.0);
    }

    #[test]
    fn phase_percentiles_never_exceed_the_exact_max() {
        // 4.03 ms sits mid-octave: its bucket bound rounds up, and the
        // record must clamp that bound back to the exact max.
        let samples = vec![Sample {
            key: 0,
            latency_ms: 4.03,
            cache_hit: true,
            ok: true,
            answer: None,
        }];
        let record = phase_record("warm", 0.0, 1.0, &samples);
        assert_eq!(record.max_ms, 4.03);
        assert_eq!(record.p50_ms, 4.03);
        assert_eq!(record.p999_ms, 4.03);
    }

    #[test]
    fn smoke_run_passes_validation() {
        let report = run_serve_suite(ServeSuiteConfig {
            smoke: true,
            seed: 0,
            rate: None,
        })
        .expect("smoke suite runs");
        validate_report(&report).expect("smoke report validates");
        assert_eq!(report.records.len(), 2);
        // The artifact must round-trip as JSON with its schema tag.
        let json = serde_json::to_string(&report).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(
            value.get("schema"),
            Some(&serde_json::Value::String(SERVE_SCHEMA.into()))
        );
    }
}
