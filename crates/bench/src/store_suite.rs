//! The `store` benchmark family: cold vs disk-warm vs mem-warm request
//! latency through the `PlannerService` + persistent pool store.
//!
//! Produces the `BENCH_store.json` artifact quantifying what the disk
//! tier buys: a **cold** request pays full MRR sampling; a **disk-warm**
//! request simulates a process restart (fresh service, empty memory
//! tier) over a populated store directory and pays only the checksummed
//! segment read; a **mem-warm** request reuses the promoted in-memory
//! pool. The suite cross-checks that all three paths produce
//! bitwise-identical plans and utilities (the store must never change
//! answers, only latency) and that, on the full seeded medium instance,
//! disk-warm beats cold by ≥ 10×. Reproduce with `oipa-cli bench store
//! [--smoke]` or `cargo run --release -p oipa-bench --bin bench_store`.

use oipa_sampler::testkit::small_random_instance;
use oipa_service::{Method, PlannerService, SolveRequest, StoreConfig};
use oipa_topics::Campaign;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::path::PathBuf;

/// Schema identifier stamped into every report. v2 adds the
/// region-packed disk-tier fields (`store_regions`, `region_bytes`,
/// `region_fill`).
pub const STORE_SCHEMA: &str = "oipa.bench.store/v2";

/// Suite configuration.
#[derive(Debug, Clone, Default)]
pub struct StoreSuiteConfig {
    /// Tiny single-phase mode for CI smoke checks.
    pub smoke: bool,
    /// Base seed for instance generation.
    pub seed: u64,
    /// Store directory (default: a per-seed directory under the system
    /// temp dir). The suite wipes and repopulates it.
    pub store_dir: Option<PathBuf>,
}

/// One (method, phase) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct StorePhaseRecord {
    /// `cold` (fresh service, no store), `disk_warm` (fresh service per
    /// request over the populated store — a restart), or `mem_warm`
    /// (shared service, promoted pool).
    pub phase: String,
    /// Solve method.
    pub method: String,
    /// Requests timed.
    pub requests: usize,
    /// Mean end-to-end latency per request, milliseconds.
    pub mean_ms: f64,
    /// Fastest request, milliseconds.
    pub min_ms: f64,
    /// Total wall-clock, milliseconds.
    pub total_ms: f64,
    /// Throughput over the phase.
    pub requests_per_sec: f64,
    /// The pool tier every request in the phase reported (`None` for the
    /// cold phase, which samples).
    pub pool_tier: Option<String>,
    /// Utility of the phase's (identical) answers, user units.
    pub utility: f64,
    /// Whether every answer in this phase carried the same plan as the
    /// first cold answer (bitwise answer-equality gate).
    pub plan_matches_cold: bool,
}

/// Cold vs disk-warm vs mem-warm summary per method.
#[derive(Debug, Clone, Serialize)]
pub struct StoreSpeedup {
    /// Solve method.
    pub method: String,
    /// Mean cold latency, milliseconds.
    pub cold_mean_ms: f64,
    /// Mean disk-warm latency, milliseconds.
    pub disk_warm_mean_ms: f64,
    /// Mean mem-warm latency, milliseconds.
    pub mem_warm_mean_ms: f64,
    /// `cold_mean_ms / disk_warm_mean_ms` — the restart dividend.
    pub disk_speedup: f64,
    /// `cold_mean_ms / mem_warm_mean_ms`.
    pub mem_speedup: f64,
}

/// The full suite report (the `BENCH_store.json` payload).
#[derive(Debug, Clone, Serialize)]
pub struct StoreSuiteReport {
    /// Schema identifier (`oipa.bench.store/v2`).
    pub schema: String,
    /// Whether this was a smoke run.
    pub smoke: bool,
    /// Base seed.
    pub seed: u64,
    /// Instance nodes.
    pub nodes: usize,
    /// Instance edges.
    pub edges: usize,
    /// Campaign pieces ℓ.
    pub ell: usize,
    /// MRR samples θ per pool.
    pub theta: usize,
    /// Budget k.
    pub k: usize,
    /// Segments in the store after the run (both methods share one pool
    /// key, so this is 1).
    pub store_segments: usize,
    /// Bytes of the shared pool segment on disk.
    pub segment_bytes: u64,
    /// Region files the disk tier packed those segments into.
    pub store_regions: usize,
    /// Configured per-region capacity, bytes.
    pub region_bytes: u64,
    /// Live fraction of the regions' committed bytes (1.0 = no dead
    /// space awaiting gc).
    pub region_fill: f64,
    /// All measurements.
    pub records: Vec<StorePhaseRecord>,
    /// Per-method summaries.
    pub summary: Vec<StoreSpeedup>,
}

struct Spec {
    nodes: u32,
    edges: usize,
    ell: usize,
    theta: usize,
    k: usize,
    cold_requests: usize,
    disk_requests: usize,
    mem_requests: usize,
    max_nodes: usize,
}

fn spec(smoke: bool) -> Spec {
    if smoke {
        Spec {
            nodes: 120,
            edges: 900,
            ell: 3,
            theta: 4_000,
            k: 3,
            cold_requests: 1,
            disk_requests: 2,
            mem_requests: 2,
            max_nodes: 20,
        }
    } else {
        // The seeded medium instance the service bench uses: sampling
        // dominates the solve, which is the regime the store amortizes.
        Spec {
            nodes: 400,
            edges: 3_200,
            ell: 3,
            theta: 30_000,
            k: 4,
            cold_requests: 3,
            disk_requests: 5,
            mem_requests: 5,
            max_nodes: 40,
        }
    }
}

/// The measured methods (pool-bound, no extra inputs).
const METHODS: [Method; 2] = [Method::BabP, Method::Greedy];

fn request(method: Method, spec: &Spec, campaign: &Campaign, seed: u64) -> SolveRequest {
    let mut req = SolveRequest::new(method, spec.k);
    req.campaign = Some(campaign.clone());
    req.theta = Some(spec.theta);
    req.seed = Some(seed);
    req.promoter_fraction = Some(0.2);
    req.max_nodes = Some(spec.max_nodes);
    req
}

/// Runs the suite. The store directory is wiped first; every phase of
/// every method must produce the same plan and utility — the phases
/// differ only in where the pool comes from.
pub fn run_store_suite(config: StoreSuiteConfig) -> Result<StoreSuiteReport, String> {
    let spec = spec(config.smoke);
    let dir = config
        .store_dir
        .unwrap_or_else(|| std::env::temp_dir().join(format!("oipa-bench-store-{}", config.seed)));
    let _ = std::fs::remove_dir_all(&dir);
    let store_config = || StoreConfig::new(&dir);

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5704e);
    let (graph, table, campaign) =
        small_random_instance(&mut rng, spec.nodes, spec.edges, spec.ell + 1, spec.ell);
    let fresh = || PlannerService::new(graph.clone(), table.clone()).expect("valid instance");
    let err = |e: oipa_core::OipaError| e.to_string();

    // Prime the store once (untimed): the pool key is method-independent,
    // so one cold stored solve serves every phase below.
    {
        let mut primer = fresh();
        primer.attach_store(store_config()).map_err(err)?;
        let req = request(Method::BabP, &spec, &campaign, config.seed ^ 0xd15c);
        let primed = primer.solve(&req).map_err(err)?;
        assert!(!primed.pool_cache_hit, "priming request found a stale pool");
    }

    let mut records = Vec::new();
    let mut summary = Vec::new();
    for method in METHODS {
        let req = request(method, &spec, &campaign, config.seed ^ 0xd15c);

        // Cold: fresh storeless service per request — full sampling.
        let mut cold_lat = Vec::new();
        let mut cold_utility = 0.0f64;
        let mut cold_plan = None;
        for _ in 0..spec.cold_requests {
            let response = fresh().solve(&req).map_err(err)?;
            assert!(!response.pool_cache_hit, "cold request hit a cache");
            cold_lat.push(response.seconds * 1e3);
            cold_utility = response.utility;
            let prev = cold_plan.get_or_insert_with(|| response.plan.clone());
            assert_eq!(*prev, response.plan, "{method}: cold answers disagree");
        }
        let cold_plan = cold_plan.expect("at least one cold request");
        records.push(phase_record(
            "cold",
            method,
            &cold_lat,
            None,
            cold_utility,
            true,
        ));

        // Disk-warm: every request is a restart — a fresh service (empty
        // memory tier) over the populated store directory.
        let mut disk_lat = Vec::new();
        let mut disk_matches = true;
        for _ in 0..spec.disk_requests {
            let mut service = fresh();
            service.attach_store(store_config()).map_err(err)?;
            let response = service.solve(&req).map_err(err)?;
            assert_eq!(
                response.pool_tier.as_deref(),
                Some("disk"),
                "{method}: restart request did not hit the disk tier"
            );
            assert_eq!(
                response.utility.to_bits(),
                cold_utility.to_bits(),
                "{method}: disk-warm utility diverged from cold"
            );
            disk_matches &= response.plan == cold_plan;
            disk_lat.push(response.seconds * 1e3);
        }
        assert!(disk_matches, "{method}: disk-warm plan diverged from cold");
        records.push(phase_record(
            "disk_warm",
            method,
            &disk_lat,
            Some("disk"),
            cold_utility,
            disk_matches,
        ));

        // Mem-warm: one service; its first request promotes the pool off
        // disk (untimed), then every measured request is a memory hit.
        let mut service = fresh();
        service.attach_store(store_config()).map_err(err)?;
        let promoted = service.solve(&req).map_err(err)?;
        assert!(promoted.pool_cache_hit, "promotion request missed");
        let mut mem_lat = Vec::new();
        let mut mem_matches = true;
        for _ in 0..spec.mem_requests {
            let response = service.solve(&req).map_err(err)?;
            assert_eq!(
                response.pool_tier.as_deref(),
                Some("memory"),
                "{method}: warm request did not hit the memory tier"
            );
            assert_eq!(
                response.utility.to_bits(),
                cold_utility.to_bits(),
                "{method}: mem-warm utility diverged from cold"
            );
            mem_matches &= response.plan == cold_plan;
            mem_lat.push(response.seconds * 1e3);
        }
        assert!(mem_matches, "{method}: mem-warm plan diverged from cold");
        records.push(phase_record(
            "mem_warm",
            method,
            &mem_lat,
            Some("memory"),
            cold_utility,
            mem_matches,
        ));

        let cold_mean = mean(&cold_lat);
        let disk_mean = mean(&disk_lat);
        let mem_mean = mean(&mem_lat);
        summary.push(StoreSpeedup {
            method: method.name().to_string(),
            cold_mean_ms: cold_mean,
            disk_warm_mean_ms: disk_mean,
            mem_warm_mean_ms: mem_mean,
            disk_speedup: cold_mean / disk_mean.max(1e-9),
            mem_speedup: cold_mean / mem_mean.max(1e-9),
        });
    }

    // Inspect the store: both methods shared one pool key, packed into
    // the region tier.
    let tier = oipa_store::DiskTier::open(&dir, u64::MAX).map_err(|e| e.to_string())?;
    let store_segments = tier.len();
    let segment_bytes = tier.entries().first().map_or(0, |e| e.bytes);
    let disk_stats = tier.stats();
    let committed = disk_stats.bytes + disk_stats.dead_bytes;
    let region_fill = if committed == 0 {
        1.0
    } else {
        disk_stats.bytes as f64 / committed as f64
    };

    Ok(StoreSuiteReport {
        schema: STORE_SCHEMA.to_string(),
        smoke: config.smoke,
        seed: config.seed,
        nodes: spec.nodes as usize,
        edges: spec.edges,
        ell: spec.ell,
        theta: spec.theta,
        k: spec.k,
        store_segments,
        segment_bytes,
        store_regions: disk_stats.regions,
        region_bytes: disk_stats.region_bytes,
        region_fill,
        records,
        summary,
    })
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

fn phase_record(
    phase: &str,
    method: Method,
    latencies: &[f64],
    pool_tier: Option<&str>,
    utility: f64,
    plan_matches_cold: bool,
) -> StorePhaseRecord {
    let total: f64 = latencies.iter().sum();
    StorePhaseRecord {
        phase: phase.to_string(),
        method: method.name().to_string(),
        requests: latencies.len(),
        mean_ms: mean(latencies),
        min_ms: latencies.iter().copied().fold(f64::INFINITY, f64::min),
        total_ms: total,
        requests_per_sec: latencies.len() as f64 / (total / 1e3).max(1e-9),
        pool_tier: pool_tier.map(String::from),
        utility,
        plan_matches_cold,
    }
}

/// Validates a report's schema and the invariants the CI smoke step
/// asserts: every method has all three phases, every phase's answers
/// match cold bitwise, the store holds exactly one shared segment, and
/// (full runs only) disk-warm beats cold by ≥ 10× for every method.
pub fn validate_report(report: &StoreSuiteReport) -> Result<(), String> {
    if report.schema != STORE_SCHEMA {
        return Err(format!(
            "schema mismatch: {} != {STORE_SCHEMA}",
            report.schema
        ));
    }
    if report.store_segments != 1 {
        return Err(format!(
            "expected one shared pool segment, found {}",
            report.store_segments
        ));
    }
    if report.store_regions != 1 {
        return Err(format!(
            "one segment must pack into one region, found {}",
            report.store_regions
        ));
    }
    if !(report.region_fill > 0.0 && report.region_fill <= 1.0) {
        return Err(format!(
            "region fill {} outside (0, 1] for a freshly packed store",
            report.region_fill
        ));
    }
    for method in METHODS {
        let find = |phase: &str| {
            report
                .records
                .iter()
                .find(|r| r.method == method.name() && r.phase == phase)
                .ok_or_else(|| format!("{method}: missing {phase} record"))
        };
        let cold = find("cold")?;
        let disk = find("disk_warm")?;
        let mem = find("mem_warm")?;
        for r in [cold, disk, mem] {
            if !r.plan_matches_cold {
                return Err(format!("{method}/{}: plan diverged from cold", r.phase));
            }
            if r.utility.to_bits() != cold.utility.to_bits() {
                return Err(format!("{method}/{}: utility diverged from cold", r.phase));
            }
        }
        if disk.pool_tier.as_deref() != Some("disk") {
            return Err(format!("{method}: disk_warm phase not served from disk"));
        }
        if mem.pool_tier.as_deref() != Some("memory") {
            return Err(format!("{method}: mem_warm phase not served from memory"));
        }
        if !report.smoke {
            let speedup = cold.mean_ms / disk.mean_ms.max(1e-9);
            if speedup < 10.0 {
                return Err(format!(
                    "{method}: disk-warm speedup {speedup:.2}× is below the 10× bar \
                     (cold {:.1} ms vs disk-warm {:.1} ms)",
                    cold.mean_ms, disk.mean_ms
                ));
            }
        }
    }
    Ok(())
}

/// Renders the human-readable summary printed by the bin and CLI.
pub fn summary_text(report: &StoreSuiteReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "store bench: {} nodes, {} edges, ell={}, theta={}, k={}; \
         {} segment(s), {} bytes in {} region(s) ({:.0}% live)",
        report.nodes,
        report.edges,
        report.ell,
        report.theta,
        report.k,
        report.store_segments,
        report.segment_bytes,
        report.store_regions,
        100.0 * report.region_fill
    );
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>9} {:>10} {:>10} {:>10} {:>8}",
        "method", "phase", "requests", "mean_ms", "min_ms", "req/s", "tier"
    );
    for r in &report.records {
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>9} {:>10.2} {:>10.2} {:>10.2} {:>8}",
            r.method,
            r.phase,
            r.requests,
            r.mean_ms,
            r.min_ms,
            r.requests_per_sec,
            r.pool_tier.as_deref().unwrap_or("-"),
        );
    }
    for s in &report.summary {
        let _ = writeln!(
            out,
            "speedup {:<8}: disk-warm {:.1}x, mem-warm {:.1}x over cold \
             (cold {:.1} ms -> disk {:.2} ms -> mem {:.2} ms)",
            s.method,
            s.disk_speedup,
            s.mem_speedup,
            s.cold_mean_ms,
            s.disk_warm_mean_ms,
            s.mem_warm_mean_ms
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_passes_validation() {
        let report = run_store_suite(StoreSuiteConfig {
            smoke: true,
            seed: 0,
            store_dir: None,
        })
        .expect("smoke suite runs");
        assert_eq!(report.records.len(), 3 * METHODS.len());
        assert_eq!(report.summary.len(), METHODS.len());
        assert_eq!(report.store_regions, 1);
        assert!(report.region_fill > 0.0 && report.region_fill <= 1.0);
        validate_report(&report).expect("smoke report must validate");
        let text = summary_text(&report);
        assert!(text.contains("disk_warm"), "{text}");
    }
}
