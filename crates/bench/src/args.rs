//! Minimal argument parsing shared by the harness binaries.

use oipa_datasets::Scale;

/// Common harness arguments.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Dataset scale (default: the per-dataset harness default — full for
    /// `lastfm`, small for `dblp`/`tweet`).
    pub scale: Option<Scale>,
    /// MRR samples per piece (default 100_000; the paper uses 10⁶).
    pub theta: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Restrict to a single dataset (`lastfm`/`dblp`/`tweet`).
    pub only: Option<String>,
    /// Node-expansion cap for the branch-and-bound drivers.
    pub max_nodes: usize,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: None,
            theta: 100_000,
            seed: 42,
            csv: false,
            only: None,
            max_nodes: 64,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`-style arguments. Unknown flags abort with
    /// a usage message.
    pub fn parse(args: impl IntoIterator<Item = String>) -> HarnessArgs {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().unwrap_or_else(|| usage("--scale needs a value"));
                    out.scale =
                        Some(Scale::parse(&v).unwrap_or_else(|| usage("bad --scale value")));
                }
                "--theta" => {
                    let v = it.next().unwrap_or_else(|| usage("--theta needs a value"));
                    out.theta = v.parse().unwrap_or_else(|_| usage("bad --theta value"));
                }
                "--seed" => {
                    let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                    out.seed = v.parse().unwrap_or_else(|_| usage("bad --seed value"));
                }
                "--max-nodes" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("--max-nodes needs a value"));
                    out.max_nodes = v.parse().unwrap_or_else(|_| usage("bad --max-nodes"));
                }
                "--only" => {
                    out.only = Some(it.next().unwrap_or_else(|| usage("--only needs a value")));
                }
                "--csv" => out.csv = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument {other:?}")),
            }
        }
        out
    }

    /// Parses the process arguments (skipping `argv(0)`).
    pub fn from_env() -> HarnessArgs {
        Self::parse(std::env::args().skip(1))
    }

    /// The scale to use for a dataset given its harness default.
    pub fn scale_for(&self, default: Scale) -> Scale {
        self.scale.unwrap_or(default)
    }

    /// Whether a dataset is selected under `--only`.
    pub fn wants(&self, name: &str) -> bool {
        self.only.as_deref().is_none_or(|o| o == name)
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <bin> [--scale tiny|small|medium|full] [--theta N] [--seed N] \
         [--max-nodes N] [--only lastfm|dblp|tweet] [--csv]"
    );
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> HarnessArgs {
        HarnessArgs::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.theta, 100_000);
        assert!(!a.csv);
        assert!(a.wants("lastfm"));
    }

    #[test]
    fn full_parse() {
        let a = parse(&[
            "--scale",
            "tiny",
            "--theta",
            "5000",
            "--seed",
            "7",
            "--csv",
            "--only",
            "dblp",
            "--max-nodes",
            "10",
        ]);
        assert_eq!(a.scale, Some(Scale::Tiny));
        assert_eq!(a.theta, 5000);
        assert_eq!(a.seed, 7);
        assert!(a.csv);
        assert_eq!(a.max_nodes, 10);
        assert!(a.wants("dblp"));
        assert!(!a.wants("tweet"));
    }

    #[test]
    fn scale_for_default() {
        let a = parse(&[]);
        assert_eq!(a.scale_for(Scale::Small), Scale::Small);
        let b = parse(&["--scale", "full"]);
        assert_eq!(b.scale_for(Scale::Small), Scale::Full);
    }
}
