//! The `service` benchmark family: cold-pool vs warm-pool request
//! latency through the `PlannerService`.
//!
//! Produces the `BENCH_service.json` artifact quantifying what the
//! session arena buys: a **cold** request pays full MRR sampling before
//! it can solve, a **warm** request reuses the arena's pool and pays only
//! the solve. The suite runs both phases for each measured method on the
//! seeded medium instance, reports mean/min latency and warm-phase
//! requests/sec, and cross-checks that cold and warm answers are
//! bitwise-identical (the arena must never change results, only
//! latency). Reproduce with `oipa-cli bench service [--smoke]` or
//! `cargo run --release -p oipa-bench --bin bench_service`.

use oipa_sampler::testkit::small_random_instance;
use oipa_service::{Method, PlannerService, SolveRequest};
use oipa_topics::Campaign;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Schema identifier stamped into every report.
pub const SERVICE_SCHEMA: &str = "oipa.bench.service/v1";

/// Suite configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceSuiteConfig {
    /// Tiny single-phase mode for CI smoke checks.
    pub smoke: bool,
    /// Base seed for instance generation.
    pub seed: u64,
}

/// One (method, phase) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ServicePhaseRecord {
    /// `cold` (fresh arena per request) or `warm` (shared arena).
    pub phase: String,
    /// Solve method.
    pub method: String,
    /// Requests timed.
    pub requests: usize,
    /// Mean end-to-end latency per request, milliseconds.
    pub mean_ms: f64,
    /// Fastest request, milliseconds.
    pub min_ms: f64,
    /// Total wall-clock, milliseconds.
    pub total_ms: f64,
    /// Throughput over the phase.
    pub requests_per_sec: f64,
    /// Requests answered from the pool arena.
    pub pool_cache_hits: usize,
    /// Utility of the phase's (identical) answers, user units.
    pub utility: f64,
    /// Whether every answer in this phase carried the same plan as the
    /// first cold answer (bitwise answer-equality gate).
    pub plan_matches_cold: bool,
}

/// Cold-vs-warm summary per method.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceSpeedup {
    /// Solve method.
    pub method: String,
    /// Mean cold latency, milliseconds.
    pub cold_mean_ms: f64,
    /// Mean warm latency, milliseconds.
    pub warm_mean_ms: f64,
    /// `cold_mean_ms / warm_mean_ms`.
    pub speedup: f64,
}

/// The full suite report (the `BENCH_service.json` payload).
#[derive(Debug, Clone, Serialize)]
pub struct ServiceSuiteReport {
    /// Schema identifier (`oipa.bench.service/v1`).
    pub schema: String,
    /// Whether this was a smoke run.
    pub smoke: bool,
    /// Base seed.
    pub seed: u64,
    /// Instance nodes.
    pub nodes: usize,
    /// Instance edges.
    pub edges: usize,
    /// Campaign pieces ℓ.
    pub ell: usize,
    /// MRR samples θ per pool.
    pub theta: usize,
    /// Budget k.
    pub k: usize,
    /// All measurements.
    pub records: Vec<ServicePhaseRecord>,
    /// Cold-vs-warm summaries.
    pub summary: Vec<ServiceSpeedup>,
}

struct Spec {
    nodes: u32,
    edges: usize,
    ell: usize,
    theta: usize,
    k: usize,
    cold_requests: usize,
    warm_requests: usize,
    max_nodes: usize,
}

fn spec(smoke: bool) -> Spec {
    if smoke {
        Spec {
            nodes: 120,
            edges: 900,
            ell: 3,
            theta: 4_000,
            k: 3,
            cold_requests: 2,
            warm_requests: 4,
            max_nodes: 20,
        }
    } else {
        // The seeded medium instance: sampling dominates the solve, which
        // is exactly the regime a multi-query session amortizes.
        Spec {
            nodes: 400,
            edges: 3_200,
            ell: 3,
            theta: 30_000,
            k: 4,
            cold_requests: 3,
            warm_requests: 10,
            max_nodes: 40,
        }
    }
}

/// The measured methods: the paper's recommended solver and the
/// tractable-relaxation heuristic (both pool-bound, no extra inputs).
const METHODS: [Method; 2] = [Method::BabP, Method::Greedy];

fn request(method: Method, spec: &Spec, campaign: &Campaign, seed: u64) -> SolveRequest {
    let mut req = SolveRequest::new(method, spec.k);
    req.campaign = Some(campaign.clone());
    req.theta = Some(spec.theta);
    req.seed = Some(seed);
    req.promoter_fraction = Some(0.2);
    req.max_nodes = Some(spec.max_nodes);
    req
}

/// Runs the suite. Every request in both phases must produce the same
/// plan and utility — the phases differ only in where the pool comes
/// from.
pub fn run_service_suite(config: ServiceSuiteConfig) -> ServiceSuiteReport {
    let spec = spec(config.smoke);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5e55);
    let (graph, table, campaign) =
        small_random_instance(&mut rng, spec.nodes, spec.edges, spec.ell + 1, spec.ell);
    let mut records = Vec::new();
    let mut summary = Vec::new();

    for method in METHODS {
        let req = request(method, &spec, &campaign, config.seed ^ 0xc01d);

        // Cold: a fresh service (empty arena) per request — every request
        // pays sampling.
        let mut cold_lat = Vec::new();
        let mut cold_hits = 0usize;
        let mut cold_utility = 0.0f64;
        let mut cold_plan = None;
        let mut cold_plans_match = true;
        for _ in 0..spec.cold_requests {
            let service =
                PlannerService::new(graph.clone(), table.clone()).expect("valid instance");
            let response = service.solve(&req).expect("bench request solves");
            cold_lat.push(response.seconds * 1e3);
            cold_hits += response.pool_cache_hit as usize;
            cold_utility = response.utility;
            cold_plans_match &=
                *cold_plan.get_or_insert_with(|| response.plan.clone()) == response.plan;
        }
        let cold_plan = cold_plan.expect("at least one cold request");
        assert!(cold_plans_match, "{method}: cold answers disagree");
        records.push(phase_record(
            "cold",
            method,
            &cold_lat,
            cold_hits,
            cold_utility,
            cold_plans_match,
        ));

        // Warm: one service; prime the arena (untimed), then measure.
        let service = PlannerService::new(graph.clone(), table.clone()).expect("valid instance");
        let primed = service.solve(&req).expect("priming request solves");
        assert_eq!(
            primed.utility.to_bits(),
            cold_utility.to_bits(),
            "{method}: cold and primed answers diverged"
        );
        assert_eq!(primed.plan, cold_plan, "{method}: primed plan diverged");
        let mut warm_lat = Vec::new();
        let mut warm_hits = 0usize;
        let mut warm_utility = 0.0f64;
        let mut warm_plans_match = true;
        for _ in 0..spec.warm_requests {
            let response = service.solve(&req).expect("warm request solves");
            assert!(response.pool_cache_hit, "warm request missed the arena");
            warm_lat.push(response.seconds * 1e3);
            warm_hits += 1;
            warm_utility = response.utility;
            warm_plans_match &= response.plan == cold_plan;
        }
        assert_eq!(
            warm_utility.to_bits(),
            cold_utility.to_bits(),
            "{method}: warm answers diverged from cold"
        );
        assert!(warm_plans_match, "{method}: warm plan diverged from cold");
        records.push(phase_record(
            "warm",
            method,
            &warm_lat,
            warm_hits,
            warm_utility,
            warm_plans_match,
        ));

        let cold_mean = mean(&cold_lat);
        let warm_mean = mean(&warm_lat);
        summary.push(ServiceSpeedup {
            method: method.name().to_string(),
            cold_mean_ms: cold_mean,
            warm_mean_ms: warm_mean,
            speedup: cold_mean / warm_mean.max(1e-9),
        });
    }

    ServiceSuiteReport {
        schema: SERVICE_SCHEMA.to_string(),
        smoke: config.smoke,
        seed: config.seed,
        nodes: spec.nodes as usize,
        edges: spec.edges,
        ell: spec.ell,
        theta: spec.theta,
        k: spec.k,
        records,
        summary,
    }
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

fn phase_record(
    phase: &str,
    method: Method,
    latencies: &[f64],
    hits: usize,
    utility: f64,
    plan_matches_cold: bool,
) -> ServicePhaseRecord {
    let total: f64 = latencies.iter().sum();
    ServicePhaseRecord {
        phase: phase.to_string(),
        method: method.name().to_string(),
        requests: latencies.len(),
        mean_ms: mean(latencies),
        min_ms: latencies.iter().copied().fold(f64::INFINITY, f64::min),
        total_ms: total,
        requests_per_sec: latencies.len() as f64 / (total / 1e3).max(1e-9),
        pool_cache_hits: hits,
        utility,
        plan_matches_cold,
    }
}

/// Validates a report's schema and the invariants the CI smoke step
/// asserts: every method has both phases, warm phases are all-hits and
/// answer-identical to cold, and (full runs only) warm requests beat
/// cold requests by ≥ 5× for every method.
pub fn validate_report(report: &ServiceSuiteReport) -> Result<(), String> {
    if report.schema != SERVICE_SCHEMA {
        return Err(format!(
            "schema mismatch: {} != {SERVICE_SCHEMA}",
            report.schema
        ));
    }
    for method in METHODS {
        let find = |phase: &str| {
            report
                .records
                .iter()
                .find(|r| r.method == method.name() && r.phase == phase)
                .ok_or_else(|| format!("{method}: missing {phase} record"))
        };
        let cold = find("cold")?;
        let warm = find("warm")?;
        if warm.pool_cache_hits != warm.requests {
            return Err(format!(
                "{method}: warm phase had {} hits over {} requests",
                warm.pool_cache_hits, warm.requests
            ));
        }
        if warm.utility.to_bits() != cold.utility.to_bits() {
            return Err(format!(
                "{method}: warm utility {} diverged from cold {}",
                warm.utility, cold.utility
            ));
        }
        if !warm.plan_matches_cold || !cold.plan_matches_cold {
            return Err(format!("{method}: plans diverged across phases"));
        }
        if !report.smoke {
            let speedup = cold.mean_ms / warm.mean_ms.max(1e-9);
            if speedup < 5.0 {
                return Err(format!(
                    "{method}: warm-pool speedup {speedup:.2}× is below the 5× bar \
                     (cold {:.1} ms vs warm {:.1} ms)",
                    cold.mean_ms, warm.mean_ms
                ));
            }
        }
    }
    Ok(())
}

/// Renders the human-readable summary printed by the bin and CLI.
pub fn summary_text(report: &ServiceSuiteReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "service bench: {} nodes, {} edges, ell={}, theta={}, k={}",
        report.nodes, report.edges, report.ell, report.theta, report.k
    );
    let _ = writeln!(
        out,
        "{:<8} {:>8} {:>9} {:>10} {:>10} {:>10} {:>6}",
        "method", "phase", "requests", "mean_ms", "min_ms", "req/s", "hits"
    );
    for r in &report.records {
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>9} {:>10.1} {:>10.1} {:>10.2} {:>6}",
            r.method,
            r.phase,
            r.requests,
            r.mean_ms,
            r.min_ms,
            r.requests_per_sec,
            r.pool_cache_hits
        );
    }
    for s in &report.summary {
        let _ = writeln!(
            out,
            "speedup {:<8}: warm pool {:.1}x faster (cold {:.1} ms -> warm {:.1} ms)",
            s.method, s.speedup, s.cold_mean_ms, s.warm_mean_ms
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_passes_validation() {
        let report = run_service_suite(ServiceSuiteConfig {
            smoke: true,
            seed: 0,
        });
        assert_eq!(report.records.len(), 2 * METHODS.len());
        assert_eq!(report.summary.len(), METHODS.len());
        validate_report(&report).expect("smoke report must validate");
        let text = summary_text(&report);
        assert!(text.contains("warm"), "{text}");
    }
}
