//! End-to-end solver comparison on the `lastfm` stand-in: the four
//! compared methods of §VI at a fixed operating point (k = 20, ℓ = 3,
//! β/α = 0.5, ε = 0.5). Criterion-grade companion to the `fig4_vary_k`
//! harness binary.

use criterion::{criterion_group, criterion_main, Criterion};
use oipa_baselines::{im_baseline, paper::collapsed_pool, tim_baseline};
use oipa_core::{AuEstimator, BabConfig, BranchAndBound, OipaInstance};
use oipa_datasets::{lastfm_like, Scale};
use oipa_sampler::MrrPool;
use oipa_topics::{Campaign, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_solvers(c: &mut Criterion) {
    let dataset = lastfm_like(Scale::Full, 51);
    let mut rng = StdRng::seed_from_u64(51);
    let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 3);
    let model = LogisticAdoption::from_ratio(0.5);
    let pool = MrrPool::generate_parallel(&dataset.graph, &dataset.table, &campaign, 50_000, 51, 4);
    let flat = collapsed_pool(&dataset.graph, &dataset.table, 50_000, 51);
    let promoters = OipaInstance::sample_promoters(&mut rng, dataset.graph.node_count(), 0.10);
    let k = 20;

    let mut group = c.benchmark_group("solvers_lastfm_k20");
    group.sample_size(10);
    group.bench_function("im", |b| {
        b.iter(|| {
            let mut est = AuEstimator::new(&pool, model);
            im_baseline(&flat, &pool, &mut est, &promoters, k).utility
        })
    });
    group.bench_function("tim", |b| {
        b.iter(|| {
            let mut est = AuEstimator::new(&pool, model);
            tim_baseline(&pool, &mut est, &promoters, k).utility
        })
    });
    let instance = OipaInstance::new(&pool, model, promoters.clone(), k).unwrap();
    group.bench_function("bab", |b| {
        b.iter(|| {
            let config = BabConfig {
                max_nodes: Some(16),
                ..BabConfig::bab()
            };
            BranchAndBound::new(&instance, config).solve().utility
        })
    });
    group.bench_function("bab_p", |b| {
        b.iter(|| {
            let config = BabConfig {
                max_nodes: Some(16),
                ..BabConfig::bab_p(0.5)
            };
            BranchAndBound::new(&instance, config).solve().utility
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
