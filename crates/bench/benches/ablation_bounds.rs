//! Ablation: tangent-anchor refinement (Fig. 2) on vs off.
//!
//! With refinement disabled every sample keeps its coverage-0 majorant, so
//! upper bounds are looser, pruning is weaker, and branch-and-bound does
//! more work for the same answer. This bench quantifies that design
//! choice (DESIGN.md `ablation_bounds`).

use criterion::{criterion_group, criterion_main, Criterion};
use oipa_core::{BabConfig, BranchAndBound, OipaInstance};
use oipa_datasets::{lastfm_like, Scale};
use oipa_sampler::MrrPool;
use oipa_topics::{Campaign, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ablation(c: &mut Criterion) {
    let dataset = lastfm_like(Scale::Full, 31);
    let mut rng = StdRng::seed_from_u64(31);
    let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 3);
    let model = LogisticAdoption::from_ratio(0.5);
    let pool = MrrPool::generate_parallel(&dataset.graph, &dataset.table, &campaign, 30_000, 31, 4);
    let promoters = OipaInstance::sample_promoters(&mut rng, dataset.graph.node_count(), 0.10);
    let instance = OipaInstance::new(&pool, model, promoters, 10).unwrap();

    let mut group = c.benchmark_group("bab_refinement_ablation");
    group.sample_size(10);
    for (label, refine) in [("refined", true), ("unrefined", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = BabConfig {
                    max_nodes: Some(16),
                    refine_anchors: refine,
                    ..BabConfig::bab()
                };
                BranchAndBound::new(&instance, config).solve().utility
            })
        });
    }
    group.finish();

    // One-shot comparison of search effort for EXPERIMENTS.md.
    for (label, refine) in [("refined", true), ("unrefined", false)] {
        let config = BabConfig {
            max_nodes: Some(16),
            refine_anchors: refine,
            ..BabConfig::bab()
        };
        let sol = BranchAndBound::new(&instance, config).solve();
        println!(
            "# {label}: utility {:.2}, upper {:.2}, nodes {}, bounds {}, pruned {}",
            sol.utility,
            sol.upper_bound,
            sol.stats.nodes_expanded,
            sol.stats.bounds_computed,
            sol.stats.nodes_pruned,
        );
    }
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
