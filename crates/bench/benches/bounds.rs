//! `ComputeBound` implementations head-to-head: the paper's plain greedy
//! rescan (Algorithm 2 as printed), the CELF-accelerated greedy, and the
//! progressive estimation (Algorithm 3) at several ε.
//!
//! This is the lazy-evaluation ablation (`ablation_lazy` in DESIGN.md) and
//! the §V-C claim — progressive cuts τ evaluations — in microbenchmark
//! form.

use criterion::{criterion_group, criterion_main, Criterion};
use oipa_core::greedy::{compute_bound_celf, compute_bound_plain};
use oipa_core::progressive::compute_bound_progressive;
use oipa_core::tau::TauState;
use oipa_core::{AssignmentPlan, OipaInstance, TangentTable};
use oipa_datasets::{lastfm_like, Scale};
use oipa_sampler::MrrPool;
use oipa_topics::{Campaign, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_bounds(c: &mut Criterion) {
    let dataset = lastfm_like(Scale::Full, 13);
    let mut rng = StdRng::seed_from_u64(13);
    let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 3);
    let model = LogisticAdoption::from_ratio(0.5);
    let pool = MrrPool::generate_parallel(&dataset.graph, &dataset.table, &campaign, 50_000, 13, 4);
    let table = TangentTable::new(model, campaign.len());
    let promoters = OipaInstance::sample_promoters(&mut rng, dataset.graph.node_count(), 0.10);
    let empty = AssignmentPlan::empty(campaign.len());
    let k = 20;

    let mut group = c.benchmark_group("compute_bound_k20");
    group.sample_size(10);
    group.bench_function("plain_greedy", |b| {
        b.iter(|| {
            let mut state = TauState::new(&pool, &table, model);
            state.reset_to(&empty);
            compute_bound_plain(&mut state, &empty, &promoters, &Default::default(), k).tau
        })
    });
    group.bench_function("celf_greedy", |b| {
        b.iter(|| {
            let mut state = TauState::new(&pool, &table, model);
            state.reset_to(&empty);
            compute_bound_celf(&mut state, &empty, &promoters, &Default::default(), k).tau
        })
    });
    for eps in [0.1, 0.5, 0.9] {
        group.bench_function(format!("progressive_eps{eps}"), |b| {
            b.iter(|| {
                let mut state = TauState::new(&pool, &table, model);
                state.reset_to(&empty);
                compute_bound_progressive(
                    &mut state,
                    &empty,
                    &promoters,
                    &Default::default(),
                    k,
                    eps,
                )
                .tau
            })
        });
    }
    group.finish();

    // Evaluation-count comparison printed once for EXPERIMENTS.md.
    let counts: Vec<(&str, u64)> = {
        let mut out = Vec::new();
        let mut s = TauState::new(&pool, &table, model);
        s.reset_to(&empty);
        compute_bound_plain(&mut s, &empty, &promoters, &Default::default(), k);
        out.push(("plain", s.evaluations));
        let mut s = TauState::new(&pool, &table, model);
        s.reset_to(&empty);
        compute_bound_celf(&mut s, &empty, &promoters, &Default::default(), k);
        out.push(("celf", s.evaluations));
        let mut s = TauState::new(&pool, &table, model);
        s.reset_to(&empty);
        compute_bound_progressive(&mut s, &empty, &promoters, &Default::default(), k, 0.5);
        out.push(("progressive", s.evaluations));
        out
    };
    println!("# tau evaluations at k={k}: {counts:?}");
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
