//! Ablation: inverted-index marginal gains vs direct RR-set scans.
//!
//! Every solver iteration asks "how much does candidate v add to piece
//! j?". With the inverted index this costs O(|samples containing v|);
//! without it, a scan over all θ RR sets. The index is the difference
//! between milliseconds and minutes at θ = 10⁶ (DESIGN.md
//! `ablation_index`).

use criterion::{criterion_group, criterion_main, Criterion};
use oipa_datasets::{lastfm_like, Scale};
use oipa_sampler::MrrPool;
use oipa_topics::Campaign;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_index(c: &mut Criterion) {
    let dataset = lastfm_like(Scale::Full, 41);
    let mut rng = StdRng::seed_from_u64(41);
    let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 2);
    let pool = MrrPool::generate_parallel(&dataset.graph, &dataset.table, &campaign, 50_000, 41, 4);
    // A mid-degree node: realistic candidate.
    let v = (dataset.graph.node_count() / 2) as u32;

    c.bench_function("gain_lookup/inverted_index", |b| {
        b.iter(|| pool.samples_containing(0, v).len())
    });
    c.bench_function("gain_lookup/direct_scan", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for i in 0..pool.theta() {
                if pool.rr_set(0, i).contains(&v) {
                    count += 1;
                }
            }
            count
        })
    });
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
