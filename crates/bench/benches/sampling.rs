//! RR / MRR sampling throughput.
//!
//! Supports Table III's "sample time" row: measures single RR-set
//! generation, sequential pool generation, and the parallel speedup.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oipa_datasets::{lastfm_like, Scale};
use oipa_graph::traverse::BfsScratch;
use oipa_sampler::{sample_rr_set, MrrPool, PieceProbs, RrPool};
use oipa_topics::Campaign;
use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, SeedableRng};

fn bench_sampling(c: &mut Criterion) {
    let dataset = lastfm_like(Scale::Full, 7);
    let mut rng = StdRng::seed_from_u64(7);
    let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 3);
    let piece = &campaign.piece(0).topics;
    let n = dataset.graph.node_count();

    c.bench_function("rr_set/single_lastfm", |b| {
        let probs = PieceProbs::new(&dataset.table, piece);
        let mut scratch = BfsScratch::new(n);
        let mut out = Vec::new();
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let root = rng.gen_range(0..n as u32);
            sample_rr_set(&mut rng, &dataset.graph, &probs, root, &mut scratch, &mut out);
            out.len()
        })
    });

    let mut group = c.benchmark_group("pool_generation");
    group.sample_size(10);
    group.bench_function("rr_pool_10k_lastfm", |b| {
        let flat = oipa_sampler::MaterializedProbs(dataset.table.collapse_mean());
        b.iter(|| RrPool::generate(&dataset.graph, &flat, 10_000, 3).theta())
    });
    group.bench_function("mrr_pool_10k_l3_seq", |b| {
        b.iter(|| MrrPool::generate(&dataset.graph, &dataset.table, &campaign, 10_000, 3).theta())
    });
    group.bench_function("mrr_pool_10k_l3_par4", |b| {
        b.iter(|| {
            MrrPool::generate_parallel(&dataset.graph, &dataset.table, &campaign, 10_000, 3, 4)
                .theta()
        })
    });
    group.finish();

    c.bench_function("rr_set/materialized_vs_onthefly", |b| {
        // On-the-fly piece probabilities (sparse dot) vs nothing to
        // compare directly here; this measures the materialization cost.
        b.iter_batched(
            || (),
            |_| dataset.table.materialize(piece).len(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
