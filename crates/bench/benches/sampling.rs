//! RR / MRR sampling throughput.
//!
//! Supports Table III's "sample time" row: measures single RR-set
//! generation, sequential pool generation, and the parallel speedup.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oipa_datasets::{lastfm_like, Scale};
use oipa_graph::traverse::BfsScratch;
use oipa_sampler::{sample_rr_set, MrrPool, PieceProbs, RrPool};
use oipa_topics::Campaign;
use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, SeedableRng};

fn bench_sampling(c: &mut Criterion) {
    let dataset = lastfm_like(Scale::Full, 7);
    let mut rng = StdRng::seed_from_u64(7);
    let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 3);
    let piece = &campaign.piece(0).topics;
    let n = dataset.graph.node_count();

    c.bench_function("rr_set/single_lastfm", |b| {
        let probs = PieceProbs::new(&dataset.table, piece);
        let mut scratch = BfsScratch::new(n);
        let mut out = Vec::new();
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let root = rng.gen_range(0..n as u32);
            sample_rr_set(
                &mut rng,
                &dataset.graph,
                &probs,
                root,
                &mut scratch,
                &mut out,
            );
            out.len()
        })
    });

    let mut group = c.benchmark_group("pool_generation");
    group.sample_size(10);
    group.bench_function("rr_pool_10k_lastfm", |b| {
        let flat = oipa_sampler::MaterializedProbs(dataset.table.collapse_mean());
        b.iter(|| RrPool::generate(&dataset.graph, &flat, 10_000, 3).theta())
    });
    group.bench_function("mrr_pool_10k_l3_seq1", |b| {
        b.iter(|| {
            MrrPool::generate_parallel(&dataset.graph, &dataset.table, &campaign, 10_000, 3, 1)
                .theta()
        })
    });
    group.bench_function("mrr_pool_10k_l3_par4", |b| {
        b.iter(|| {
            MrrPool::generate_parallel(&dataset.graph, &dataset.table, &campaign, 10_000, 3, 4)
                .theta()
        })
    });
    group.bench_function("mrr_pool_10k_l3_par_all", |b| {
        b.iter(|| MrrPool::generate(&dataset.graph, &dataset.table, &campaign, 10_000, 3).theta())
    });
    group.finish();

    // Headline parallel-sampling speedup: identical workload and seed, 1
    // thread vs min(4, cores) threads, measured directly so the ratio
    // prints without cross-referencing criterion output. (The two pools
    // are bitwise identical; only wall-clock differs.)
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let par_threads = cores.min(4);
    let theta = 60_000;
    let time = |threads: usize| {
        let start = std::time::Instant::now();
        let pool = MrrPool::generate_parallel(
            &dataset.graph,
            &dataset.table,
            &campaign,
            theta,
            3,
            threads,
        );
        assert_eq!(pool.theta(), theta);
        start.elapsed()
    };
    time(1); // warm caches
    let sequential = time(1);
    let parallel = time(par_threads);
    println!(
        "mrr_speedup: theta={theta} l=3  1 thread {:.1} ms  {par_threads} threads {:.1} ms  speedup {:.2}x ({cores} cores available)",
        sequential.as_secs_f64() * 1e3,
        parallel.as_secs_f64() * 1e3,
        sequential.as_secs_f64() / parallel.as_secs_f64(),
    );

    c.bench_function("rr_set/materialized_vs_onthefly", |b| {
        // On-the-fly piece probabilities (sparse dot) vs nothing to
        // compare directly here; this measures the materialization cost.
        b.iter_batched(
            || (),
            |_| dataset.table.materialize(piece).len(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
