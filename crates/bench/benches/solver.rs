//! The `solver` engine ablation: incremental (trail + seed cache) vs
//! reference (full replay + fresh scans) branch-and-bound on a seeded
//! random instance, plus the plain-greedy rescan yardstick. Criterion
//! companion to the `bench_solver` bin / `BENCH_solver.json` artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use oipa_core::{BabConfig, BoundMethod, BranchAndBound, OipaInstance, SolverEngine};
use oipa_sampler::testkit::small_random_instance;
use oipa_sampler::MrrPool;
use oipa_topics::LogisticAdoption;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_solver_engines(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(77);
    let (g, table, campaign) = small_random_instance(&mut rng, 90, 700, 4, 3);
    let pool = MrrPool::generate(&g, &table, &campaign, 20_000, 77 ^ 0xbeef);
    let model = LogisticAdoption::new(3.0, 1.0);
    let promoters: Vec<u32> = (0..90).step_by(3).collect();
    let instance = OipaInstance::new(&pool, model, promoters, 5).unwrap();
    let base = BabConfig {
        max_nodes: Some(120),
        ..BabConfig::bab()
    };

    let mut group = c.benchmark_group("solver_engines_rand90_k5");
    group.sample_size(10);
    group.bench_function("bab_reference", |b| {
        b.iter(|| {
            BranchAndBound::new(
                &instance,
                BabConfig {
                    engine: SolverEngine::Reference,
                    ..base
                },
            )
            .solve()
            .utility
        })
    });
    group.bench_function("bab_incremental", |b| {
        b.iter(|| {
            BranchAndBound::new(
                &instance,
                BabConfig {
                    engine: SolverEngine::Incremental,
                    ..base
                },
            )
            .solve()
            .utility
        })
    });
    group.bench_function("bab_plain_rescan", |b| {
        b.iter(|| {
            BranchAndBound::new(
                &instance,
                BabConfig {
                    method: BoundMethod::PlainGreedy,
                    engine: SolverEngine::Reference,
                    ..base
                },
            )
            .solve()
            .utility
        })
    });
    group.finish();

    // Headline ratio, printed like the sampling bench's mrr_speedup.
    let reference = BranchAndBound::new(
        &instance,
        BabConfig {
            engine: SolverEngine::Reference,
            ..base
        },
    )
    .solve();
    let incremental = BranchAndBound::new(
        &instance,
        BabConfig {
            engine: SolverEngine::Incremental,
            ..base
        },
    )
    .solve();
    assert_eq!(reference.plan, incremental.plan, "engines diverged");
    println!(
        "solver_tau_eval_speedup: {:.2}x ({} -> {} evaluations; plans identical)",
        reference.stats.tau_evaluations as f64 / incremental.stats.tau_evaluations.max(1) as f64,
        reference.stats.tau_evaluations,
        incremental.stats.tau_evaluations,
    );
}

criterion_group!(benches, bench_solver_engines);
criterion_main!(benches);
