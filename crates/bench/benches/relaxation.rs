//! The §VII tractable-relaxation heuristic vs branch-and-bound: how much
//! quality does one give up for a guaranteed-greedy one-shot solve?

use criterion::{criterion_group, criterion_main, Criterion};
use oipa_core::relaxed::envelope_heuristic;
use oipa_core::{BabConfig, BranchAndBound, OipaInstance};
use oipa_datasets::{lastfm_like, Scale};
use oipa_sampler::MrrPool;
use oipa_topics::{Campaign, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_relaxation(c: &mut Criterion) {
    let dataset = lastfm_like(Scale::Full, 61);
    let mut rng = StdRng::seed_from_u64(61);
    let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 3);
    let model = LogisticAdoption::from_ratio(0.5);
    let pool = MrrPool::generate_parallel(&dataset.graph, &dataset.table, &campaign, 50_000, 61, 4);
    let promoters = OipaInstance::sample_promoters(&mut rng, dataset.graph.node_count(), 0.10);
    let k = 20;

    let mut group = c.benchmark_group("relaxation_vs_bab_k20");
    group.sample_size(10);
    group.bench_function("envelope_heuristic", |b| {
        b.iter(|| envelope_heuristic(&pool, model, &promoters, k).1)
    });
    let instance = OipaInstance::new(&pool, model, promoters.clone(), k).unwrap();
    group.bench_function("bab_p", |b| {
        b.iter(|| {
            BranchAndBound::new(
                &instance,
                BabConfig {
                    max_nodes: Some(16),
                    ..BabConfig::bab_p(0.5)
                },
            )
            .solve()
            .utility
        })
    });
    group.finish();

    // Quality comparison printed once for EXPERIMENTS.md.
    let (_, heuristic) = envelope_heuristic(&pool, model, &promoters, k);
    let bab = BranchAndBound::new(
        &instance,
        BabConfig {
            max_nodes: Some(16),
            ..BabConfig::bab()
        },
    )
    .solve();
    println!(
        "# relaxation quality at k={k}: envelope {heuristic:.2} vs BAB {:.2} ({:.1}%)",
        bab.utility,
        100.0 * heuristic / bab.utility
    );
}

criterion_group!(benches, bench_relaxation);
criterion_main!(benches);
