//! The `Refine` binary search and tangent-table construction.
//!
//! The paper's Appendix worries about the cost of obtaining tangent lines;
//! these benches show `Refine` is nanosecond-scale and the whole table
//! (one line per coverage anchor) is built once per solve.

use criterion::{criterion_group, criterion_main, Criterion};
use oipa_core::tangent::{refine, TangentTable};
use oipa_topics::LogisticAdoption;

fn bench_tangent(c: &mut Criterion) {
    c.bench_function("refine/anchor_-3", |b| {
        b.iter(|| refine(std::hint::black_box(-3.0), 1e-12).w)
    });
    c.bench_function("refine/anchor_-0.5", |b| {
        b.iter(|| refine(std::hint::black_box(-0.5), 1e-12).w)
    });
    c.bench_function("tangent_table/l5", |b| {
        let model = LogisticAdoption::new(3.0, 1.0);
        b.iter(|| TangentTable::new(model, 5).marginal(0, 0))
    });
    c.bench_function("tangent_table/l50", |b| {
        let model = LogisticAdoption::new(10.0, 0.3);
        b.iter(|| TangentTable::new(model, 50).marginal(0, 0))
    });
}

criterion_group!(benches, bench_tangent);
criterion_main!(benches);
