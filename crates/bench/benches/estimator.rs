//! AU-estimator evaluation cost (Eqn. 6) as plan size grows.

use criterion::{criterion_group, criterion_main, Criterion};
use oipa_core::{AssignmentPlan, AuEstimator};
use oipa_datasets::{lastfm_like, Scale};
use oipa_sampler::MrrPool;
use oipa_topics::{Campaign, LogisticAdoption};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_estimator(c: &mut Criterion) {
    let dataset = lastfm_like(Scale::Full, 21);
    let mut rng = StdRng::seed_from_u64(21);
    let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 3);
    let model = LogisticAdoption::from_ratio(0.5);
    let pool =
        MrrPool::generate_parallel(&dataset.graph, &dataset.table, &campaign, 100_000, 21, 4);
    let n = dataset.graph.node_count() as u32;

    let mut group = c.benchmark_group("au_estimator");
    for &size in &[1usize, 10, 50] {
        let plan = {
            let mut p = AssignmentPlan::empty(3);
            let mut rng = StdRng::seed_from_u64(size as u64);
            while p.size() < size {
                p.insert(rng.gen_range(0..3), rng.gen_range(0..n));
            }
            p
        };
        group.bench_function(format!("evaluate_plan_size_{size}"), |b| {
            let mut est = AuEstimator::new(&pool, model);
            b.iter(|| est.evaluate(&plan))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);
