//! # oipa-datasets
//!
//! Synthetic stand-ins for the paper's evaluation datasets and the
//! hardness-reduction gadget.
//!
//! The paper evaluates on three real networks (Table III) that we cannot
//! redistribute:
//!
//! | dataset | nodes | edges | avg deg | topics | preparation |
//! |---|---|---|---|---|---|
//! | `lastfm` | 1.3K | 15K | 8.7 | 20 | TIC learning from action logs |
//! | `dblp`   | 0.5M | 6M  | 11.9 | 9 | research fields as topics |
//! | `tweet`  | 10M  | 12M | 1.2 | 50 | LDA over hashtag documents |
//!
//! [`lastfm_like`], [`dblp_like`] and [`tweet_like`] generate graphs with
//! the same shapes (power-law degree structure, matched average degree,
//! topic count, and — for `tweet` — the ≈1.5 average non-zero topic
//! entries per edge the paper highlights). A [`Scale`] knob shrinks the
//! two big datasets for CI while preserving average degree; the bench
//! harness can run larger fractions or `Scale::Full`.
//!
//! [`actionlog`] simulates TIC cascades to produce the propagation logs
//! the `lastfm` pipeline learns from, and [`hardness`] builds the
//! Max-Clique reduction instance of §IV-B (Lemma 1 / Theorem 1).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod actionlog;
pub mod hardness;
mod registry;

pub use registry::{dblp_like, lastfm_like, tweet_like, Dataset, Scale};
