//! Action-log simulation.
//!
//! The paper's `lastfm` dataset ships "an action log which records users'
//! activities of voting items (i.e., 'a log of past propagation')", from
//! which TIC learning recovers `p(e|z)`. We do not have that log, so this
//! module produces the synthetic equivalent: it plants a ground-truth
//! probability table, simulates item cascades under the topic-aware IC
//! model, and emits time-stamped activation records — the exact input
//! contract of `oipa_topics::tic::learn_edge_probs`. The substitution
//! preserves the relevant behaviour because the learner only ever sees
//! (item topics, who activated when), which is what a real log contains.

use oipa_graph::{DiGraph, NodeId};
use oipa_topics::tic::Cascade;
use oipa_topics::{EdgeTopicProbs, TopicVector};
use rand::Rng;

/// Log-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct LogParams {
    /// Number of cascades (items) to simulate.
    pub cascades: usize,
    /// Seeds per cascade (drawn uniformly).
    pub seeds_per_cascade: usize,
    /// Probability that an item is single-topic (one-hot); otherwise its
    /// topic distribution is a random 2-topic mix.
    pub one_hot_fraction: f64,
}

impl Default for LogParams {
    fn default() -> Self {
        LogParams {
            cascades: 500,
            seeds_per_cascade: 2,
            one_hot_fraction: 0.7,
        }
    }
}

/// Simulates `params.cascades` item cascades against a planted table and
/// returns the action log.
pub fn simulate_logs<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &DiGraph,
    planted: &EdgeTopicProbs,
    params: LogParams,
) -> Vec<Cascade> {
    assert!(graph.node_count() > 0);
    let z = planted.topic_count();
    let mut logs = Vec::with_capacity(params.cascades);
    let mut active = vec![0u32; graph.node_count()];
    for c in 0..params.cascades {
        let item = random_item(rng, z, params.one_hot_fraction);
        let stamp = c as u32 + 1;
        let mut activations: Vec<(NodeId, u32)> = Vec::new();
        let mut frontier: Vec<NodeId> = Vec::new();
        for _ in 0..params.seeds_per_cascade {
            let s = rng.gen_range(0..graph.node_count()) as NodeId;
            if active[s as usize] != stamp {
                active[s as usize] = stamp;
                activations.push((s, 0));
                frontier.push(s);
            }
        }
        let mut time = 0u32;
        while !frontier.is_empty() {
            time += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for e in graph.out_edges(u) {
                    if active[e.target as usize] == stamp {
                        continue;
                    }
                    let p = planted.piece_prob(&item, e.id);
                    if p > 0.0 && rng.gen_range(0.0f32..1.0) < p {
                        active[e.target as usize] = stamp;
                        activations.push((e.target, time));
                        next.push(e.target);
                    }
                }
            }
            frontier = next;
        }
        logs.push(Cascade {
            item_topics: item,
            activations,
        });
    }
    logs
}

fn random_item<R: Rng + ?Sized>(rng: &mut R, z: usize, one_hot_fraction: f64) -> TopicVector {
    if rng.gen_bool(one_hot_fraction) || z < 2 {
        TopicVector::one_hot(z, rng.gen_range(0..z)).expect("topic in range")
    } else {
        let a = rng.gen_range(0..z);
        let mut b = rng.gen_range(0..z);
        while b == a {
            b = rng.gen_range(0..z);
        }
        let mix = rng.gen_range(0.2f32..0.8);
        let mut values = vec![0.0f32; z];
        values[a] = mix;
        values[b] = 1.0 - mix;
        TopicVector::new(values).expect("valid mixture")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_topics::tic::{learn_edge_probs, TicParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn logs_have_seeds_and_timestamps() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = crate::lastfm_like(crate::Scale::Tiny, 4);
        let logs = simulate_logs(
            &mut rng,
            &d.graph,
            &d.table,
            LogParams {
                cascades: 50,
                ..Default::default()
            },
        );
        assert_eq!(logs.len(), 50);
        for c in &logs {
            assert!(!c.activations.is_empty());
            // Seeds at time 0; times non-decreasing in record order.
            assert_eq!(c.activations[0].1, 0);
            let mut prev = 0;
            for &(_, t) in &c.activations {
                assert!(t >= prev);
                prev = t;
            }
        }
    }

    /// End-to-end `lastfm` preparation pipeline: plant → simulate log →
    /// learn → compare. The learned table must rank strong planted edges
    /// above weak ones (rank fidelity is what the optimizer consumes).
    #[test]
    fn tic_pipeline_recovers_signal() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = crate::lastfm_like(crate::Scale::Tiny, 11);
        let logs = simulate_logs(
            &mut rng,
            &d.graph,
            &d.table,
            LogParams {
                cascades: 800,
                seeds_per_cascade: 3,
                one_hot_fraction: 1.0,
            },
        );
        let learned = learn_edge_probs(&d.graph, d.topics, &logs, TicParams::default()).unwrap();
        assert_eq!(learned.edge_count(), d.graph.edge_count());
        // The learned table must contain signal: at least some edges with
        // substantial probability mass.
        assert!(learned.nnz() > 0, "nothing learned");
        assert!(learned.mean_nonzero_prob() > 0.01);
    }

    #[test]
    fn mixture_items_generated() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_mixture = false;
        for _ in 0..100 {
            let item = random_item(&mut rng, 10, 0.0);
            if item.support() == 2 {
                saw_mixture = true;
            }
            let sum: f32 = item.as_slice().iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(saw_mixture);
    }
}
