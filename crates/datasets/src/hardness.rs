//! The Max-Clique → OIPA reduction gadget (§IV-B, Lemma 1, Theorem 1).
//!
//! Given a Max-Clique instance `Π_a` on `n` vertices, the paper constructs
//! an OIPA instance `Π_b` with `3n` vertices (`x_i`, `y_i`, `r_i`), `n`
//! one-hot pieces, promoter pool `{x_i} ∪ {y_i}`, budget `k = n`, and
//! logistic parameters `α = 2n·ln(2n)`, `β = 2·ln(2n)` — so a vertex
//! receiving all `n` pieces adopts with probability ½ while one receiving
//! at most `n − 1` adopts with probability ≤ 1/(1 + (2n)²).
//!
//! Building the gadget lets tests exercise Lemma 1's sandwich
//! `2·OPT(Π_b) − 1/n ≤ OPT(Π_a) ≤ 2·OPT(Π_b)` on small instances, which
//! pins down both the reduction's bookkeeping and the estimator/solver on
//! an adversarially structured (non-power-law) input.

use oipa_graph::{DiGraph, GraphBuilder, NodeId};
use oipa_topics::{
    Campaign, EdgeProbsBuilder, EdgeTopicProbs, LogisticAdoption, Piece, SparseTopicVector,
    TopicVector,
};

/// The constructed OIPA instance `Π_b`.
#[derive(Debug, Clone)]
pub struct CliqueGadget {
    /// 3n-vertex gadget graph: `x_i = i`, `y_i = n + i`, `r_i = 2n + i`.
    pub graph: DiGraph,
    /// One-hot `p(e|z)` table (edge from `x_i`/`y_i` carries topic `i`).
    pub table: EdgeTopicProbs,
    /// The n one-hot pieces `t_1..t_n`.
    pub campaign: Campaign,
    /// Logistic parameters (α = 2n·ln(2n), β = 2·ln(2n)).
    pub model: LogisticAdoption,
    /// The promoter pool `{x_i} ∪ {y_i}`.
    pub promoters: Vec<NodeId>,
    /// Budget `k = n`.
    pub budget: usize,
    /// Source clique-instance size n.
    pub n: usize,
}

impl CliqueGadget {
    /// The `x` promoter for source vertex `i`.
    pub fn x(&self, i: usize) -> NodeId {
        i as NodeId
    }

    /// The `y` promoter for source vertex `i`.
    pub fn y(&self, i: usize) -> NodeId {
        (self.n + i) as NodeId
    }

    /// The receiver vertex `r_i`.
    pub fn r(&self, i: usize) -> NodeId {
        (2 * self.n + i) as NodeId
    }
}

/// Builds `Π_b` from an undirected Max-Clique instance given as an
/// adjacency list of `n` vertices (`edges[i]` lists neighbors of `i`;
/// symmetry is the caller's responsibility).
pub fn build_gadget(n: usize, edges: &[(usize, usize)]) -> CliqueGadget {
    assert!(n >= 2, "clique instances need at least two vertices");
    assert!(n <= u16::MAX as usize, "topic ids must fit u16");
    let mut adjacent = vec![vec![false; n]; n];
    for &(u, v) in edges {
        assert!(u < n && v < n && u != v, "bad clique edge ({u}, {v})");
        adjacent[u][v] = true;
        adjacent[v][u] = true;
    }

    let mut builder = GraphBuilder::new();
    builder.ensure_nodes(3 * n as u32);
    // Construction steps 3–4 of §IV-B.
    let mut edge_topics: Vec<(NodeId, NodeId, u16)> = Vec::new();
    #[allow(clippy::needless_range_loop)] // i, j mirror the paper's vertex indices
    for i in 0..n {
        // x_i -> r_j for j = i and all clique-neighbors j of i.
        for j in 0..n {
            if j == i || adjacent[i][j] {
                let (u, v) = (i as NodeId, (2 * n + j) as NodeId);
                builder.add_edge(u, v);
                edge_topics.push((u, v, i as u16));
            }
        }
        // y_i -> r_j for all j ≠ i.
        for j in 0..n {
            if j != i {
                let (u, v) = ((n + i) as NodeId, (2 * n + j) as NodeId);
                builder.add_edge(u, v);
                edge_topics.push((u, v, i as u16));
            }
        }
    }
    let graph = builder.build().expect("gadget edges are valid");
    let mut probs = EdgeProbsBuilder::new(graph.edge_count(), n);
    for (u, v, z) in edge_topics {
        let e = graph.find_edge(u, v).expect("edge was added");
        probs
            .set(
                e.id,
                SparseTopicVector::new(vec![(z, 1.0)], n).expect("valid"),
            )
            .expect("edge in range");
    }
    let table = probs.build();
    let pieces = (0..n)
        .map(|i| {
            Piece::new(
                format!("t{i}"),
                TopicVector::one_hot(n, i).expect("in range"),
            )
        })
        .collect();
    let campaign = Campaign::new(pieces).expect("uniform dimensions");
    // Step 5: α = 2n·ln(2n), β = 2·ln(2n).
    let ln2n = (2.0 * n as f64).ln();
    let model = LogisticAdoption::new(2.0 * n as f64 * ln2n, 2.0 * ln2n);
    let promoters = (0..2 * n as u32).collect();
    CliqueGadget {
        graph,
        table,
        campaign,
        model,
        promoters,
        budget: n,
        n,
    }
}

/// The exact adoption utility of the canonical plan derived from a clique
/// candidate `C ⊆ {0..n}`: piece `t_i` goes to `x_i` when `i ∈ C`, else to
/// `y_i` (Lemma 1's deployment). Computed analytically — the gadget is a
/// two-layer DAG, so coverage counts are exact.
pub fn plan_utility_for_subset(gadget: &CliqueGadget, subset: &[usize]) -> f64 {
    let n = gadget.n;
    let in_subset = {
        let mut b = vec![false; n];
        for &i in subset {
            b[i] = true;
        }
        b
    };
    // Which pieces reach r_j? Piece i reaches r_j iff:
    //   chosen x_i: j == i or (i, j) adjacent;
    //   chosen y_i: j != i.
    let mut utility = 0.0;
    #[allow(clippy::needless_range_loop)] // i, j mirror the paper's vertex indices
    for j in 0..n {
        let mut coverage = 0usize;
        for i in 0..n {
            let reaches = if in_subset[i] {
                j == i || edge_in_gadget(gadget, i, j)
            } else {
                j != i
            };
            if reaches {
                coverage += 1;
            }
        }
        utility += gadget.model.adoption_prob(coverage);
    }
    // Promoters themselves receive their own piece (the x_i/y_i vertices
    // have no in-edges; each chosen promoter is a seed so it "receives"
    // the piece it spreads).
    utility += n as f64 * gadget.model.adoption_prob(1);
    utility
}

fn edge_in_gadget(gadget: &CliqueGadget, i: usize, j: usize) -> bool {
    gadget.graph.find_edge(gadget.x(i), gadget.r(j)).is_some() && i != j
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A triangle plus a pendant vertex: max clique = {0, 1, 2}, size 3.
    fn triangle_plus_tail() -> CliqueGadget {
        build_gadget(4, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn gadget_shape() {
        let g = triangle_plus_tail();
        assert_eq!(g.graph.node_count(), 12);
        assert_eq!(g.campaign.len(), 4);
        assert_eq!(g.promoters.len(), 8);
        assert_eq!(g.budget, 4);
        // x_0 reaches r_0 (self), r_1, r_2 (neighbors) but not r_3.
        assert!(g.graph.find_edge(g.x(0), g.r(0)).is_some());
        assert!(g.graph.find_edge(g.x(0), g.r(1)).is_some());
        assert!(g.graph.find_edge(g.x(0), g.r(3)).is_none());
        // y_0 reaches all but r_0.
        assert!(g.graph.find_edge(g.y(0), g.r(0)).is_none());
        assert!(g.graph.find_edge(g.y(0), g.r(3)).is_some());
    }

    #[test]
    fn adoption_probabilities_match_step5() {
        let g = triangle_plus_tail();
        let n = 4.0;
        // All n pieces: probability exactly 1/2.
        assert!((g.model.adoption_prob(4) - 0.5).abs() < 1e-9);
        // n−1 pieces: ≤ 1/(1+(2n)²).
        let bound = 1.0 / (1.0 + (2.0 * n) * (2.0 * n));
        assert!(g.model.adoption_prob(3) <= bound + 1e-12);
    }

    #[test]
    fn clique_subset_maximizes_utility() {
        let g = triangle_plus_tail();
        // The max clique {0,1,2}: r_0, r_1, r_2 receive all 4 pieces.
        let clique_util = plan_utility_for_subset(&g, &[0, 1, 2]);
        // A non-clique subset {0, 3} (not adjacent): fewer full receivers.
        let bad_util = plan_utility_for_subset(&g, &[0, 3]);
        assert!(
            clique_util > bad_util,
            "clique {clique_util} vs non-clique {bad_util}"
        );
        // Exactly 3 receivers at probability 1/2 (+ tail misses piece 3).
        // OPT(Π_b) ≥ |C|/2.
        assert!(clique_util >= 1.5);
    }

    /// Lemma 1: 2·OPT(Π_b) − 1/n ≤ OPT(Π_a) ≤ 2·OPT(Π_b), with OPT(Π_b)
    /// found by enumerating all 2^n promoter subsets.
    #[test]
    fn lemma1_sandwich_on_small_instances() {
        struct Case {
            n: usize,
            edges: Vec<(usize, usize)>,
            max_clique: usize,
        }
        let cases = [
            Case {
                n: 4,
                edges: vec![(0, 1), (1, 2), (0, 2), (2, 3)],
                max_clique: 3,
            },
            Case {
                n: 3,
                edges: vec![(0, 1)],
                max_clique: 2,
            },
            Case {
                n: 4,
                edges: vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)],
                max_clique: 4,
            },
        ];
        for case in cases {
            let g = build_gadget(case.n, &case.edges);
            // Enumerate all plans of the canonical form (x or y per piece).
            let mut opt_b = 0.0f64;
            for mask in 0..(1u32 << case.n) {
                let subset: Vec<usize> = (0..case.n).filter(|&i| mask >> i & 1 == 1).collect();
                let mut u = plan_utility_for_subset(&g, &subset);
                // Promoter self-adoption contributes equally to every plan;
                // subtract it so OPT reflects the receivers (as in the
                // paper's accounting, which only counts r-vertices).
                u -= case.n as f64 * g.model.adoption_prob(1);
                opt_b = opt_b.max(u);
            }
            let lhs = 2.0 * opt_b - 1.0 / case.n as f64;
            let rhs = 2.0 * opt_b;
            let opt_a = case.max_clique as f64;
            assert!(
                lhs <= opt_a + 1e-9 && opt_a <= rhs + 1e-9,
                "n={}: sandwich violated: {lhs} ≤ {opt_a} ≤ {rhs}",
                case.n
            );
        }
    }

    #[test]
    #[should_panic(expected = "bad clique edge")]
    fn rejects_self_loops() {
        let _ = build_gadget(3, &[(1, 1)]);
    }
}
