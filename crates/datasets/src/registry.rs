//! Dataset generators matched to Table III.

use oipa_graph::{generators, stats, DiGraph};
use oipa_topics::{synthesize_random, EdgeTopicProbs, SynthesisParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Down-scaling factor for the two large datasets.
///
/// Scaling preserves average degree (edges shrink with nodes) and all
/// topic statistics; only the raw size changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scale {
    /// ~1/1000 of paper size — unit tests.
    Tiny,
    /// ~1/100 — CI integration tests.
    Small,
    /// ~1/10 — local benches (default for the harness binaries).
    Medium,
    /// Paper size. Heavy: `tweet` at full scale is a 10M-node graph.
    Full,
}

impl Scale {
    /// The multiplicative node-count factor.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 1e-3,
            Scale::Small => 1e-2,
            Scale::Medium => 1e-1,
            Scale::Full => 1.0,
        }
    }

    /// Parses the conventional harness argument (`tiny|small|medium|full`).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// A generated dataset: graph, topic table, and provenance metadata.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (`lastfm`/`dblp`/`tweet`).
    pub name: &'static str,
    /// The social graph.
    pub graph: DiGraph,
    /// The `p(e|z)` table.
    pub table: EdgeTopicProbs,
    /// Number of topics |Z| (also `table.topic_count()`).
    pub topics: usize,
    /// The scale it was generated at.
    pub scale: Scale,
    /// Generation seed (determinism handle).
    pub seed: u64,
}

impl Dataset {
    /// Graph statistics (Table III row).
    pub fn stats(&self) -> stats::GraphStats {
        stats::graph_stats(&self.graph)
    }

    /// Average non-zero topic entries per edge.
    pub fn avg_topic_support(&self) -> f64 {
        self.table.avg_support()
    }
}

fn scaled(n_full: usize, scale: Scale, min: usize) -> u32 {
    ((n_full as f64 * scale.factor()).round() as usize).max(min) as u32
}

/// `lastfm` stand-in: 1.3K nodes / 15K edges / 20 topics at full scale.
///
/// Social music-sharing network: moderately dense power-law graph; the
/// paper learns its probabilities from action logs via TIC — pair this
/// with [`crate::actionlog::simulate_logs`] +
/// `oipa_topics::tic::learn_edge_probs` to exercise that pipeline, or use
/// the synthesized table returned here directly.
pub fn lastfm_like(scale: Scale, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1a_5f);
    let n = scaled(1_300, scale, 120);
    let m = (n as f64 * 11.5) as usize; // ~15K edges at n = 1.3K
    let graph = generators::power_law_configuration(&mut rng, n, 2.4, 2.0, Some(m), None);
    let table = synthesize_random(
        &mut rng,
        &graph,
        SynthesisParams {
            topic_count: 20,
            avg_support: 2.5,
            max_prob: 1.0,
            weighted_cascade: true,
        },
    );
    Dataset {
        name: "lastfm",
        graph,
        table,
        topics: 20,
        scale,
        seed,
    }
}

/// `dblp` stand-in: 0.5M nodes / 6M edges / 9 topics at full scale.
///
/// Co-author graph: high average degree (11.9), few broad topics
/// (research fields), denser per-edge topic support than `tweet`.
pub fn dblp_like(scale: Scale, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdb_19);
    let n = scaled(500_000, scale, 400);
    let m = (n as f64 * 11.9) as usize;
    let graph = generators::power_law_configuration(&mut rng, n, 2.3, 3.0, Some(m), None);
    let table = synthesize_random(
        &mut rng,
        &graph,
        SynthesisParams {
            topic_count: 9,
            avg_support: 2.0,
            max_prob: 1.0,
            weighted_cascade: true,
        },
    );
    Dataset {
        name: "dblp",
        graph,
        table,
        topics: 9,
        scale,
        seed,
    }
}

/// `tweet` stand-in: 10M nodes / 12M edges / 50 topics at full scale.
///
/// Retweet/reply network: very sparse (avg degree 1.2) and — the property
/// §VI-D leans on — an average of only ≈1.5 non-zero `p(e|z)` entries per
/// edge across 50 topics, which starves single-piece baselines.
pub fn tweet_like(scale: Scale, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7e_e7);
    let n = scaled(10_000_000, scale, 800);
    let m = (n as f64 * 1.2) as usize;
    let graph = generators::power_law_configuration(&mut rng, n, 2.2, 1.0, Some(m), None);
    let table = synthesize_random(
        &mut rng,
        &graph,
        SynthesisParams {
            topic_count: 50,
            avg_support: 1.5,
            max_prob: 1.0,
            weighted_cascade: true,
        },
    );
    Dataset {
        name: "tweet",
        graph,
        table,
        topics: 50,
        scale,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lastfm_tiny_statistics() {
        let d = lastfm_like(Scale::Tiny, 1);
        let s = d.stats();
        assert!(s.nodes >= 100);
        assert!(
            (6.0..=12.0).contains(&s.avg_degree),
            "avg degree {} off-profile",
            s.avg_degree
        );
        assert_eq!(d.table.topic_count(), 20);
        d.table.check_against(&d.graph).unwrap();
    }

    #[test]
    fn tweet_tiny_sparsity_profile() {
        let d = tweet_like(Scale::Tiny, 1);
        let s = d.stats();
        assert!(
            s.avg_degree <= 2.0,
            "tweet must be sparse, got {}",
            s.avg_degree
        );
        let support = d.avg_topic_support();
        assert!(
            (1.1..=1.9).contains(&support),
            "avg topic support {support} far from the paper's 1.5"
        );
        assert_eq!(d.topics, 50);
    }

    #[test]
    fn dblp_tiny_statistics() {
        let d = dblp_like(Scale::Tiny, 1);
        let s = d.stats();
        assert!(
            (8.0..=13.0).contains(&s.avg_degree),
            "avg degree {} off-profile",
            s.avg_degree
        );
        assert_eq!(d.topics, 9);
    }

    #[test]
    fn scaling_changes_size_not_shape() {
        // lastfm is already tiny at full scale, so exercise scaling on dblp.
        let tiny = dblp_like(Scale::Tiny, 2);
        let small = dblp_like(Scale::Small, 2);
        assert!(small.stats().nodes > tiny.stats().nodes);
        let d_tiny = tiny.stats().avg_degree;
        let d_small = small.stats().avg_degree;
        assert!(
            (d_tiny - d_small).abs() < 4.0,
            "avg degree drifted: {d_tiny} vs {d_small}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = lastfm_like(Scale::Tiny, 9);
        let b = lastfm_like(Scale::Tiny, 9);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.table, b.table);
        let c = lastfm_like(Scale::Tiny, 10);
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn power_law_premise_holds() {
        // §V-C assumes 2 < α < 3 on influence. The configuration model
        // plants the power law on *out*-degrees (how many users a promoter
        // can push to), which is the influence proxy; in-degrees are
        // Poisson by construction.
        let d = dblp_like(Scale::Small, 3);
        let alpha = oipa_graph::stats::power_law_exponent_mle(
            d.graph.nodes().map(|v| d.graph.out_degree(v)),
            5,
        )
        .expect("enough high-degree nodes");
        assert!((1.8..=3.5).contains(&alpha), "exponent {alpha} implausible");
    }

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("FULL"), Some(Scale::Full));
        assert_eq!(Scale::parse("nope"), None);
    }
}
