//! Eviction-policy suite: a golden test pinning the LRU policy to the
//! pre-shard arena's exact eviction order, and a seeded zipfian property
//! test that LFU never evicts the most-frequently-used key.

use oipa_sampler::testkit::fig1;
use oipa_sampler::MrrPool;
use oipa_store::{EvictionPolicyKind, PoolKey, PoolStore};
use std::sync::Arc;

fn pool(theta: usize, seed: u64) -> Arc<MrrPool> {
    let (g, table, campaign) = fig1();
    Arc::new(MrrPool::generate(&g, &table, &campaign, theta, seed))
}

fn key(i: u64) -> PoolKey {
    PoolKey::sampled(format!("evict-{i}"), 400, i)
}

/// Golden: the LRU policy on a single shard must reproduce the exact
/// victim order of the pre-shard arena — least-recently-used first, with
/// a `get` refreshing recency. The fixed workload below evicted k1 then
/// k0 before the policy became pluggable; it must keep doing so.
#[test]
fn lru_reproduces_the_pre_shard_eviction_order() {
    let p = pool(400, 1);
    let bytes = p.memory_bytes();
    // Exactly three same-sized pools fit.
    let store = PoolStore::memory_only_with(3 * bytes, 1, EvictionPolicyKind::Lru);
    assert_eq!(store.policy_name(), "lru");

    store.insert(key(0), Arc::clone(&p)); // clock 1
    store.insert(key(1), Arc::clone(&p)); // clock 2
    store.insert(key(2), Arc::clone(&p)); // clock 3
    assert!(store.get(&key(0)).is_some()); // clock 4: k0 refreshed

    // Fourth insert exceeds the budget: the LRU entry is k1 (clock 2).
    store.insert(key(3), Arc::clone(&p));
    assert!(store.get(&key(1)).is_none(), "victim #1 must be k1 (LRU)");
    for k in [0, 2, 3] {
        assert!(store.get(&key(k)).is_some(), "k{k} evicted out of order");
    }

    // Refresh k2, insert again: the victim must now be k0 — its refresh
    // above is older than everyone else's stamp.
    assert!(store.get(&key(2)).is_some());
    store.insert(key(4), Arc::clone(&p));
    assert!(store.get(&key(0)).is_none(), "victim #2 must be k0");
    for k in [2, 3, 4] {
        assert!(store.get(&key(k)).is_some(), "k{k} evicted out of order");
    }

    let stats = store.arena_stats();
    assert_eq!(stats.evictions, 2, "exactly the two golden evictions");
    assert_eq!(stats.entries, 3);
}

/// The LRU golden order must hold regardless of how the arena is built:
/// the default construction and an explicit single-shard LRU store make
/// identical victim choices for an identical workload.
#[test]
fn default_store_is_single_shard_lru() {
    let p = pool(400, 2);
    let bytes = p.memory_bytes();
    let golden = PoolStore::memory_only_with(2 * bytes, 1, EvictionPolicyKind::Lru);
    let default = PoolStore::memory_only(2 * bytes);
    assert_eq!(default.shard_count(), golden.shard_count());
    assert_eq!(default.policy_name(), golden.policy_name());
    for store in [&golden, &default] {
        store.insert(key(10), Arc::clone(&p));
        store.insert(key(11), Arc::clone(&p));
        store.insert(key(12), Arc::clone(&p)); // evicts k10 on both
        assert!(store.get(&key(10)).is_none());
        assert!(store.get(&key(11)).is_some());
        assert!(store.get(&key(12)).is_some());
    }
}

/// Property (seeded loop over many zipfian workloads — the proptest shim
/// is macro-only, so the shrinking loop is hand-rolled): under an LFU
/// policy, the most-frequently-used key is **never** evicted, whatever
/// the interleaving of inserts and lookups the zipf draw produces.
#[test]
fn lfu_never_evicts_the_most_frequent_key_under_zipfian_load() {
    const KEYS: u64 = 8;
    const ROUNDS: usize = 160;

    let p = pool(300, 7);
    let bytes = p.memory_bytes();
    for seed in 0..6u64 {
        let store = PoolStore::memory_only_with(3 * bytes, 1, EvictionPolicyKind::Lfu);
        assert_eq!(store.policy_name(), "lfu");
        let hot = key(0);
        store.insert(hot.clone(), Arc::clone(&p));

        // Zipf-ish draw: key i with weight 1/(i+1), via a seeded LCG.
        let weights: Vec<u64> = (0..KEYS).map(|i| 840 / (i + 1)).collect();
        let total: u64 = weights.iter().sum();
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut draw = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut x = (state >> 33) % total;
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    return i as u64;
                }
                x -= w;
            }
            unreachable!("weights cover the draw range")
        };

        for round in 0..ROUNDS {
            let k = draw();
            // The hot key is touched every round on top of its draws, so
            // it is always the frequency maximum.
            assert!(
                store.get(&hot).is_some(),
                "seed {seed} round {round}: LFU evicted the most-frequent key"
            );
            if k == 0 {
                continue;
            }
            if store.get(&key(k)).is_none() {
                store.insert(key(k), Arc::clone(&p));
            }
        }
        assert!(
            store.get(&hot).is_some(),
            "seed {seed}: hot key lost by the end of the workload"
        );
        let stats = store.arena_stats();
        assert!(stats.evictions > 0, "seed {seed}: workload never evicted");
        assert_eq!(stats.lookups, stats.hits + stats.misses);
    }
}

/// LFU ties (equal use counts) break toward the least-recently-used
/// entry, so the policy degrades to LRU — not to arbitrary choice — on a
/// uniform workload.
#[test]
fn lfu_breaks_frequency_ties_by_recency() {
    let p = pool(300, 9);
    let bytes = p.memory_bytes();
    let store = PoolStore::memory_only_with(3 * bytes, 1, EvictionPolicyKind::Lfu);
    // Three entries, all with uses == 1.
    store.insert(key(20), Arc::clone(&p));
    store.insert(key(21), Arc::clone(&p));
    store.insert(key(22), Arc::clone(&p));
    // All tied on frequency: the oldest stamp (k20) is the victim.
    store.insert(key(23), Arc::clone(&p));
    assert!(store.get(&key(20)).is_none(), "tie must break to LRU");
    assert!(store.get(&key(21)).is_some());
}
