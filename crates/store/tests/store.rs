//! Acceptance suite for the tiered pool store.
//!
//! * **Golden parity** — a pool served cold (freshly sampled), from the
//!   memory tier, and from a reopened disk tier is bitwise-identical
//!   (fingerprint + roots + RR sets), so every downstream plan/utility
//!   is too.
//! * **Durability** — write-to-temp + atomic rename, manifest recovery,
//!   quarantine of corrupt and orphaned segments, instance purges.
//! * **Budgets** — LRU eviction on both tiers, spill-on-eviction,
//!   oversized pools served but never cached.

use oipa_sampler::testkit::fig1;
use oipa_sampler::MrrPool;
use oipa_store::{
    DiskTier, PoolKey, PoolStore, PoolTier, StoreConfig, MANIFEST_FILE, QUARANTINE_DIR,
};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("oipa-store-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pool(theta: usize, seed: u64) -> Arc<MrrPool> {
    let (g, table, campaign) = fig1();
    Arc::new(MrrPool::generate(&g, &table, &campaign, theta, seed))
}

fn key(theta: usize, seed: u64) -> PoolKey {
    PoolKey::sampled(format!("campaign-{seed}"), theta, seed)
}

fn config(dir: &PathBuf) -> StoreConfig {
    StoreConfig::new(dir)
}

fn assert_same_pool(a: &MrrPool, b: &MrrPool, label: &str) {
    assert_eq!(a.fingerprint(), b.fingerprint(), "{label}: fingerprints");
    assert_eq!(a.roots(), b.roots(), "{label}: roots");
    assert_eq!(a.theta(), b.theta(), "{label}: theta");
    for j in 0..a.ell() {
        for i in (0..a.theta()).step_by(97) {
            assert_eq!(a.rr_set(j, i), b.rr_set(j, i), "{label}: rr_set({j},{i})");
        }
    }
}

/// The PR's golden-parity gate: cold, mem-warm, and disk-warm (after a
/// simulated restart) must serve bitwise-identical pools.
#[test]
fn cold_mem_and_disk_paths_serve_identical_pools() {
    let dir = tmpdir("parity");
    let cold = pool(2_000, 11);
    let k = key(2_000, 11);

    let mut store = PoolStore::open(config(&dir)).unwrap();
    store.insert(k.clone(), Arc::clone(&cold));
    let (mem, tier) = store.get(&k).unwrap();
    assert_eq!(tier, PoolTier::Memory);
    assert_same_pool(&cold, &mem, "mem-warm");

    // "Restart": a fresh store over the same directory has an empty
    // memory tier; the pool must come back from disk, checksum-verified.
    drop(store);
    let mut reopened = PoolStore::open(config(&dir)).unwrap();
    let (disk, tier) = reopened.get(&k).unwrap();
    assert_eq!(tier, PoolTier::Disk);
    assert_same_pool(&cold, &disk, "disk-warm");

    // The disk hit promoted the pool: next lookup is memory-tier.
    let (_, tier) = reopened.get(&k).unwrap();
    assert_eq!(tier, PoolTier::Memory);
}

#[test]
fn arena_miss_consults_disk_before_resampling() {
    let dir = tmpdir("tiered-lookup");
    let mut store = PoolStore::open(config(&dir)).unwrap();
    let p = pool(800, 3);
    store.insert(key(800, 3), Arc::clone(&p));
    store.clear_memory();
    assert_eq!(store.arena_stats().entries, 0);
    let (got, tier) = store.get(&key(800, 3)).unwrap();
    assert_eq!(tier, PoolTier::Disk);
    assert_eq!(got.fingerprint(), p.fingerprint());
    let stats = store.stats();
    let disk = stats.disk.expect("disk tier attached");
    assert_eq!(disk.hits, 1);
}

#[test]
fn memory_eviction_spills_to_disk() {
    let dir = tmpdir("spill");
    let bytes = pool(600, 0).memory_bytes();
    let mut cfg = config(&dir);
    cfg.mem_bytes = Some(2 * bytes + 8);
    cfg.write_through = false; // force the spill path to do the persisting
    let mut store = PoolStore::open(cfg).unwrap();
    for s in 0..3u64 {
        store.insert(key(600, s), pool(600, s));
    }
    // Three inserts under a two-pool budget: the LRU entry spilled.
    let stats = store.stats();
    assert_eq!(stats.mem.entries, 2);
    assert_eq!(stats.mem.evictions, 1);
    let disk = stats.disk.unwrap();
    assert_eq!(disk.entries, 1, "evicted pool must land on disk");
    assert_eq!(disk.spills, 1);
    // And it is servable again — from disk, not by resampling.
    let (got, tier) = store.get(&key(600, 0)).unwrap();
    assert_eq!(tier, PoolTier::Disk);
    assert_eq!(got.fingerprint(), pool(600, 0).fingerprint());
}

#[test]
fn oversized_pool_is_served_but_never_cached_in_memory() {
    let dir = tmpdir("oversized");
    let mut cfg = config(&dir);
    cfg.mem_bytes = Some(16); // smaller than any real pool
    let mut store = PoolStore::open(cfg).unwrap();
    let big = pool(1_500, 9);
    store.insert(key(1_500, 9), Arc::clone(&big));
    assert_eq!(
        store.arena_stats().entries,
        0,
        "oversized pools must not occupy the memory tier"
    );
    // Still served — from the disk tier (write-through persisted it).
    let (got, tier) = store.get(&key(1_500, 9)).unwrap();
    assert_eq!(tier, PoolTier::Disk);
    assert_eq!(got.fingerprint(), big.fingerprint());
    // The disk hit must not have force-promoted it into memory either.
    assert_eq!(store.arena_stats().entries, 0);
}

#[test]
fn disk_budget_evicts_lru_segments() {
    let dir = tmpdir("disk-budget");
    let seg_bytes = {
        // Measure one segment's size by writing it through a probe store.
        let probe = tmpdir("disk-budget-probe");
        let mut store = PoolStore::open(config(&probe)).unwrap();
        store.insert(key(500, 0), pool(500, 0));
        store.disk().unwrap().entries()[0].bytes
    };
    let mut cfg = config(&dir);
    cfg.mem_bytes = Some(0); // pass-through memory tier
    cfg.disk_bytes = 2 * seg_bytes + 8;
    let mut store = PoolStore::open(cfg).unwrap();
    for s in 0..3u64 {
        store.insert(key(500, s), pool(500, s));
    }
    let disk = store.stats().disk.unwrap();
    assert_eq!(disk.entries, 2, "budget holds two segments");
    assert_eq!(disk.evictions, 1);
    // Seed 0 was least recently used; 1 and 2 survive.
    assert!(store.get(&key(500, 0)).is_none());
    assert!(store.get(&key(500, 1)).is_some());
    assert!(store.get(&key(500, 2)).is_some());
}

#[test]
fn corrupt_segment_is_quarantined_not_served() {
    let dir = tmpdir("corrupt");
    let mut store = PoolStore::open(config(&dir)).unwrap();
    let p = pool(700, 5);
    store.insert(key(700, 5), Arc::clone(&p));
    let file = store.disk().unwrap().entries()[0].file.clone();
    drop(store);

    // Flip one payload byte. The size is unchanged, so only the CRC (or
    // a structural check) can catch it.
    let path = dir.join(&file);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let mut reopened = PoolStore::open(config(&dir)).unwrap();
    // verify flags it…
    let verdict = reopened.disk().unwrap().verify();
    assert_eq!(verdict.ok.len(), 0);
    assert_eq!(verdict.corrupt.len(), 1, "{verdict:?}");
    // …and a lookup refuses to serve it, quarantining the segment.
    assert!(reopened.get(&key(700, 5)).is_none());
    let disk = reopened.stats().disk.unwrap();
    assert_eq!(disk.corrupt_dropped, 1);
    assert_eq!(disk.entries, 0);
    assert!(
        dir.join(QUARANTINE_DIR).join(&file).exists(),
        "corrupt segment must be moved to quarantine, not deleted"
    );
}

#[test]
fn gc_quarantines_corruption_and_orphans() {
    let dir = tmpdir("gc");
    let mut store = PoolStore::open(config(&dir)).unwrap();
    for s in 0..3u64 {
        store.insert(key(400, s), pool(400, s));
    }
    let files: Vec<String> = store
        .disk()
        .unwrap()
        .entries()
        .iter()
        .map(|e| e.file.clone())
        .collect();
    drop(store);

    // Corrupt one segment, delete another, drop an orphan next to them.
    let mut bytes = std::fs::read(dir.join(&files[0])).unwrap();
    let len = bytes.len();
    bytes[len / 3] ^= 0xFF;
    std::fs::write(dir.join(&files[0]), &bytes).unwrap();
    std::fs::remove_file(dir.join(&files[1])).unwrap();
    std::fs::write(dir.join("pool-feedfacedeadbeef.mrr"), b"not a pool").unwrap();

    // Reopen raw (DiskTier, no budget pressure): the orphan and the
    // missing entry are handled at open, the corrupt one by gc.
    let mut tier = DiskTier::open(&dir, u64::MAX).unwrap();
    let report = tier.open_report();
    assert_eq!(report.dropped_missing, 1);
    assert_eq!(report.quarantined, 1, "orphan quarantined at open");

    let gc = tier.gc().unwrap();
    assert_eq!(gc.quarantined, vec![files[0].clone()]);
    assert_eq!(gc.kept, 1);
    assert!(gc.reclaimed_bytes > 0);
    // After gc, verify is clean.
    let verdict = tier.verify();
    assert_eq!(verdict.corrupt.len(), 0, "{verdict:?}");
    assert_eq!(verdict.ok.len(), 1);
}

#[test]
fn corrupt_manifest_is_recovered_not_fatal() {
    let dir = tmpdir("bad-manifest");
    let mut store = PoolStore::open(config(&dir)).unwrap();
    store.insert(key(300, 1), pool(300, 1));
    drop(store);
    std::fs::write(dir.join(MANIFEST_FILE), b"{ not json").unwrap();

    let reopened = PoolStore::open(config(&dir)).unwrap();
    let report = reopened.disk().unwrap().open_report();
    assert!(report.corrupt_manifest);
    // Without a manifest the segment's key is unknowable: it must be
    // quarantined, not guessed at.
    assert_eq!(report.quarantined, 1);
    assert_eq!(reopened.disk().unwrap().entries().len(), 0);
}

#[test]
fn stale_temp_files_are_swept_at_open() {
    let dir = tmpdir("stale-temp");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(".tmp-pool-0123456789abcdef.mrr"), b"torn write").unwrap();
    let store = PoolStore::open(config(&dir)).unwrap();
    assert_eq!(store.disk().unwrap().open_report().stale_temps, 1);
    assert!(!dir.join(".tmp-pool-0123456789abcdef.mrr").exists());
}

#[test]
fn instance_mismatch_purges_the_tier() {
    let dir = tmpdir("instance");
    let mut store = PoolStore::open(config(&dir)).unwrap();
    store.set_instance(0xAAAA).unwrap();
    store.insert(key(300, 2), pool(300, 2));
    assert_eq!(store.disk().unwrap().entries().len(), 1);

    // Same instance: nothing happens, entries survive a reopen.
    let mut reopened = PoolStore::open(config(&dir)).unwrap();
    assert!(!reopened.set_instance(0xAAAA).unwrap());
    assert_eq!(reopened.disk().unwrap().entries().len(), 1);

    // Different instance (a different graph/table): everything goes.
    assert!(reopened.set_instance(0xBBBB).unwrap());
    assert_eq!(reopened.disk().unwrap().entries().len(), 0);
    assert!(reopened.get(&key(300, 2)).is_none());
}

#[test]
fn recency_survives_restart() {
    let dir = tmpdir("recency");
    let mut cfg = config(&dir);
    cfg.mem_bytes = Some(0);
    let mut store = PoolStore::open(cfg.clone()).unwrap();
    for s in 0..3u64 {
        store.insert(key(350, s), pool(350, s));
    }
    // Touch seed 0 so seed 1 becomes the disk LRU victim.
    assert!(store.get(&key(350, 0)).is_some());
    drop(store);

    // Reopen with a budget of two segments: the eviction at open must
    // honor the persisted recency, dropping seed 1.
    let seg = DiskTier::open(&dir, u64::MAX).unwrap().entries()[0].bytes;
    cfg.disk_bytes = 2 * seg + 8;
    let mut store = PoolStore::open(cfg).unwrap();
    assert!(store.get(&key(350, 1)).is_none(), "LRU victim");
    assert!(store.get(&key(350, 0)).is_some());
    assert!(store.get(&key(350, 2)).is_some());
}
