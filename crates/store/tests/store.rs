//! Acceptance suite for the tiered pool store.
//!
//! * **Golden parity** — a pool served cold (freshly sampled), from the
//!   memory tier, and from a reopened disk tier is bitwise-identical
//!   (fingerprint + roots + RR sets), so every downstream plan/utility
//!   is too.
//! * **Durability** — write-to-temp + atomic rename, manifest recovery,
//!   quarantine of corrupt and orphaned segments, instance purges.
//! * **Budgets** — LRU eviction on both tiers, spill-on-eviction,
//!   oversized pools served but never cached.

use oipa_sampler::testkit::fig1;
use oipa_sampler::MrrPool;
use oipa_store::{
    DiskTier, PoolKey, PoolStore, PoolTier, StoreConfig, MANIFEST_FILE, QUARANTINE_DIR,
};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("oipa-store-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pool(theta: usize, seed: u64) -> Arc<MrrPool> {
    let (g, table, campaign) = fig1();
    Arc::new(MrrPool::generate(&g, &table, &campaign, theta, seed))
}

fn key(theta: usize, seed: u64) -> PoolKey {
    PoolKey::sampled(format!("campaign-{seed}"), theta, seed)
}

fn config(dir: &PathBuf) -> StoreConfig {
    StoreConfig::new(dir)
}

fn assert_same_pool(a: &MrrPool, b: &MrrPool, label: &str) {
    assert_eq!(a.fingerprint(), b.fingerprint(), "{label}: fingerprints");
    assert_eq!(a.roots(), b.roots(), "{label}: roots");
    assert_eq!(a.theta(), b.theta(), "{label}: theta");
    for j in 0..a.ell() {
        for i in (0..a.theta()).step_by(97) {
            assert_eq!(a.rr_set(j, i), b.rr_set(j, i), "{label}: rr_set({j},{i})");
        }
    }
}

/// The PR's golden-parity gate: cold, mem-warm, and disk-warm (after a
/// simulated restart) must serve bitwise-identical pools.
#[test]
fn cold_mem_and_disk_paths_serve_identical_pools() {
    let dir = tmpdir("parity");
    let cold = pool(2_000, 11);
    let k = key(2_000, 11);

    let store = PoolStore::open(config(&dir)).unwrap();
    store.insert(k.clone(), Arc::clone(&cold));
    let (mem, tier) = store.get(&k).unwrap();
    assert_eq!(tier, PoolTier::Memory);
    assert_same_pool(&cold, &mem, "mem-warm");

    // "Restart": a fresh store over the same directory has an empty
    // memory tier; the pool must come back from disk, checksum-verified.
    drop(store);
    let reopened = PoolStore::open(config(&dir)).unwrap();
    let (disk, tier) = reopened.get(&k).unwrap();
    assert_eq!(tier, PoolTier::Disk);
    assert_same_pool(&cold, &disk, "disk-warm");

    // The disk hit promoted the pool: next lookup is memory-tier.
    let (_, tier) = reopened.get(&k).unwrap();
    assert_eq!(tier, PoolTier::Memory);
}

#[test]
fn arena_miss_consults_disk_before_resampling() {
    let dir = tmpdir("tiered-lookup");
    let store = PoolStore::open(config(&dir)).unwrap();
    let p = pool(800, 3);
    store.insert(key(800, 3), Arc::clone(&p));
    store.clear_memory();
    assert_eq!(store.arena_stats().entries, 0);
    let (got, tier) = store.get(&key(800, 3)).unwrap();
    assert_eq!(tier, PoolTier::Disk);
    assert_eq!(got.fingerprint(), p.fingerprint());
    let stats = store.stats();
    let disk = stats.disk.expect("disk tier attached");
    assert_eq!(disk.hits, 1);
}

#[test]
fn memory_eviction_spills_to_disk() {
    let dir = tmpdir("spill");
    let bytes = pool(600, 0).memory_bytes();
    let mut cfg = config(&dir);
    cfg.mem_bytes = Some(2 * bytes + 8);
    cfg.write_through = false; // force the spill path to do the persisting
    let store = PoolStore::open(cfg).unwrap();
    for s in 0..3u64 {
        store.insert(key(600, s), pool(600, s));
    }
    // Three inserts under a two-pool budget: the LRU entry spilled.
    let stats = store.stats();
    assert_eq!(stats.mem.entries, 2);
    assert_eq!(stats.mem.evictions, 1);
    let disk = stats.disk.unwrap();
    assert_eq!(disk.entries, 1, "evicted pool must land on disk");
    assert_eq!(disk.spills, 1);
    // And it is servable again — from disk, not by resampling.
    let (got, tier) = store.get(&key(600, 0)).unwrap();
    assert_eq!(tier, PoolTier::Disk);
    assert_eq!(got.fingerprint(), pool(600, 0).fingerprint());
}

#[test]
fn oversized_pool_is_served_but_never_cached_in_memory() {
    let dir = tmpdir("oversized");
    let mut cfg = config(&dir);
    cfg.mem_bytes = Some(16); // smaller than any real pool
    let store = PoolStore::open(cfg).unwrap();
    let big = pool(1_500, 9);
    store.insert(key(1_500, 9), Arc::clone(&big));
    assert_eq!(
        store.arena_stats().entries,
        0,
        "oversized pools must not occupy the memory tier"
    );
    // Still served — from the disk tier (write-through persisted it).
    let (got, tier) = store.get(&key(1_500, 9)).unwrap();
    assert_eq!(tier, PoolTier::Disk);
    assert_eq!(got.fingerprint(), big.fingerprint());
    // The disk hit must not have force-promoted it into memory either.
    assert_eq!(store.arena_stats().entries, 0);
}

#[test]
fn disk_budget_evicts_lru_segments() {
    let dir = tmpdir("disk-budget");
    let seg_bytes = {
        // Measure one segment's size by writing it through a probe store.
        let probe = tmpdir("disk-budget-probe");
        let store = PoolStore::open(config(&probe)).unwrap();
        store.insert(key(500, 0), pool(500, 0));
        let bytes = store.disk().unwrap().entries()[0].bytes;
        bytes
    };
    let mut cfg = config(&dir);
    cfg.mem_bytes = Some(0); // pass-through memory tier
    cfg.disk_bytes = 2 * seg_bytes + 8;
    let store = PoolStore::open(cfg).unwrap();
    for s in 0..3u64 {
        store.insert(key(500, s), pool(500, s));
    }
    let disk = store.stats().disk.unwrap();
    assert_eq!(disk.entries, 2, "budget holds two segments");
    assert_eq!(disk.evictions, 1);
    // Seed 0 was least recently used; 1 and 2 survive.
    assert!(store.get(&key(500, 0)).is_none());
    assert!(store.get(&key(500, 1)).is_some());
    assert!(store.get(&key(500, 2)).is_some());
}

#[test]
fn corrupt_segment_is_quarantined_not_served() {
    let dir = tmpdir("corrupt");
    let store = PoolStore::open(config(&dir)).unwrap();
    let p = pool(700, 5);
    store.insert(key(700, 5), Arc::clone(&p));
    let file = store.disk().unwrap().entries()[0].file.clone();
    drop(store);

    // Flip one payload byte. The size is unchanged, so only the CRC (or
    // a structural check) can catch it.
    let path = dir.join(&file);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let reopened = PoolStore::open(config(&dir)).unwrap();
    // verify flags it…
    let verdict = reopened.disk().unwrap().verify();
    assert_eq!(verdict.ok.len(), 0);
    assert_eq!(verdict.corrupt.len(), 1, "{verdict:?}");
    // …and a lookup refuses to serve it, quarantining the segment.
    assert!(reopened.get(&key(700, 5)).is_none());
    let disk = reopened.stats().disk.unwrap();
    assert_eq!(disk.corrupt_dropped, 1);
    assert_eq!(disk.entries, 0);
    assert!(
        dir.join(QUARANTINE_DIR).join(&file).exists(),
        "corrupt segment must be moved to quarantine, not deleted"
    );
}

#[test]
fn gc_quarantines_corruption_and_orphans() {
    let dir = tmpdir("gc");
    // One-byte regions: a region's first entry always fits, so every
    // pool packs into a region of its own and corrupting/removing one
    // file touches exactly one pool.
    let mut cfg = config(&dir);
    cfg.region_bytes = 1;
    let store = PoolStore::open(cfg).unwrap();
    for s in 0..3u64 {
        store.insert(key(400, s), pool(400, s));
    }
    let files: Vec<String> = store
        .disk()
        .unwrap()
        .entries()
        .iter()
        .map(|e| e.file.clone())
        .collect();
    assert_eq!(
        store.disk().unwrap().regions().len(),
        3,
        "tiny region capacity must give one region per pool"
    );
    drop(store);

    // Corrupt one region, delete another, drop an orphan next to them.
    let mut bytes = std::fs::read(dir.join(&files[0])).unwrap();
    let len = bytes.len();
    bytes[len / 3] ^= 0xFF;
    std::fs::write(dir.join(&files[0]), &bytes).unwrap();
    std::fs::remove_file(dir.join(&files[1])).unwrap();
    std::fs::write(dir.join("pool-feedfacedeadbeef.mrr"), b"not a pool").unwrap();

    // Reopen raw (DiskTier, no budget pressure): the orphan and the
    // missing entry are handled at open, the corrupt one by gc.
    let mut tier = DiskTier::open(&dir, u64::MAX).unwrap();
    let report = tier.open_report();
    assert_eq!(report.dropped_missing, 1);
    assert_eq!(report.quarantined, 1, "orphan quarantined at open");

    let gc = tier.gc().unwrap();
    assert_eq!(gc.quarantined, vec![files[0].clone()]);
    assert_eq!(gc.kept, 1);
    assert!(gc.reclaimed_bytes > 0);
    // Per-region accounting: every committed byte of the corrupt region
    // was reclaimed (nothing live could be copied out of it).
    assert_eq!(gc.region_reclaimed.len(), 1, "{gc:?}");
    assert_eq!(gc.region_reclaimed[0].0, files[0]);
    assert!(gc.region_reclaimed[0].1 > 0);
    // After gc, verify is clean.
    let verdict = tier.verify();
    assert_eq!(verdict.corrupt.len(), 0, "{verdict:?}");
    assert_eq!(verdict.ok.len(), 1);
}

#[test]
fn corrupt_manifest_is_recovered_not_fatal() {
    let dir = tmpdir("bad-manifest");
    let store = PoolStore::open(config(&dir)).unwrap();
    store.insert(key(300, 1), pool(300, 1));
    drop(store);
    std::fs::write(dir.join(MANIFEST_FILE), b"{ not json").unwrap();

    let reopened = PoolStore::open(config(&dir)).unwrap();
    let report = reopened.disk().unwrap().open_report();
    assert!(report.corrupt_manifest);
    // Without a manifest the segment's key is unknowable: it must be
    // quarantined, not guessed at.
    assert_eq!(report.quarantined, 1);
    assert_eq!(reopened.disk().unwrap().entries().len(), 0);
}

#[test]
fn stale_temp_files_are_swept_at_open() {
    let dir = tmpdir("stale-temp");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(".tmp-pool-0123456789abcdef.mrr"), b"torn write").unwrap();
    let store = PoolStore::open(config(&dir)).unwrap();
    assert_eq!(store.disk().unwrap().open_report().stale_temps, 1);
    assert!(!dir.join(".tmp-pool-0123456789abcdef.mrr").exists());
}

#[test]
fn instance_mismatch_purges_the_tier() {
    let dir = tmpdir("instance");
    let store = PoolStore::open(config(&dir)).unwrap();
    store.set_instance(0xAAAA).unwrap();
    store.insert(key(300, 2), pool(300, 2));
    assert_eq!(store.disk().unwrap().entries().len(), 1);

    // Same instance: nothing happens, entries survive a reopen.
    let reopened = PoolStore::open(config(&dir)).unwrap();
    assert!(!reopened.set_instance(0xAAAA).unwrap());
    assert_eq!(reopened.disk().unwrap().entries().len(), 1);

    // Different instance (a different graph/table): everything goes.
    assert!(reopened.set_instance(0xBBBB).unwrap());
    assert_eq!(reopened.disk().unwrap().entries().len(), 0);
    assert!(reopened.get(&key(300, 2)).is_none());
}

#[test]
fn recency_survives_restart() {
    let dir = tmpdir("recency");
    let mut cfg = config(&dir);
    cfg.mem_bytes = Some(0);
    let store = PoolStore::open(cfg.clone()).unwrap();
    for s in 0..3u64 {
        store.insert(key(350, s), pool(350, s));
    }
    // Touch seed 0 so seed 1 becomes the disk LRU victim.
    assert!(store.get(&key(350, 0)).is_some());
    drop(store);

    // Reopen with a budget of two segments: the eviction at open must
    // honor the persisted recency, dropping seed 1.
    let seg = DiskTier::open(&dir, u64::MAX).unwrap().entries()[0].bytes;
    cfg.disk_bytes = 2 * seg + 8;
    let store = PoolStore::open(cfg).unwrap();
    assert!(store.get(&key(350, 1)).is_none(), "LRU victim");
    assert!(store.get(&key(350, 0)).is_some());
    assert!(store.get(&key(350, 2)).is_some());
}

/// The PR-5 manifest bugfix: a read-only burst of N disk gets must not
/// rewrite `index.json` N times. Recency is batched in memory (dirty
/// flag) and flushed at most once — by the next write, an explicit
/// `flush`, or drop.
#[test]
fn read_burst_performs_at_most_one_manifest_write() {
    let dir = tmpdir("manifest-batching");
    let mut tier = DiskTier::open(&dir, u64::MAX).unwrap();
    let p = pool(400, 6);
    tier.put(&key(400, 6), &p);
    let writes_after_put = tier.manifest_writes();
    let manifest_after_put = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();

    // The burst: 25 reads, zero manifest writes.
    for _ in 0..25 {
        assert!(tier.get(&key(400, 6)).is_some());
    }
    assert_eq!(
        tier.manifest_writes(),
        writes_after_put,
        "disk gets must not rewrite the manifest per read"
    );
    assert_eq!(
        std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap(),
        manifest_after_put,
        "the on-disk manifest must be untouched during a read burst"
    );

    // One flush persists the whole burst's recency in a single write.
    tier.flush().unwrap();
    assert_eq!(tier.manifest_writes(), writes_after_put + 1);
    assert_ne!(
        std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap(),
        manifest_after_put,
        "flush must persist the batched recency stamps"
    );
    // Flushing with nothing pending is free.
    tier.flush().unwrap();
    assert_eq!(tier.manifest_writes(), writes_after_put + 1);
}

/// Batched recency still reaches disk without an explicit flush: drop
/// writes it, so a restart honors read-burst LRU order.
#[test]
fn batched_recency_is_flushed_on_drop() {
    let dir = tmpdir("recency-on-drop");
    let mut tier = DiskTier::open(&dir, u64::MAX).unwrap();
    for s in 0..2u64 {
        tier.put(&key(450, s), &pool(450, s));
    }
    // Touch seed 0 (read-only: batched, not persisted) then drop.
    assert!(tier.get(&key(450, 0)).is_some());
    drop(tier);

    let reopened = DiskTier::open(&dir, u64::MAX).unwrap();
    let stamp = |s: u64| {
        reopened
            .entries()
            .iter()
            .find(|e| e.key == key(450, s))
            .unwrap()
            .last_used
    };
    assert!(
        stamp(0) > stamp(1),
        "the read-burst touch must survive the restart via the drop flush"
    );
}

/// The PR-5 pin bugfix at store level: an insert over a pinned key keeps
/// the pin, so byte pressure afterwards cannot evict the injected pool.
#[test]
fn pinned_pool_survives_replace_and_pressure() {
    let dir = tmpdir("pinned-replace");
    let pinned = pool(500, 21);
    let bytes = pinned.memory_bytes();
    let pinned_key = key(500, 21);
    let mut cfg = config(&dir);
    cfg.mem_bytes = Some(bytes + 8); // room for the pinned pool alone
    let store = PoolStore::open(cfg).unwrap();
    store.insert_pinned(pinned_key.clone(), Arc::clone(&pinned));
    // The regression: a plain insert over the pinned key used to strip
    // the pin, making the injected pool evictable.
    store.insert(pinned_key.clone(), Arc::clone(&pinned));
    // Byte pressure from sampled pools.
    for s in 30..33u64 {
        store.insert(key(500, s), pool(500, s));
    }
    let (got, tier) = store
        .get(&pinned_key)
        .expect("pinned pool evicted after a same-key replace");
    assert_eq!(tier, PoolTier::Memory, "pinned pools are memory-resident");
    assert_eq!(got.fingerprint(), pinned.fingerprint());
}

/// The PR-5 stats bugfix at store level: a same-key replace counts as an
/// eviction and the displaced pool is spilled (a disk touch), so
/// `ArenaStats`/`DiskStats` stay accurate in a tiered store.
#[test]
fn replace_is_counted_and_spilled_in_a_tiered_store() {
    let dir = tmpdir("replace-accounting");
    let mut cfg = config(&dir);
    cfg.write_through = false; // only the spill path writes to disk
    let store = PoolStore::open(cfg).unwrap();
    let p = pool(420, 8);
    let k = key(420, 8);
    store.insert(k.clone(), Arc::clone(&p));
    let before = store.stats();
    assert_eq!(before.mem.evictions, 0);
    assert_eq!(before.disk.unwrap().entries, 0, "write-through disabled");

    store.insert(k.clone(), Arc::clone(&p));
    let after = store.stats();
    assert_eq!(after.mem.entries, 1, "replace must not duplicate the key");
    assert_eq!(
        after.mem.evictions, 1,
        "the displaced pool must be counted as an eviction"
    );
    assert_eq!(
        after.mem.bytes,
        p.memory_bytes(),
        "replace must not double-count resident bytes"
    );
    let disk = after.disk.unwrap();
    assert_eq!(
        disk.entries, 1,
        "the displaced pool must spill to disk, not vanish"
    );
}

/// A displaced *pinned* pool must not leak to the disk tier: pinned
/// pools are memory-only (the caller owns their persistence), so a
/// same-key insert over one neither spills it nor counts an eviction.
#[test]
fn replaced_pinned_pool_is_not_spilled_to_disk() {
    let dir = tmpdir("pinned-no-spill");
    let mut cfg = config(&dir);
    cfg.write_through = false; // only displaced entries would reach disk
    let store = PoolStore::open(cfg).unwrap();
    let injected = pool(430, 12);
    let k = key(430, 12);
    store.insert_pinned(k.clone(), Arc::clone(&injected));
    store.insert(k.clone(), Arc::clone(&injected));
    let stats = store.stats();
    assert_eq!(
        stats.disk.unwrap().entries,
        0,
        "a pinned pool leaked to the disk tier via the replace path"
    );
    assert_eq!(
        stats.mem.evictions, 0,
        "replacing a pinned entry is not an eviction — the pin keeps it resident"
    );
    assert!(store.get(&k).is_some());
}

/// The `StatsSnapshot` wire type round-trips through JSON bitwise: it is
/// the contract between the server's `/stats` endpoint and every client
/// (`oipa-cli bench serve` included), so serialization must lose nothing
/// — counters, occupancy, the optional disk half, and the schema tag.
#[test]
fn stats_snapshot_round_trips_through_json() {
    use oipa_store::{StatsSnapshot, STATS_SCHEMA};

    let dir = tmpdir("stats-snapshot");
    let store = PoolStore::open(config(&dir)).unwrap();
    store.insert(key(410, 31), pool(410, 31));
    assert!(store.get(&key(410, 31)).is_some()); // a hit
    assert!(store.get(&key(411, 32)).is_none()); // a miss on both tiers

    let snapshot = StatsSnapshot::from(store.stats());
    assert!(snapshot.schema_ok());
    assert_eq!(snapshot.schema, STATS_SCHEMA);
    assert_eq!(
        snapshot.mem.lookups,
        snapshot.mem.hits + snapshot.mem.misses
    );
    let disk = snapshot.disk.expect("tiered store has a disk half");
    assert_eq!(disk.spills, 1, "write-through insert persists the segment");

    let json = serde_json::to_string(&snapshot).unwrap();
    let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snapshot, "snapshot must survive the wire bitwise");

    // A memory-only snapshot round-trips its absent disk half too.
    let mem_only = StatsSnapshot::from(PoolStore::memory_only(1 << 20).stats());
    assert!(mem_only.disk.is_none());
    let back: StatsSnapshot =
        serde_json::from_str(&serde_json::to_string(&mem_only).unwrap()).unwrap();
    assert_eq!(back, mem_only);

    // A foreign schema tag is detectable before anyone trusts the counters.
    let mut foreign = snapshot.clone();
    foreign.schema = "oipa.stats/v0".to_string();
    assert!(!foreign.schema_ok());
}
