//! Acceptance suite for epoch-lineage invalidation (the surgical-
//! invalidation PR):
//!
//! * a **descendant** lineage marks cached pools stale-but-repairable —
//!   they stop serving but stay retrievable (with their epoch) through
//!   `get_any`, and a same-key re-insert rewrites the payload at the
//!   new epoch;
//! * a **non-lineage** fingerprint purges the tier — quarantined, never
//!   served — and leaves a persisted purge record;
//! * a **v2** store directory (single instance fingerprint, no epochs)
//!   still opens and serves, upgraded in place to a one-entry lineage.

use oipa_sampler::testkit::fig1;
use oipa_sampler::MrrPool;
use oipa_store::{DiskTier, PoolKey, PoolStore, PoolTier, StoreConfig, MANIFEST_FILE};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("oipa-lineage-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pool(theta: usize, seed: u64) -> Arc<MrrPool> {
    let (g, table, campaign) = fig1();
    Arc::new(MrrPool::generate(&g, &table, &campaign, theta, seed))
}

fn key(theta: usize, seed: u64) -> PoolKey {
    PoolKey::sampled(format!("campaign-{seed}"), theta, seed)
}

const ROOT: u64 = 0xA11CE;
const HEAD: u64 = 0xB0B0B;

/// The tentpole behavior: advancing the lineage by one epoch (a graph
/// delta) must not purge — pools go stale, repairable, and a same-key
/// write at the new epoch replaces the payload on disk.
#[test]
fn descendant_epoch_marks_stale_and_rewrites_in_place() {
    let dir = tmpdir("descendant");
    let store = PoolStore::open(StoreConfig::new(&dir)).unwrap();
    store.set_lineage(&[ROOT]).unwrap();
    let old = pool(400, 7);
    store.insert(key(400, 7), Arc::clone(&old));
    assert!(store.get(&key(400, 7)).is_some());

    // One delta: [ROOT] → [ROOT, HEAD]. No purge.
    assert!(!store.set_lineage(&[ROOT, HEAD]).unwrap());
    assert_eq!(store.current_epoch(), 1);
    assert!(
        store.get(&key(400, 7)).is_none(),
        "stale pools must never serve"
    );
    let stats = store.stats();
    assert_eq!(stats.mem.stale, 1, "memory copy is stale, not gone");
    let disk = stats.disk.unwrap();
    assert_eq!(disk.entries, 1, "disk copy is stale, not purged");
    assert_eq!(disk.stale_entries, 1);
    assert_eq!(disk.purges, 0);

    // The repair path sees the stale pool with its stamped epoch.
    let (got, epoch, tier) = store.get_any(&key(400, 7)).expect("repairable");
    assert_eq!(epoch, 0);
    assert_eq!(tier, PoolTier::Memory);
    assert_eq!(got.fingerprint(), old.fingerprint());

    // Re-inserting under the same key (what repair does) lands at epoch
    // 1 and replaces the disk payload: same key, new bytes, servable.
    let repaired = pool(400, 8); // stands in for the repaired pool
    store.insert(key(400, 7), Arc::clone(&repaired));
    let (served, tier) = store.get(&key(400, 7)).unwrap();
    assert_eq!(tier, PoolTier::Memory);
    assert_eq!(served.fingerprint(), repaired.fingerprint());
    let disk = store.stats().disk.unwrap();
    assert_eq!(disk.entries, 1, "rewrite, not a second entry");
    assert_eq!(disk.stale_entries, 0);
    assert!(disk.dead_bytes > 0, "the stale payload went dead, not live");

    // A restart serves the repaired payload from disk at the head epoch.
    drop(store);
    let reopened = PoolStore::open(StoreConfig::new(&dir)).unwrap();
    assert_eq!(reopened.lineage(), vec![ROOT, HEAD]);
    let (back, tier) = reopened.get(&key(400, 7)).unwrap();
    assert_eq!(tier, PoolTier::Disk);
    assert_eq!(back.fingerprint(), repaired.fingerprint());
    let disk = reopened.disk().unwrap();
    assert_eq!(disk.entries()[0].epoch, 1);
}

/// Stale ancestors survive many epochs and a restart: a pool stamped at
/// epoch 0 is still `get_any`-repairable three deltas later.
#[test]
fn ancestors_stay_repairable_across_epochs_and_restarts() {
    let dir = tmpdir("ancestors");
    let store = PoolStore::open(StoreConfig::new(&dir)).unwrap();
    store.set_lineage(&[ROOT]).unwrap();
    let old = pool(350, 3);
    store.insert(key(350, 3), Arc::clone(&old));
    store.set_lineage(&[ROOT, 2, 3, 4]).unwrap();
    drop(store);

    let reopened = PoolStore::open(StoreConfig::new(&dir)).unwrap();
    assert_eq!(reopened.current_epoch(), 3);
    assert!(reopened.get(&key(350, 3)).is_none());
    let (got, epoch, tier) = reopened.get_any(&key(350, 3)).expect("still repairable");
    assert_eq!(epoch, 0);
    assert_eq!(tier, PoolTier::Disk);
    assert_eq!(got.fingerprint(), old.fingerprint());
}

/// A lineage whose root does not match purges the tier (pools sampled
/// from unrelated inputs are never served *or repaired*), and the purge
/// is recorded — surviving a reopen.
#[test]
fn foreign_root_purges_and_records_it() {
    let dir = tmpdir("foreign-root");
    let store = PoolStore::open(StoreConfig::new(&dir)).unwrap();
    store.set_lineage(&[ROOT, HEAD]).unwrap();
    store.insert(key(300, 1), pool(300, 1));
    store.insert(key(300, 2), pool(300, 2));

    assert!(store.set_lineage(&[0xDEAD, 0xBEEF]).unwrap());
    assert!(store.get(&key(300, 1)).is_none());
    assert!(store.get_any(&key(300, 1)).is_none(), "not even repairable");
    let disk = store.stats().disk.unwrap();
    assert_eq!(disk.entries, 0);
    assert_eq!(disk.purges, 1);
    let record = disk.last_purge.expect("purge recorded");
    assert_eq!(record.from, HEAD);
    assert_eq!(record.to, 0xBEEF);
    assert_eq!(record.entries, 2);

    drop(store);
    let reopened = PoolStore::open(StoreConfig::new(&dir)).unwrap();
    let disk = reopened.stats().disk.unwrap();
    assert_eq!(disk.purges, 1, "purge count survives a reopen");
    assert_eq!(disk.last_purge, Some(record));
    assert_eq!(reopened.lineage(), vec![0xDEAD, 0xBEEF]);
}

/// A cold restart rolls the lineage back to its root (in-memory deltas
/// are gone): epoch-0 pools revive, post-delta pools on the abandoned
/// tail are dropped — surgically, not via a whole-tier purge.
#[test]
fn root_reload_revives_epoch_zero_and_drops_the_tail() {
    let dir = tmpdir("rollback");
    let store = PoolStore::open(StoreConfig::new(&dir)).unwrap();
    store.set_lineage(&[ROOT]).unwrap();
    let original = pool(320, 5);
    store.insert(key(320, 5), Arc::clone(&original));
    store.set_lineage(&[ROOT, HEAD]).unwrap();
    store.insert(key(320, 6), pool(320, 6)); // lands at epoch 1

    // The service restarts, reloads the original inputs, and announces a
    // root-only lineage.
    assert!(!store.set_instance(ROOT).unwrap(), "shared root: no purge");
    let (got, tier) = store.get(&key(320, 5)).expect("epoch-0 pool revived");
    assert_eq!(tier, PoolTier::Memory);
    assert_eq!(got.fingerprint(), original.fingerprint());
    assert!(
        store.get_any(&key(320, 6)).is_none(),
        "abandoned-tail pool dropped"
    );
    let disk = store.stats().disk.unwrap();
    assert_eq!(disk.entries, 1);
    assert_eq!(disk.stale_dropped, 1);
    assert_eq!(disk.purges, 0);
}

/// Backwards compatibility: a v2 store directory (one instance
/// fingerprint, no epochs) opens as a one-entry lineage with every pool
/// at epoch 0 — still served, nothing quarantined.
#[test]
fn v2_manifest_opens_and_serves() {
    let dir = tmpdir("v2-compat");
    let store = PoolStore::open(StoreConfig::new(&dir)).unwrap();
    store.set_instance(ROOT).unwrap();
    let p = pool(500, 9);
    store.insert(key(500, 9), Arc::clone(&p));
    drop(store);

    // Rewrite the manifest in the v2 schema, from the v3 tier's own
    // rows (same region file, same offsets — only the metadata shape
    // differs).
    let (entry, region) = {
        let tier = DiskTier::open(&dir, u64::MAX).unwrap();
        (tier.entries()[0].clone(), tier.regions()[0].clone())
    };
    let k = key(500, 9);
    let v2 = format!(
        concat!(
            "{{\"version\":2,\"instance\":{},\"clock\":5,\"eviction\":\"lru\",",
            "\"regions\":[{{\"file\":\"{}\",\"committed\":{},\"last_used\":1}}],",
            "\"entries\":[{{\"key\":{{\"campaign\":\"{}\",\"theta\":{},\"seed\":{}}},",
            "\"file\":\"{}\",\"offset\":{},\"bytes\":{},\"crc\":{},\"last_used\":1}}]}}"
        ),
        ROOT,
        region.file,
        region.committed,
        k.campaign(),
        k.theta(),
        k.seed(),
        entry.file,
        entry.offset,
        entry.bytes,
        entry.crc,
    );
    std::fs::write(dir.join(MANIFEST_FILE), v2).unwrap();

    let reopened = PoolStore::open(StoreConfig::new(&dir)).unwrap();
    let report = reopened.disk().unwrap().open_report();
    assert!(!report.corrupt_manifest, "v2 is upgraded, not quarantined");
    assert_eq!(report.quarantined, 0);
    assert_eq!(reopened.lineage(), vec![ROOT]);
    assert_eq!(reopened.current_epoch(), 0);
    let (back, tier) = reopened.get(&k).expect("v2 pool still serves");
    assert_eq!(tier, PoolTier::Disk);
    assert_eq!(back.fingerprint(), p.fingerprint());
    let disk = reopened.disk().unwrap();
    assert_eq!(disk.entries()[0].epoch, 0);
    drop(disk);

    // And the same instance fingerprint keeps matching post-upgrade.
    assert!(!reopened.set_instance(ROOT).unwrap());
}

/// Memory-only stores honor the same lineage discipline: stale on
/// descendants, dropped on foreign roots — with no disk tier involved.
#[test]
fn memory_only_store_tracks_lineage_too() {
    let store = PoolStore::memory_only(usize::MAX);
    store.set_lineage(&[ROOT]).unwrap();
    store.insert(key(300, 4), pool(300, 4));

    store.set_lineage(&[ROOT, HEAD]).unwrap();
    assert!(store.get(&key(300, 4)).is_none());
    let (_, epoch, tier) = store.get_any(&key(300, 4)).expect("stale, repairable");
    assert_eq!(epoch, 0);
    assert_eq!(tier, PoolTier::Memory);

    assert!(
        store.set_lineage(&[0xF00D]).unwrap(),
        "foreign root purges the memory tier"
    );
    assert!(store.get_any(&key(300, 4)).is_none());
    assert_eq!(store.stats().mem.entries, 0);
}
