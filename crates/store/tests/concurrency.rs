//! Concurrency suite for the tiered pool store: M threads × K operations
//! over shared keys must leave the store with internally consistent
//! stats (`lookups == hits + misses`, no lost counter updates), serve
//! bitwise-identical pools on every path, and never evict a pinned pool
//! no matter how the interleaving lands.

use oipa_sampler::testkit::fig1;
use oipa_sampler::MrrPool;
use oipa_store::{EvictionPolicyKind, PoolKey, PoolStore, PoolTier, StoreConfig};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("oipa-store-conc").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pool(theta: usize, seed: u64) -> Arc<MrrPool> {
    let (g, table, campaign) = fig1();
    Arc::new(MrrPool::generate(&g, &table, &campaign, theta, seed))
}

fn key(seed: u64) -> PoolKey {
    PoolKey::sampled(format!("conc-{seed}"), 400, seed)
}

/// M reader threads over shared keys: every hit must return the right
/// pool, and the atomic counters must not lose a single update.
#[test]
fn concurrent_reads_are_consistent_and_lossless() {
    const THREADS: usize = 8;
    const KEYS: u64 = 4;
    const ROUNDS: usize = 50;

    let store = Arc::new(PoolStore::memory_only(usize::MAX));
    let pools: Vec<Arc<MrrPool>> = (0..KEYS).map(|s| pool(400, s)).collect();
    for (s, p) in pools.iter().enumerate() {
        store.insert(key(s as u64), Arc::clone(p));
    }
    let barrier = Arc::new(Barrier::new(THREADS));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            let pools = &pools;
            scope.spawn(move || {
                barrier.wait();
                for r in 0..ROUNDS {
                    // Each thread walks the keys in its own order, plus a
                    // guaranteed-miss probe every round.
                    let s = ((t + r) % KEYS as usize) as u64;
                    let (got, tier) = store.get(&key(s)).expect("resident key");
                    assert_eq!(tier, PoolTier::Memory);
                    assert_eq!(got.fingerprint(), pools[s as usize].fingerprint());
                    assert!(store.get(&key(1000 + s)).is_none(), "phantom key served");
                }
            });
        }
    });

    let stats = store.arena_stats();
    let expected_lookups = (THREADS * ROUNDS * 2) as u64;
    assert_eq!(stats.lookups, expected_lookups, "lost lookup updates");
    assert_eq!(stats.hits, (THREADS * ROUNDS) as u64, "lost hit updates");
    assert_eq!(stats.misses, (THREADS * ROUNDS) as u64, "lost miss updates");
    assert_eq!(
        stats.lookups,
        stats.hits + stats.misses,
        "stats must stay internally consistent under concurrency"
    );
    assert_eq!(stats.entries, KEYS as usize);
}

/// Mixed readers and writers racing on overlapping keys: no panics, no
/// lost counters, and every key that was ever inserted serves its exact
/// pool afterwards.
#[test]
fn concurrent_inserts_and_reads_do_not_corrupt_the_arena() {
    const THREADS: usize = 6;
    const KEYS: u64 = 5;
    const ROUNDS: usize = 30;

    let store = Arc::new(PoolStore::memory_only(usize::MAX));
    let pools: Vec<Arc<MrrPool>> = (0..KEYS).map(|s| pool(300, s)).collect();
    let barrier = Arc::new(Barrier::new(THREADS));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            let pools = &pools;
            scope.spawn(move || {
                barrier.wait();
                for r in 0..ROUNDS {
                    let s = ((t * 7 + r) % KEYS as usize) as u64;
                    if (t + r) % 3 == 0 {
                        // Writers re-insert over live keys (the replace
                        // path) while readers scan them.
                        store.insert(key(s), Arc::clone(&pools[s as usize]));
                    } else if let Some((got, _)) = store.get(&key(s)) {
                        assert_eq!(
                            got.fingerprint(),
                            pools[s as usize].fingerprint(),
                            "a lookup returned the wrong pool for its key"
                        );
                    }
                }
            });
        }
    });

    let stats = store.arena_stats();
    assert_eq!(stats.lookups, stats.hits + stats.misses);
    assert_eq!(stats.entries, KEYS as usize);
    assert_eq!(stats.bytes, pools.iter().map(|p| p.memory_bytes()).sum());
    // Every key serves its exact pool once the dust settles.
    for s in 0..KEYS {
        let (got, _) = store.get(&key(s)).expect("inserted key lost");
        assert_eq!(got.fingerprint(), pools[s as usize].fingerprint());
    }
}

/// A pinned pool must survive concurrent byte pressure AND concurrent
/// same-key re-inserts (the PR-5 pin regression, raced).
#[test]
fn pinned_pool_survives_concurrent_pressure_and_replaces() {
    const THREADS: usize = 6;
    const ROUNDS: usize = 20;

    let pinned = pool(400, 99);
    let bytes = pinned.memory_bytes();
    let pinned_key = PoolKey::external("session-default", &pinned);
    let store = Arc::new(PoolStore::memory_only(2 * bytes + 8));
    store.insert_pinned(pinned_key.clone(), Arc::clone(&pinned));
    let barrier = Arc::new(Barrier::new(THREADS));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            let pinned = Arc::clone(&pinned);
            let pinned_key = pinned_key.clone();
            scope.spawn(move || {
                barrier.wait();
                for r in 0..ROUNDS {
                    if t == 0 {
                        // One thread keeps re-inserting over the pinned
                        // key (the pin must survive every replace).
                        store.insert(pinned_key.clone(), Arc::clone(&pinned));
                    } else {
                        // The rest churn sampled pools through the tight
                        // budget, forcing evictions every round.
                        let s = (t * ROUNDS + r) as u64;
                        store.insert(key(s), pool(400, s));
                    }
                    assert!(
                        store.get(&pinned_key).is_some(),
                        "pinned pool evicted under concurrent pressure"
                    );
                }
            });
        }
    });

    let (got, _) = store.get(&pinned_key).expect("pinned pool lost");
    assert_eq!(got.fingerprint(), pinned.fingerprint());
}

/// The lossless-counter invariant must survive lock striping: the same
/// read race as above, at every shard count the config surface allows,
/// with keys spread across (and colliding within) the stripes.
#[test]
fn sharded_reads_keep_counters_lossless_at_any_stripe_count() {
    const THREADS: usize = 8;
    const KEYS: u64 = 12;
    const ROUNDS: usize = 40;

    for (shards, policy) in [
        (1, EvictionPolicyKind::Lru),
        (4, EvictionPolicyKind::Lru),
        (16, EvictionPolicyKind::Lfu),
    ] {
        let store = Arc::new(PoolStore::memory_only_with(usize::MAX, shards, policy));
        assert_eq!(store.shard_count(), shards);
        let pools: Vec<Arc<MrrPool>> = (0..KEYS).map(|s| pool(300, s)).collect();
        for (s, p) in pools.iter().enumerate() {
            store.insert(key(s as u64), Arc::clone(p));
        }
        // The key set must actually exercise more than one stripe when
        // more than one exists.
        if shards > 1 {
            let hit: std::collections::HashSet<usize> =
                (0..KEYS).map(|s| store.shard_of(&key(s))).collect();
            assert!(hit.len() > 1, "{shards} shards: keys all on one stripe");
        }
        let barrier = Arc::new(Barrier::new(THREADS));

        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let store = Arc::clone(&store);
                let barrier = Arc::clone(&barrier);
                let pools = &pools;
                scope.spawn(move || {
                    barrier.wait();
                    for r in 0..ROUNDS {
                        let s = ((t + r) % KEYS as usize) as u64;
                        let (got, tier) = store.get(&key(s)).expect("resident key");
                        assert_eq!(tier, PoolTier::Memory);
                        assert_eq!(got.fingerprint(), pools[s as usize].fingerprint());
                        assert!(store.get(&key(1000 + s)).is_none(), "phantom key");
                    }
                });
            }
        });

        let stats = store.arena_stats();
        assert_eq!(
            stats.lookups,
            (THREADS * ROUNDS * 2) as u64,
            "{shards} shards: lost lookups"
        );
        assert_eq!(stats.hits, (THREADS * ROUNDS) as u64, "{shards} shards");
        assert_eq!(stats.misses, (THREADS * ROUNDS) as u64, "{shards} shards");
        assert_eq!(
            stats.lookups,
            stats.hits + stats.misses,
            "{shards} shards: aggregation must be lossless"
        );
        assert_eq!(stats.entries, KEYS as usize);
        // The per-shard view sums exactly to the aggregate.
        let shard_stats = store.shard_stats();
        assert_eq!(shard_stats.len(), shards);
        assert_eq!(
            shard_stats.iter().map(|s| s.lookups).sum::<u64>(),
            stats.lookups
        );
        assert_eq!(
            shard_stats.iter().map(|s| s.entries).sum::<usize>(),
            stats.entries
        );
    }
}

/// Mixed inserts and reads racing across stripes: no lost counters, no
/// wrong pools, every inserted key served afterwards — at 16 shards.
#[test]
fn sharded_inserts_and_reads_do_not_corrupt_the_striped_arena() {
    const THREADS: usize = 6;
    const KEYS: u64 = 10;
    const ROUNDS: usize = 30;

    let store = Arc::new(PoolStore::memory_only_with(
        usize::MAX,
        16,
        EvictionPolicyKind::Lru,
    ));
    let pools: Vec<Arc<MrrPool>> = (0..KEYS).map(|s| pool(300, s)).collect();
    let barrier = Arc::new(Barrier::new(THREADS));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            let pools = &pools;
            scope.spawn(move || {
                barrier.wait();
                for r in 0..ROUNDS {
                    let s = ((t * 7 + r) % KEYS as usize) as u64;
                    if (t + r) % 3 == 0 {
                        store.insert(key(s), Arc::clone(&pools[s as usize]));
                    } else if let Some((got, _)) = store.get(&key(s)) {
                        assert_eq!(
                            got.fingerprint(),
                            pools[s as usize].fingerprint(),
                            "wrong pool under striping"
                        );
                    }
                }
            });
        }
    });

    let stats = store.arena_stats();
    assert_eq!(stats.lookups, stats.hits + stats.misses);
    assert_eq!(stats.entries, KEYS as usize);
    assert_eq!(stats.bytes, pools.iter().map(|p| p.memory_bytes()).sum());
    for s in 0..KEYS {
        let (got, _) = store.get(&key(s)).expect("inserted key lost");
        assert_eq!(got.fingerprint(), pools[s as usize].fingerprint());
    }
}

/// Concurrent misses promoting the same disk segment: every thread gets
/// the identical pool, and the arena never holds duplicate entries.
#[test]
fn concurrent_disk_promotions_serve_one_pool() {
    const THREADS: usize = 6;

    let dir = tmpdir("promote-race");
    let p = pool(500, 3);
    let store = PoolStore::open(StoreConfig::new(&dir)).unwrap();
    store.insert(key(3), Arc::clone(&p));
    drop(store); // flush to disk

    let reopened = Arc::new(PoolStore::open(StoreConfig::new(&dir)).unwrap());
    let barrier = Arc::new(Barrier::new(THREADS));
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let store = Arc::clone(&reopened);
            let barrier = Arc::clone(&barrier);
            let expected = p.fingerprint();
            scope.spawn(move || {
                barrier.wait();
                let (got, _) = store.get(&key(3)).expect("persisted pool lost");
                assert_eq!(got.fingerprint(), expected);
            });
        }
    });
    let stats = reopened.stats();
    assert_eq!(stats.mem.entries, 1, "duplicate arena entries after race");
    assert_eq!(stats.mem.lookups, stats.mem.hits + stats.mem.misses);
    // Post-race lookups are memory hits.
    let (_, tier) = reopened.get(&key(3)).unwrap();
    assert_eq!(tier, PoolTier::Memory);
}
