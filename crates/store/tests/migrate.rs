//! Transparent v1 → v2 migration: a store directory written by the
//! file-per-key (v1) tier must open into the region-packed (v2) layout
//! on first open — every committed pool served bitwise-identically,
//! sources removed only after the v2 manifest commits, and nothing lost
//! even when the repack itself runs on a failing disk.

use oipa_sampler::testkit::fig1;
use oipa_sampler::MrrPool;
use oipa_store::io::{FaultIo, FaultSchedule};
use oipa_store::{DiskTier, PoolKey, QUARANTINE_DIR, REGION_PREFIX};
use std::path::{Path, PathBuf};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("oipa-migrate-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A v1 fixture directory: one `pool-*.mrr` segment per key plus the v1
/// `index.json` the old tier wrote, built by hand so the test does not
/// depend on any v1 writer surviving in the codebase.
fn v1_fixture(dir: &Path, thetas: &[usize]) -> Vec<(PoolKey, MrrPool, String)> {
    let (g, table, campaign) = fig1();
    let mut out = Vec::new();
    let mut entries = Vec::new();
    for (i, &theta) in thetas.iter().enumerate() {
        let pool = MrrPool::generate(&g, &table, &campaign, theta, i as u64 + 1);
        let mut buf = Vec::new();
        oipa_sampler::binio::write_pool(&pool, &mut buf).unwrap();
        let crc = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
        let file = format!("pool-{:016x}.mrr", i + 1);
        std::fs::write(dir.join(&file), &buf).unwrap();
        let key = PoolKey::sampled(format!("migrate-{i}"), theta, i as u64 + 1);
        entries.push(format!(
            r#"{{"key":{},"file":"{file}","bytes":{},"crc":{crc},"last_used":{}}}"#,
            serde_json::to_string(&key).unwrap(),
            buf.len(),
            i + 1
        ));
        out.push((key, pool, file));
    }
    let manifest = format!(
        r#"{{"version":1,"instance":0,"clock":9,"entries":[{}]}}"#,
        entries.join(",")
    );
    std::fs::write(dir.join("index.json"), manifest).unwrap();
    out
}

#[test]
fn v1_directory_repacks_into_regions_on_first_open() {
    let dir = tmpdir("repack");
    let fixture = v1_fixture(&dir, &[140, 170, 200]);

    let mut tier = DiskTier::open(&dir, u64::MAX).expect("v1 dir must open");
    let report = tier.open_report();
    assert_eq!(report.migrated, 3, "every v1 segment repacks");
    assert_eq!(report.quarantined, 0);
    assert!(tier.health().is_healthy());

    // All pools land in one default-capacity region, served bitwise.
    assert_eq!(tier.regions().len(), 1);
    assert!(tier.regions()[0].file.starts_with(REGION_PREFIX));
    for (key, pool, source) in &fixture {
        let got = tier.get(key).expect("migrated pool must be served");
        assert_eq!(got.fingerprint(), pool.fingerprint(), "{key:?} changed");
        assert!(
            !dir.join(source).exists(),
            "{source} must be removed once the v2 manifest committed"
        );
    }
    assert!(tier.verify().corrupt.is_empty());
    drop(tier);

    // Restart: the migrated directory is now a plain v2 store.
    let mut reopened = DiskTier::open(&dir, u64::MAX).unwrap();
    assert_eq!(reopened.open_report().migrated, 0, "migration runs once");
    for (key, pool, _) in &fixture {
        let got = reopened.get(key).expect("pool lost across restart");
        assert_eq!(got.fingerprint(), pool.fingerprint());
    }
}

/// A disk that refuses the very first repack append must not cost the
/// pool: the v1 segment is indexed **in place** as a one-entry region,
/// and every other pool still repacks normally.
#[test]
fn migration_never_loses_a_committed_pool_to_a_failing_append() {
    let dir = tmpdir("failing-append");
    let fixture = v1_fixture(&dir, &[140, 170, 200]);

    // Write op #0 during this open is the first pool's region append.
    let schedule = FaultSchedule::parse("write:eio=0").unwrap();
    let io = FaultIo::over_real(schedule);
    let tier = DiskTier::open_with(&dir, u64::MAX, 1, io).expect("open must not fail");
    assert_eq!(tier.open_report().migrated, 3, "no pool may be dropped");
    assert!(
        !tier.health().is_healthy(),
        "a failed repack append must degrade, not pass silently"
    );

    // Pool 0 is indexed **in place** from its original segment. The
    // degraded tier short-circuits lookups (that is its contract), so
    // durability is checked against the index here and against `get`
    // after the healthy reopen below.
    let (_, _, source0) = &fixture[0];
    assert!(dir.join(source0).exists(), "in-place region file kept");
    assert!(
        tier.regions().iter().any(|r| &r.file == source0),
        "the v1 segment must be indexed as its own region"
    );
    for (key, _, _) in &fixture {
        assert!(
            tier.entries().iter().any(|e| &e.key == key),
            "{key:?} dropped from the migrated index"
        );
    }
    drop(tier);

    // A later healthy open serves everything and stays verify-clean.
    let mut healthy = DiskTier::open(&dir, u64::MAX).unwrap();
    for (key, pool, _) in &fixture {
        let got = healthy.get(key).expect("pool lost after recovery");
        assert_eq!(got.fingerprint(), pool.fingerprint());
    }
    assert!(healthy.verify().corrupt.is_empty());
}

/// A corrupt v1 segment is quarantined during migration — never indexed,
/// never served, never silently deleted.
#[test]
fn corrupt_v1_segment_is_quarantined_during_migration() {
    let dir = tmpdir("corrupt-v1");
    let fixture = v1_fixture(&dir, &[140, 170]);

    // Flip one payload byte of the first segment.
    let path = dir.join(&fixture[0].2);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let mut tier = DiskTier::open(&dir, u64::MAX).unwrap();
    let report = tier.open_report();
    assert_eq!(report.migrated, 1, "only the intact segment migrates");
    assert_eq!(report.quarantined, 1, "the corrupt one is set aside");
    assert!(tier.get(&fixture[0].0).is_none(), "corruption served");
    let got = tier.get(&fixture[1].0).expect("intact pool must survive");
    assert_eq!(got.fingerprint(), fixture[1].1.fingerprint());
    assert!(
        dir.join(QUARANTINE_DIR).join(&fixture[0].2).exists(),
        "quarantine must preserve the corrupt bytes"
    );
}
