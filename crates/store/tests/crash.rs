//! The crash-point matrix: for **every** mutating I/O operation along a
//! fixed put/get/flush/evict/gc workload, simulate a `kill -9` at that
//! operation (the op is applied torn, everything after fails), then
//! reopen the directory with a clean filesystem and check the recovery
//! invariants:
//!
//! * reopening never panics and never fails;
//! * `verify()` is clean — no corrupt entry is ever indexed;
//! * every pool the reopened tier serves is bitwise-identical to its
//!   source (no torn segment survives);
//! * the reopened index only contains keys that were **committed**
//!   (a manifest rename succeeded with that key in it) — an unacked put
//!   can vanish or be quarantined, never be served;
//! * a committed key missing after reopen is explained: the crashed run
//!   had already evicted/dropped it from its live index (budget policy),
//!   or its file was swept into `quarantine/` — never silent loss;
//! * the books balance: indexed bytes equal the sum over entries, every
//!   region file's length equals its committed watermark, and every
//!   entry lies wholly below its region's watermark;
//! * no stale `.tmp-*` files survive the reopen.
//!
//! The torn-write prefixes are seeded; set `OIPA_FAULT_SEED` to replay a
//! failure (the seed is printed in every assertion message). CI runs the
//! fixed default seed plus one randomized-seed smoke.

use oipa_sampler::testkit::fig1;
use oipa_sampler::MrrPool;
use oipa_store::io::{FaultIo, FaultSchedule};
use oipa_store::{DiskTier, PoolKey, QUARANTINE_DIR};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("oipa-crash-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fault_seed() -> u64 {
    std::env::var("OIPA_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

/// The fixed corpus the workload runs over: four pools of different
/// sizes plus their exact segment byte sizes.
struct Corpus {
    pools: Vec<(PoolKey, MrrPool)>,
    segment_bytes: Vec<u64>,
}

fn corpus() -> Corpus {
    let (g, table, campaign) = fig1();
    let mut pools = Vec::new();
    let mut segment_bytes = Vec::new();
    for (i, theta) in [140usize, 170, 200, 230].into_iter().enumerate() {
        let pool = MrrPool::generate(&g, &table, &campaign, theta, i as u64 + 1);
        let mut buf = Vec::new();
        let _ = oipa_sampler::binio::write_pool(&pool, &mut buf).unwrap();
        segment_bytes.push(buf.len() as u64);
        pools.push((
            PoolKey::sampled(format!("crash-{i}"), theta, i as u64 + 1),
            pool,
        ));
    }
    Corpus {
        pools,
        segment_bytes,
    }
}

/// What one crashed (or fault-free) workload run leaves behind for the
/// invariant checks.
struct RunRecord {
    /// Keys in the index at the last successful manifest commit — what
    /// the on-disk `index.json` is promised to hold.
    committed: HashSet<PoolKey>,
    /// Keys in the tier's live in-memory index at the end of the run
    /// (post-crash): a committed key absent from here was evicted or
    /// dropped on purpose before the crash.
    live_at_end: HashSet<PoolKey>,
    /// Keys whose `put` was acked at least once.
    acked: HashSet<PoolKey>,
}

/// Runs the fixed workload over `io` against `dir`. The workload drives
/// every mutating path: open-recovery persist, put (write/sync/rename +
/// manifest commit), recency get + flush, budget eviction (remove), gc,
/// and the drop-flush.
fn run_workload(io: std::sync::Arc<FaultIo>, dir: &PathBuf, corpus: &Corpus) -> RunRecord {
    // Budget: the three largest segments fit, all four do not — the
    // fourth put must evict the LRU entry.
    let total: u64 = corpus.segment_bytes.iter().sum();
    let min = *corpus.segment_bytes.iter().min().unwrap();
    let budget = total - min;

    let mut record = RunRecord {
        committed: HashSet::new(),
        live_at_end: HashSet::new(),
        acked: HashSet::new(),
    };
    let mut tier = match DiskTier::open_with_io(dir, budget, io) {
        Ok(tier) => tier,
        Err(_) => return record, // crash during open: nothing committed
    };
    let mut commits = 0;
    let note_commit = |tier: &DiskTier, commits: &mut u64, record: &mut RunRecord| {
        let writes = tier.stats().manifest_writes;
        if writes > *commits {
            *commits = writes;
            record.committed = tier.entries().iter().map(|e| e.key.clone()).collect();
        }
    };
    note_commit(&tier, &mut commits, &mut record);

    // Three puts fill the tier to its budget.
    for (key, pool) in corpus.pools.iter().take(3) {
        if tier.put(key, pool) {
            record.acked.insert(key.clone());
        }
        note_commit(&tier, &mut commits, &mut record);
    }
    // Touch pool 0 (batched recency) and checkpoint it.
    let _ = tier.get(&corpus.pools[0].0);
    let _ = tier.flush();
    note_commit(&tier, &mut commits, &mut record);
    // The fourth put exceeds the budget: the LRU entry (pool 1) goes.
    let (key3, pool3) = &corpus.pools[3];
    if tier.put(key3, pool3) {
        record.acked.insert(key3.clone());
    }
    note_commit(&tier, &mut commits, &mut record);
    // A repair pass and one more recency touch for the drop-flush.
    let _ = tier.gc();
    note_commit(&tier, &mut commits, &mut record);
    let _ = tier.get(&corpus.pools[2].0);

    record.live_at_end = tier.entries().iter().map(|e| e.key.clone()).collect();
    drop(tier); // drop-flush: the final mutating op under test
    record
}

/// Reopens `dir` with a clean filesystem and asserts every recovery
/// invariant against the crashed run's record.
fn assert_recovered(dir: &PathBuf, corpus: &Corpus, record: &RunRecord, label: &str) {
    let budget: u64 = corpus.segment_bytes.iter().sum();
    let mut tier = DiskTier::open(dir, budget)
        .unwrap_or_else(|e| panic!("{label}: reopen must never fail: {e}"));
    assert!(
        tier.health().is_healthy(),
        "{label}: a clean-filesystem reopen starts healthy"
    );

    // No corrupt entry indexed.
    let verdict = tier.verify();
    assert!(
        verdict.corrupt.is_empty(),
        "{label}: reopen indexed corrupt segments: {:?}",
        verdict.corrupt
    );

    // Books balance: indexed bytes equal the sum over entries, every
    // region file's length equals its committed watermark (recovery
    // truncated any torn tail), and every entry lies wholly below it.
    let sum: u64 = tier.entries().iter().map(|e| e.bytes).sum();
    assert_eq!(tier.bytes(), sum, "{label}: indexed_bytes drifted");
    for region in tier.regions() {
        let len = std::fs::metadata(dir.join(&region.file))
            .unwrap_or_else(|e| panic!("{label}: {} unreadable: {e}", region.file))
            .len();
        assert_eq!(
            len, region.committed,
            "{label}: {} length differs from its committed watermark",
            region.file
        );
    }
    for entry in tier.entries() {
        let region = tier
            .regions()
            .iter()
            .find(|r| r.file == entry.file)
            .unwrap_or_else(|| panic!("{label}: entry in {} has no region row", entry.file));
        assert!(
            entry.offset + entry.bytes <= region.committed,
            "{label}: entry {}@{} overruns the committed watermark {}",
            entry.file,
            entry.offset,
            region.committed
        );
    }

    // Only committed keys are served, each bitwise-identical.
    let by_key: HashMap<&PoolKey, &MrrPool> = corpus.pools.iter().map(|(k, p)| (k, p)).collect();
    let reopened: HashSet<PoolKey> = tier.entries().iter().map(|e| e.key.clone()).collect();
    for key in &reopened {
        assert!(
            record.committed.contains(key),
            "{label}: {key:?} served but never committed"
        );
        let source = by_key[key];
        let got = tier
            .get(key)
            .unwrap_or_else(|| panic!("{label}: indexed {key:?} must be servable"));
        assert_eq!(
            got.fingerprint(),
            source.fingerprint(),
            "{label}: {key:?} not bitwise-identical after recovery"
        );
    }

    // No acked-and-live write lost: a committed key the crashed run still
    // had in its live index must survive — unless recovery set its file
    // aside into quarantine/ (accounted, never silent).
    let report = tier.open_report();
    for key in record.committed.intersection(&record.live_at_end) {
        if !reopened.contains(key) {
            assert!(
                report.quarantined > 0 || report.dropped_missing > 0,
                "{label}: committed live key {key:?} vanished without accounting"
            );
        }
    }

    // Stale temps are swept.
    for name in std::fs::read_dir(dir).unwrap().flatten() {
        let name = name.file_name().to_string_lossy().into_owned();
        assert!(
            !name.starts_with(".tmp-"),
            "{label}: stale temp {name} survived reopen"
        );
    }
}

/// The matrix: a fault-free run sizes the schedule, then every mutating
/// operation index becomes one crash point.
#[test]
fn crash_point_matrix_recovers_at_every_point() {
    let seed = fault_seed();
    let corpus = corpus();

    // Pass 0: count the mutating operations of a fault-free run.
    let dir = tmpdir("matrix-count");
    let counter = FaultIo::over_real(FaultSchedule::none());
    let record = run_workload(std::sync::Arc::clone(&counter), &dir, &corpus);
    let mutations = counter.mutations();
    assert!(
        mutations >= 20,
        "the workload must exercise a real spread of crash points, got {mutations}"
    );
    // The fault-free run must ack everything and recover trivially.
    assert_eq!(record.acked.len(), 4, "fault-free run acks every put");
    assert_recovered(&dir, &corpus, &record, "fault-free");

    // The matrix proper.
    for point in 0..mutations {
        let label = format!("crash@{point} (OIPA_FAULT_SEED={seed})");
        let dir = tmpdir(&format!("matrix-{point}"));
        let io = FaultIo::over_real(FaultSchedule::crash_at(point, seed));
        let record = run_workload(std::sync::Arc::clone(&io), &dir, &corpus);
        assert!(io.crashed(), "{label}: the crash point must fire");
        assert_recovered(&dir, &corpus, &record, &label);
    }
}

/// The repair write-back crash matrix: a pool committed at epoch 0 is
/// surgically repaired after a one-epoch lineage advance, and the
/// process dies at every mutating I/O operation along the way. Whatever
/// the crash point, a clean reopen must serve only committed epochs —
/// the key either comes back stamped epoch 0 with the stale payload
/// (still repairable) or stamped at the head epoch with the repaired
/// payload, bitwise-identical to its source either way, never a torn
/// mix of the two.
#[test]
fn repair_write_back_crash_serves_only_committed_epochs() {
    use oipa_graph::{EdgeChange, GraphDelta, TopicProb};

    let seed = fault_seed();
    let (g, table, campaign) = fig1();
    let stale = MrrPool::generate(&g, &table, &campaign, 300, 11);
    let delta = GraphDelta {
        reweight: vec![
            EdgeChange {
                source: 4,
                target: 3,
                probs: vec![TopicProb {
                    topic: 1,
                    prob: 0.4,
                }],
            },
            EdgeChange {
                source: 3,
                target: 2,
                probs: vec![TopicProb {
                    topic: 1,
                    prob: 0.15,
                }],
            },
        ],
        ..GraphDelta::default()
    };
    let app = g.apply_delta(&delta).expect("fig1 edges exist");
    let post_table = table.apply_delta(&delta, &app).expect("rows remap");
    let (repaired, outcome) = stale
        .repaired(&app.graph, &post_table, &campaign, &app.dirty_targets, 11)
        .expect("repair runs");
    assert!(
        outcome.sets_resampled > 0,
        "the delta must dirty some walks"
    );
    assert_ne!(
        stale.fingerprint(),
        repaired.fingerprint(),
        "the delta must change the pool"
    );

    let key = PoolKey::sampled("repair-crash".to_string(), 300, 11);
    let (root, head) = (0xF1u64, 0xF2u64);
    let workload = |io: std::sync::Arc<FaultIo>, dir: &PathBuf| {
        let mut tier = match DiskTier::open_with_io(dir, 1 << 20, io) {
            Ok(tier) => tier,
            Err(_) => return,
        };
        let _ = tier.set_lineage(&[root]);
        let _ = tier.put(&key, &stale);
        let _ = tier.set_lineage(&[root, head]); // the delta: epoch 0 -> 1
        let _ = tier.put(&key, &repaired); // the repair write-back
    };

    // Pass 0: count the mutating operations and pin the fault-free end
    // state (repaired payload at the head epoch).
    let dir = tmpdir("repair-crash-count");
    let counter = FaultIo::over_real(FaultSchedule::none());
    workload(std::sync::Arc::clone(&counter), &dir);
    let mutations = counter.mutations();
    assert!(
        mutations >= 6,
        "the repair workload must hit several crash points, got {mutations}"
    );
    {
        let mut tier = DiskTier::open(&dir, 1 << 20).expect("fault-free reopen");
        assert_eq!(tier.lineage(), [root, head]);
        assert_eq!(tier.entries().len(), 1);
        assert_eq!(tier.entries()[0].epoch, 1);
        let got = tier.get(&key).expect("repaired payload served");
        assert_eq!(got.fingerprint(), repaired.fingerprint());
    }

    // The matrix proper.
    for point in 0..mutations {
        let label = format!("repair-crash@{point} (OIPA_FAULT_SEED={seed})");
        let dir = tmpdir(&format!("repair-crash-{point}"));
        let io = FaultIo::over_real(FaultSchedule::crash_at(point, seed));
        workload(std::sync::Arc::clone(&io), &dir);
        assert!(io.crashed(), "{label}: the crash point must fire");

        let mut tier = DiskTier::open(&dir, 1 << 20)
            .unwrap_or_else(|e| panic!("{label}: reopen must never fail: {e}"));
        let verdict = tier.verify();
        assert!(
            verdict.corrupt.is_empty(),
            "{label}: reopen indexed corrupt segments: {:?}",
            verdict.corrupt
        );
        let lineage = tier.lineage().to_vec();
        assert!(
            lineage.is_empty() || lineage == [root] || lineage == [root, head],
            "{label}: recovered lineage {lineage:?} was never committed"
        );
        let stamped: Vec<(PoolKey, u64)> = tier
            .entries()
            .iter()
            .map(|e| (e.key.clone(), e.epoch))
            .collect();
        for (entry_key, epoch) in stamped {
            assert_eq!(entry_key, key, "{label}: foreign key recovered");
            assert!(
                (epoch as usize) < lineage.len(),
                "{label}: entry stamped epoch {epoch} beyond the committed lineage {lineage:?}"
            );
            // A current-epoch entry serves; a stale ancestor misses on
            // the serving path but stays reachable for repair. Either
            // way the payload must be bitwise the pool of its epoch.
            let (got, got_epoch) = tier
                .get_any(&entry_key)
                .unwrap_or_else(|| panic!("{label}: indexed entry must be retrievable"));
            assert_eq!(got_epoch, epoch, "{label}: get_any epoch drifted");
            let want = match epoch {
                0 => stale.fingerprint(),
                1 => repaired.fingerprint(),
                other => panic!("{label}: impossible epoch {other}"),
            };
            assert_eq!(
                got.fingerprint(),
                want,
                "{label}: epoch-{epoch} payload is not bitwise the epoch-{epoch} pool"
            );
            if epoch as usize + 1 < lineage.len() {
                assert!(
                    tier.get(&entry_key).is_none(),
                    "{label}: a stale ancestor must not serve"
                );
            }
        }
    }
}

/// A crashed directory must also reopen cleanly when the *reopen itself*
/// runs over a still-broken disk: degraded, not failed, and fully
/// recovered on the next healthy open.
#[test]
fn reopen_on_a_still_broken_disk_degrades_then_recovers() {
    let seed = fault_seed();
    let corpus = corpus();
    let dir = tmpdir("broken-reopen");

    let io = FaultIo::over_real(FaultSchedule::crash_at(9, seed));
    let record = run_workload(std::sync::Arc::clone(&io), &dir, &corpus);

    // Reopen through a read-only filesystem: recovery writes (manifest
    // persist, quarantine renames, temp sweeps) all fail, but the open
    // itself must succeed and report a degraded tier.
    let ro = FaultIo::over_real(FaultSchedule::none());
    ro.set_readonly(true);
    let tier = DiskTier::open_with_io(&dir, 1 << 20, ro)
        .expect("a read-only directory must open (degraded), not fail");
    assert!(
        !tier.health().is_healthy(),
        "failed recovery writes must leave the tier degraded"
    );
    drop(tier);

    // And a later healthy open still recovers to a verify-clean state
    // (the read-only open persisted nothing, so the crashed run's record
    // still describes the on-disk directory).
    assert_recovered(&dir, &corpus, &record, "healthy reopen after broken reopen");
    let quarantine = dir.join(QUARANTINE_DIR);
    let _ = quarantine; // layout documented; contents vary by crash point
}
