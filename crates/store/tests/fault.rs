//! Fault-injection suite for the disk tier's degraded mode: ENOSPC in
//! the middle of a segment write, a store directory gone read-only, and
//! the drop-flush error counter. The common theme: a sick disk costs
//! cache effectiveness, never a request, and the tier finds its own way
//! back once the fault clears.

use oipa_sampler::testkit::fig1;
use oipa_sampler::MrrPool;
use oipa_store::io::{FaultIo, FaultSchedule};
use oipa_store::{DiskTier, PoolKey, PoolStore, PoolTier, StoreConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("oipa-fault-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pool(theta: usize, seed: u64) -> Arc<MrrPool> {
    let (g, table, campaign) = fig1();
    Arc::new(MrrPool::generate(&g, &table, &campaign, theta, seed))
}

fn key(theta: usize, seed: u64) -> PoolKey {
    PoolKey::sampled(format!("fault-{seed}"), theta, seed)
}

/// Drives the request-ticked reopen probe: each get of an unknown key
/// takes the disk path (arena misses), ticking the health machine until
/// the backoff elapses and the probe runs.
fn tick_probe(store: &PoolStore, rounds: usize) {
    for i in 0..rounds {
        let _ = store.get(&key(10, 9_000 + i as u64));
    }
}

/// ENOSPC in the middle of a segment write: the insert is swallowed
/// (counted, degraded), the pool keeps serving from memory, and once
/// space returns the tier probes its way back and persists again.
#[test]
fn enospc_mid_segment_write_degrades_and_recovers() {
    let dir = tmpdir("enospc");
    // Write #0 is the open's manifest persist; write #1 is the first
    // segment write — the one the disk-full moment hits.
    let fault = FaultIo::over_real(FaultSchedule::parse("write:enospc=1").unwrap());
    let store = PoolStore::open(StoreConfig::new(&dir).with_io(fault.clone())).unwrap();
    assert!(store.health().unwrap().is_healthy());

    let p = pool(400, 7);
    let k = key(400, 7);
    store.insert(k.clone(), Arc::clone(&p)); // segment write fails ENOSPC
    let health = store.health().unwrap();
    assert!(!health.is_healthy(), "ENOSPC must degrade the tier");
    assert!(
        health.last_error.unwrap().contains("ENOSPC"),
        "the detail names the fault"
    );
    let disk = store.stats().disk.unwrap();
    assert_eq!(disk.write_errors, 1);
    assert_eq!(disk.entries, 0, "nothing half-written is indexed");

    // The request path is unharmed: the pool serves from memory.
    let (served, tier) = store.get(&k).expect("memory tier still serves");
    assert_eq!(tier, PoolTier::Memory);
    assert_eq!(served.fingerprint(), p.fingerprint());

    // Degraded lookups short-circuit (counted), they do not error.
    assert!(store.get(&key(400, 8)).is_none());
    assert!(store.stats().disk.unwrap().degraded_skips > 0);

    // Space "returns" (the rule was one-shot); the probe brings the tier
    // back within a few requests.
    tick_probe(&store, 8);
    let health = store.health().unwrap();
    assert!(health.is_healthy(), "the tier must recover: {health:?}");
    assert_eq!(health.recoveries, 1);

    // And new writes land durably again.
    let p2 = pool(300, 21);
    let k2 = key(300, 21);
    store.insert(k2.clone(), Arc::clone(&p2));
    drop(store);
    let reopened = PoolStore::open(StoreConfig::new(&dir)).unwrap();
    let (back, tier) = reopened.get(&k2).expect("post-recovery write persisted");
    assert_eq!(tier, PoolTier::Disk);
    assert_eq!(back.fingerprint(), p2.fingerprint());
}

/// A store directory that goes read-only mid-session: reads keep
/// hitting, writes degrade the tier, and clearing the condition restores
/// full service — all without a single surfaced error.
#[test]
fn read_only_store_dir_degrades_writes_then_recovers() {
    let dir = tmpdir("readonly");
    // Seed the directory with one segment while healthy.
    let p = pool(500, 3);
    let k = key(500, 3);
    {
        let store = PoolStore::open(StoreConfig::new(&dir)).unwrap();
        store.insert(k.clone(), Arc::clone(&p));
    }

    let fault = FaultIo::over_real(FaultSchedule::none());
    let store = PoolStore::open(StoreConfig::new(&dir).with_io(fault.clone())).unwrap();
    // Disk-warm read works before the filesystem flips.
    let (back, tier) = store.get(&k).unwrap();
    assert_eq!(tier, PoolTier::Disk);
    assert_eq!(back.fingerprint(), p.fingerprint());

    fault.set_readonly(true);
    // Inserts are swallowed: no error, tier degraded, pool serves from
    // memory.
    let p2 = pool(350, 4);
    let k2 = key(350, 4);
    store.insert(k2.clone(), Arc::clone(&p2));
    assert!(!store.health().unwrap().is_healthy());
    let (served, tier) = store.get(&k2).unwrap();
    assert_eq!(tier, PoolTier::Memory);
    assert_eq!(served.fingerprint(), p2.fingerprint());

    // Writable again: probe recovers, and the tier serves disk hits.
    fault.set_readonly(false);
    tick_probe(&store, 8);
    assert!(store.health().unwrap().is_healthy());
    store.clear_memory();
    let (back, tier) = store.get(&k).unwrap();
    assert_eq!(tier, PoolTier::Disk);
    assert_eq!(back.fingerprint(), p.fingerprint());
}

/// A read-only directory must also *open*: degraded (the recovery
/// persist cannot land), serving whatever the manifest already lists.
#[test]
fn read_only_store_dir_still_opens_and_serves_reads() {
    let dir = tmpdir("readonly-open");
    let p = pool(450, 5);
    let k = key(450, 5);
    {
        let store = PoolStore::open(StoreConfig::new(&dir)).unwrap();
        store.insert(k.clone(), Arc::clone(&p));
    }

    let fault = FaultIo::over_real(FaultSchedule::none());
    fault.set_readonly(true);
    let store = PoolStore::open(StoreConfig::new(&dir).with_io(fault.clone()))
        .expect("a read-only directory opens degraded, it does not fail");
    assert!(!store.health().unwrap().is_healthy());
    // Degraded short-circuits the disk path; the caller resamples. No
    // error either way.
    assert!(store.get(&k).is_none());

    // Once writable, the probe re-persists the recovered manifest and
    // the old segment serves again.
    fault.set_readonly(false);
    tick_probe(&store, 8);
    assert!(store.health().unwrap().is_healthy());
    let (back, tier) = store.get(&k).unwrap();
    assert_eq!(tier, PoolTier::Disk);
    assert_eq!(back.fingerprint(), p.fingerprint());
}

/// The drop-flush satellite: a failing recency flush is best-effort with
/// a counter — never a silent swallow, never a panic in the destructor.
#[test]
fn failed_recency_flush_bumps_the_counter_and_never_panics() {
    let dir = tmpdir("flush-counter");
    let fault = FaultIo::over_real(FaultSchedule::none());
    let mut tier = DiskTier::open_with_io(&dir, 1 << 20, fault.clone()).unwrap();
    let p = pool(200, 11);
    let k = key(200, 11);
    assert!(tier.put(&k, &p), "healthy put is acked");
    let _ = tier.get(&k); // batches a recency stamp (dirty manifest)

    fault.set_readonly(true);
    let err = tier.flush().expect_err("flush on a read-only dir fails");
    assert!(err.to_string().contains("store io error"), "{err}");
    assert_eq!(tier.stats().flush_errors, 1);
    // A repeat while degraded is counted too, without touching the disk.
    let _ = tier.flush();
    assert_eq!(tier.stats().flush_errors, 2);
    assert!(!tier.health().is_healthy());

    // The drop-flush takes the same best-effort path: no panic.
    drop(tier);

    // Nothing was lost but recency: a healthy reopen serves the pool.
    let mut reopened = DiskTier::open(&dir, 1 << 20).unwrap();
    let got = reopened.get(&k).expect("the acked segment survived");
    assert_eq!(got.fingerprint(), p.fingerprint());
}
