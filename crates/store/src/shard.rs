//! Lock striping for the memory tier: N independent [`PoolArena`]
//! shards, each behind its own `RwLock`, keyed by [`PoolKey`] hash.
//!
//! One arena behind one lock serializes every insert against every
//! other insert, and (worse) every memory *hit* against any in-flight
//! insert — the write lock blocks all readers. Striping the arena over
//! N shards cuts both: a lookup or insert locks exactly one shard, so
//! requests for different keys proceed in parallel and only true
//! same-shard collisions contend (the same layering foyer uses in
//! `foyer-memory`, where each eviction container is an independently
//! locked shard).
//!
//! Invariants preserved across sharding:
//!
//! * **Counter losslessness** — each shard keeps its own atomic
//!   counters; [`ShardedArena::stats`] sums them under all read locks,
//!   so `lookups == hits + misses` holds for the aggregate exactly as
//!   it does per shard.
//! * **Budget** — the store's byte budget is split evenly across shards
//!   (remainder bytes go to the low shards), so the aggregate capacity
//!   is exactly the configured total.
//! * **Pins and eviction order** — pinning and victim selection are
//!   per-shard; with one shard (the default) the behavior is bitwise
//!   identical to the pre-shard arena.

use crate::arena::{ArenaStats, PoolArena, PoolKey};
use crate::eviction::EvictionPolicyKind;
use oipa_sampler::MrrPool;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// The default shard count: one — bitwise-compatible with the
/// pre-shard store. Raise it via [`crate::StoreConfig::shards`] when
/// serving from many threads.
pub const DEFAULT_SHARDS: usize = 1;

/// A lock-striped set of [`PoolArena`] shards acting as one cache.
/// Every operation takes `&self` and locks only the shard(s) it needs.
pub(crate) struct ShardedArena {
    shards: Vec<RwLock<PoolArena>>,
    /// Total byte budget across all shards (the sum of per-shard
    /// budgets; kept so `capacity_bytes` needs no locks).
    capacity_bytes: AtomicUsize,
    policy: EvictionPolicyKind,
}

/// Splits `total` bytes into `n` per-shard budgets, remainder to the
/// low shards, so the budgets sum exactly to `total`.
fn split_budget(total: usize, n: usize) -> Vec<usize> {
    let base = total / n;
    let rem = total % n;
    (0..n).map(|i| base + usize::from(i < rem)).collect()
}

/// The shard a key routes to: its Fx hash mod the shard count. Shard 0
/// unconditionally when there is only one (no hashing on the default
/// configuration's hot path).
pub(crate) fn shard_of(key: &PoolKey, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut h = oipa_graph::hashing::FxHasher::default();
    key.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

impl ShardedArena {
    /// Creates `shards` lock-striped arenas sharing `capacity_bytes`
    /// and evicting by `policy`. `shards` is clamped to at least 1.
    pub(crate) fn new(capacity_bytes: usize, shards: usize, policy: EvictionPolicyKind) -> Self {
        let n = shards.max(1);
        ShardedArena {
            shards: split_budget(capacity_bytes, n)
                .into_iter()
                .map(|b| RwLock::new(PoolArena::with_policy(b, policy.build())))
                .collect(),
            capacity_bytes: AtomicUsize::new(capacity_bytes),
            policy,
        }
    }

    /// How many shards the arena is striped over.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The active eviction policy.
    pub(crate) fn policy(&self) -> EvictionPolicyKind {
        self.policy
    }

    /// The shard index `key` routes to (stable for a given shard count).
    pub(crate) fn shard_of(&self, key: &PoolKey) -> usize {
        shard_of(key, self.shards.len())
    }

    fn shard(&self, key: &PoolKey) -> &RwLock<PoolArena> {
        &self.shards[self.shard_of(key)]
    }

    /// Looks up a pool in the key's shard (shared lock; see
    /// [`PoolArena::get`]).
    pub(crate) fn get(&self, key: &PoolKey) -> Option<Arc<MrrPool>> {
        read(self.shard(key)).get(key)
    }

    /// [`Self::get`] for double-check paths (see
    /// [`PoolArena::get_recheck`]): a re-miss counts nothing.
    pub(crate) fn get_recheck(&self, key: &PoolKey) -> Option<Arc<MrrPool>> {
        read(self.shard(key)).get_recheck(key)
    }

    /// Epoch-oblivious fetch for the delta-repair path (see
    /// [`PoolArena::get_any`]).
    pub(crate) fn get_any(&self, key: &PoolKey) -> Option<(Arc<MrrPool>, u64)> {
        read(self.shard(key)).get_any(key)
    }

    /// Broadcasts a new current lineage epoch to every shard (see
    /// [`PoolArena::set_current_epoch`]).
    pub(crate) fn set_current_epoch(&self, epoch: u64) {
        for shard in &self.shards {
            read(shard).set_current_epoch(epoch);
        }
    }

    /// The epoch entries currently serve at (shards always agree — the
    /// epoch only changes through [`Self::set_current_epoch`]).
    pub(crate) fn current_epoch(&self) -> u64 {
        read(&self.shards[0]).current_epoch()
    }

    /// Drops unpinned entries at epoch ≥ `cutoff` in every shard (see
    /// [`PoolArena::evict_epochs_from`]).
    pub(crate) fn evict_epochs_from(&self, cutoff: u64) {
        for shard in &self.shards {
            write(shard).evict_epochs_from(cutoff);
        }
    }

    /// Inserts into the key's shard, returning what the insert evicted
    /// or displaced there (see [`PoolArena::insert_evicting`]).
    pub(crate) fn insert_evicting(
        &self,
        key: PoolKey,
        pool: Arc<MrrPool>,
    ) -> Vec<(PoolKey, Arc<MrrPool>)> {
        write(self.shard(&key)).insert_evicting(key, pool)
    }

    /// Pinned insert into the key's shard (see
    /// [`PoolArena::insert_pinned`]).
    pub(crate) fn insert_pinned(
        &self,
        key: PoolKey,
        pool: Arc<MrrPool>,
    ) -> Vec<(PoolKey, Arc<MrrPool>)> {
        write(self.shard(&key)).insert_pinned(key, pool)
    }

    /// The total byte budget across all shards.
    pub(crate) fn capacity_bytes(&self) -> usize {
        self.capacity_bytes.load(Ordering::Relaxed)
    }

    /// Re-splits a new total budget across the shards, returning every
    /// entry that no longer fits (each shard keeps its newest unpinned
    /// entry, as the single arena does).
    pub(crate) fn set_capacity(&self, capacity_bytes: usize) -> Vec<(PoolKey, Arc<MrrPool>)> {
        self.capacity_bytes.store(capacity_bytes, Ordering::Relaxed);
        let budgets = split_budget(capacity_bytes, self.shards.len());
        let mut evicted = Vec::new();
        for (shard, budget) in self.shards.iter().zip(budgets) {
            evicted.extend(write(shard).set_capacity(budget));
        }
        evicted
    }

    /// Drops every cached pool in every shard (counters preserved).
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            write(shard).clear();
        }
    }

    /// Drops every *sampled* (unpinned) pool in every shard (see
    /// [`PoolArena::evict_unpinned`]).
    pub(crate) fn evict_unpinned(&self) {
        for shard in &self.shards {
            write(shard).evict_unpinned();
        }
    }

    /// Aggregate occupancy and counters: every per-shard counter summed
    /// (losslessly — each shard's own `lookups == hits + misses` holds,
    /// so the sums satisfy it too), `shards` reporting the stripe count.
    pub(crate) fn stats(&self) -> ArenaStats {
        let mut total = ArenaStats {
            entries: 0,
            bytes: 0,
            capacity_bytes: 0,
            lookups: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            shards: self.shards.len(),
            stale: 0,
        };
        for shard in &self.shards {
            let s = read(shard).stats();
            total.entries += s.entries;
            total.bytes += s.bytes;
            total.capacity_bytes += s.capacity_bytes;
            total.lookups += s.lookups;
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.stale += s.stale;
        }
        total
    }

    /// Per-shard occupancy and counters, in shard order (the `store ls`
    /// / `/stats` per-shard table).
    pub(crate) fn shard_stats(&self) -> Vec<ArenaStats> {
        self.shards.iter().map(|s| read(s).stats()).collect()
    }

    /// Re-stripes the arena over a new shard count and/or policy,
    /// preserving every entry (recency, frequency, pins) and every
    /// counter. Entries that no longer fit their new shard's budget are
    /// returned for spilling. Exclusive: reconfiguration is topology,
    /// not serving.
    pub(crate) fn reconfigure(
        &mut self,
        shards: usize,
        policy: EvictionPolicyKind,
    ) -> Vec<(PoolKey, Arc<MrrPool>)> {
        let n = shards.max(1);
        let epoch = self.current_epoch();
        let mut entries = Vec::new();
        let mut counters = Vec::new();
        for shard in &self.shards {
            let mut guard = write(shard);
            entries.extend(guard.drain());
            counters.push((guard.stats(), guard.clock()));
        }
        let mut next: Vec<PoolArena> = split_budget(self.capacity_bytes(), n)
            .into_iter()
            .map(|b| {
                let arena = PoolArena::with_policy(b, policy.build());
                arena.set_current_epoch(epoch);
                arena
            })
            .collect();
        // Counters collapse into shard 0: the aggregate stays lossless
        // whatever the old and new stripe counts.
        for (stats, clock) in counters {
            next[0].absorb_counters(stats, clock);
        }
        for entry in entries {
            let idx = shard_of(&entry.key, n);
            next[idx].restore(entry);
        }
        let budgets: Vec<usize> = next.iter().map(|a| a.capacity_bytes()).collect();
        let mut evicted = Vec::new();
        for (arena, budget) in next.iter_mut().zip(budgets) {
            evicted.extend(arena.set_capacity(budget));
        }
        self.shards = next.into_iter().map(RwLock::new).collect();
        self.policy = policy;
        evicted
    }
}

// Poisoned-lock recovery: see the lock helpers in `lib.rs` — cache
// state is redundant, so serving through a poisoned shard is safe.
fn read(shard: &RwLock<PoolArena>) -> std::sync::RwLockReadGuard<'_, PoolArena> {
    shard.read().unwrap_or_else(|e| e.into_inner())
}

fn write(shard: &RwLock<PoolArena>) -> std::sync::RwLockWriteGuard<'_, PoolArena> {
    shard.write().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_sampler::testkit::fig1;

    fn pool(theta: usize, seed: u64) -> Arc<MrrPool> {
        let (g, table, campaign) = fig1();
        Arc::new(MrrPool::generate(&g, &table, &campaign, theta, seed))
    }

    fn key(seed: u64) -> PoolKey {
        PoolKey::sampled(format!("shard-{seed}"), 300, seed)
    }

    #[test]
    fn budget_split_sums_exactly_and_routing_is_stable() {
        assert_eq!(split_budget(10, 3), vec![4, 3, 3]);
        assert_eq!(split_budget(0, 2), vec![0, 0]);
        let arena = ShardedArena::new(1 << 20, 4, EvictionPolicyKind::Lru);
        assert_eq!(arena.stats().capacity_bytes, 1 << 20);
        for s in 0..32u64 {
            let k = key(s);
            assert_eq!(arena.shard_of(&k), arena.shard_of(&k.clone()));
            assert!(arena.shard_of(&k) < 4);
        }
        // One shard routes everything to 0 without hashing.
        let one = ShardedArena::new(1 << 20, 1, EvictionPolicyKind::Lru);
        assert_eq!(one.shard_of(&key(7)), 0);
    }

    #[test]
    fn aggregate_counters_stay_lossless_across_shards() {
        let arena = ShardedArena::new(usize::MAX / 2, 4, EvictionPolicyKind::Lru);
        for s in 0..12u64 {
            arena.insert_evicting(key(s), pool(300, s % 3));
        }
        for s in 0..24u64 {
            let _ = arena.get(&key(s)); // 12 hits, 12 misses
        }
        let stats = arena.stats();
        assert_eq!(stats.entries, 12);
        assert_eq!(stats.lookups, 24);
        assert_eq!(stats.hits, 12);
        assert_eq!(stats.misses, 12);
        assert_eq!(stats.lookups, stats.hits + stats.misses);
        assert_eq!(stats.shards, 4);
        let per: u64 = arena.shard_stats().iter().map(|s| s.lookups).sum();
        assert_eq!(per, stats.lookups, "per-shard view sums to the aggregate");
    }

    #[test]
    fn reconfigure_preserves_entries_pins_and_counters() {
        let mut arena = ShardedArena::new(usize::MAX / 2, 1, EvictionPolicyKind::Lru);
        let pinned = pool(300, 99);
        let kp = PoolKey::external("pin", &pinned);
        arena.insert_pinned(kp.clone(), Arc::clone(&pinned));
        for s in 0..8u64 {
            arena.insert_evicting(key(s), pool(300, s % 3));
        }
        let _ = arena.get(&key(0));
        let _ = arena.get(&key(999)); // one miss
        let before = arena.stats();

        let spilled = arena.reconfigure(4, EvictionPolicyKind::Lfu);
        assert!(spilled.is_empty(), "ample budget spills nothing");
        let after = arena.stats();
        assert_eq!(after.entries, before.entries);
        assert_eq!(after.lookups, before.lookups);
        assert_eq!(after.hits, before.hits);
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.lookups, after.hits + after.misses);
        assert_eq!(after.shards, 4);
        assert_eq!(arena.policy().name(), "lfu");
        for s in 0..8u64 {
            assert!(arena.get(&key(s)).is_some(), "entry {s} survived");
        }
        assert!(arena.get(&kp).is_some(), "pin survived re-striping");

        // The pin itself survives byte pressure in its new shard.
        let spilled = arena.set_capacity(0);
        assert!(spilled.iter().all(|(k, _)| k != &kp), "pin never spills");
        assert!(arena.get(&kp).is_some());
    }
}
