//! Pluggable eviction policies for the memory arena shards.
//!
//! Every [`crate::PoolArena`] shard delegates its victim selection to an
//! [`EvictionPolicy`]: when the resident bytes exceed the shard's budget,
//! the arena hands the policy the metadata of every evictable entry and
//! removes whichever one the policy names, repeating until the budget
//! fits. Two policies ship:
//!
//! * [`Lru`] — least recently used, the store's historical behavior. Its
//!   victim choice is bitwise-compatible with the pre-policy arena (the
//!   minimum `last_used` stamp, first entry on ties), so golden tests
//!   pinned to the old eviction order keep passing.
//! * [`Lfu`] — least frequently used, with recency as the tie-break.
//!   Zipfian serving traffic concentrates hits on a few hot pools; LFU
//!   keeps those resident even when a burst of one-off keys sweeps
//!   through and would flush an LRU cache.
//!
//! Policies are selected through [`crate::StoreConfig::eviction`] (the
//! CLI's `--eviction lru|lfu`) and surfaced by name through
//! [`crate::StatsSnapshot`] and the server's `/stats`.

use std::sync::Arc;

/// The per-entry metadata a policy ranks candidates by. The arena owns
/// the entries; the policy only ever sees this projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionMeta {
    /// Recency stamp (larger = touched more recently).
    pub last_used: u64,
    /// Hit count: how many lookups this entry has served (plus one for
    /// its insert).
    pub uses: u64,
    /// Resident bytes.
    pub bytes: usize,
}

/// A victim-selection strategy for a byte-budgeted pool cache.
///
/// `select_victim` receives every *evictable* candidate (pinned and
/// just-inserted entries are filtered out by the arena before the policy
/// sees anything) and returns the index **into the candidate slice** of
/// the entry to evict, or `None` to leave the cache over budget (no
/// shipped policy does; the arena treats `None` as "stop evicting").
pub trait EvictionPolicy: Send + Sync + std::fmt::Debug {
    /// The policy's wire/display name (`lru`, `lfu`).
    fn name(&self) -> &'static str;
    /// Picks the candidate to evict. `None` stops the eviction loop.
    fn select_victim(&self, candidates: &[EvictionMeta]) -> Option<usize>;
}

/// Least-recently-used: evicts the minimum `last_used` stamp, first
/// candidate on ties — exactly the pre-policy arena's victim order.
#[derive(Debug, Default, Clone, Copy)]
pub struct Lru;

impl EvictionPolicy for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn select_victim(&self, candidates: &[EvictionMeta]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.last_used)
            .map(|(i, _)| i)
    }
}

/// Least-frequently-used, ties broken by recency (the stalest of the
/// equally cold): an entry that keeps getting hit is never displaced by
/// a sweep of one-off keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct Lfu;

impl EvictionPolicy for Lfu {
    fn name(&self) -> &'static str {
        "lfu"
    }

    fn select_victim(&self, candidates: &[EvictionMeta]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| (m.uses, m.last_used))
            .map(|(i, _)| i)
    }
}

/// The selectable policies, as configuration ([`crate::StoreConfig`],
/// the CLI's `--eviction` flag).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EvictionPolicyKind {
    /// Least recently used (the default; matches the pre-policy store).
    #[default]
    Lru,
    /// Least frequently used, recency tie-break.
    Lfu,
}

impl EvictionPolicyKind {
    /// The wire/display name (`lru` / `lfu`).
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicyKind::Lru => "lru",
            EvictionPolicyKind::Lfu => "lfu",
        }
    }

    /// Parses a policy name (the `--eviction` flag).
    pub fn parse(s: &str) -> Result<EvictionPolicyKind, String> {
        match s {
            "lru" => Ok(EvictionPolicyKind::Lru),
            "lfu" => Ok(EvictionPolicyKind::Lfu),
            other => Err(format!("unknown eviction policy {other:?} (lru|lfu)")),
        }
    }

    /// Builds the policy object this kind names.
    pub fn build(self) -> Arc<dyn EvictionPolicy> {
        match self {
            EvictionPolicyKind::Lru => Arc::new(Lru),
            EvictionPolicyKind::Lfu => Arc::new(Lfu),
        }
    }
}

impl std::fmt::Display for EvictionPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(last_used: u64, uses: u64) -> EvictionMeta {
        EvictionMeta {
            last_used,
            uses,
            bytes: 1,
        }
    }

    #[test]
    fn lru_picks_the_stalest_candidate_first_on_ties() {
        let lru = Lru;
        assert_eq!(
            lru.select_victim(&[meta(5, 1), meta(2, 9), meta(7, 1)]),
            Some(1)
        );
        // Ties resolve to the first candidate — the pre-policy order.
        assert_eq!(
            lru.select_victim(&[meta(3, 1), meta(3, 9), meta(9, 1)]),
            Some(0)
        );
        assert_eq!(lru.select_victim(&[]), None);
    }

    #[test]
    fn lfu_picks_the_coldest_candidate_breaking_ties_by_recency() {
        let lfu = Lfu;
        // Frequency dominates: the old-but-hot entry survives.
        assert_eq!(
            lfu.select_victim(&[meta(1, 50), meta(9, 2), meta(8, 7)]),
            Some(1)
        );
        // Equal frequency falls back to recency.
        assert_eq!(
            lfu.select_victim(&[meta(6, 2), meta(4, 2), meta(9, 9)]),
            Some(1)
        );
    }

    #[test]
    fn kind_parses_and_round_trips_names() {
        for kind in [EvictionPolicyKind::Lru, EvictionPolicyKind::Lfu] {
            assert_eq!(EvictionPolicyKind::parse(kind.name()), Ok(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        assert!(EvictionPolicyKind::parse("fifo").is_err());
        assert_eq!(EvictionPolicyKind::default(), EvictionPolicyKind::Lru);
    }
}
