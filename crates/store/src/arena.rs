//! Tier 0 of the pool store: the in-memory keyed pool arena — an LRU
//! cache of sampled [`MrrPool`]s, bounded by resident bytes.
//!
//! Sampling θ MRR sets dominates end-to-end latency (the paper's Table
//! III "sample time" row), yet a pool depends only on the campaign's
//! topic mix, θ, and the sampling seed — not on the adoption model, the
//! budget, the promoter pool, or the solve method. A multi-query session
//! therefore caches pools under that key and lets every subsequent
//! request that shares it skip sampling entirely (the IMM-style
//! amortization of §V-A, applied across requests instead of across
//! parameter sweeps). In a tiered [`crate::PoolStore`], entries evicted
//! from this arena spill to the disk tier instead of being resampled.
//!
//! Concurrency: [`PoolArena::get`] takes `&self` — recency stamps and the
//! hit/miss counters are atomics, so any number of readers can hit the
//! cache simultaneously behind a shared (read) lock. Only inserts and
//! evictions need exclusive access. The resident byte total is maintained
//! incrementally on insert/evict, so budget checks are O(1) instead of a
//! fold over every entry.

use crate::eviction::{EvictionMeta, EvictionPolicy, EvictionPolicyKind};
use oipa_sampler::MrrPool;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache key: everything pool contents depend on.
///
/// The campaign component is its canonical JSON rendering, so two
/// requests with structurally equal campaigns share an entry while any
/// difference in topic mixes keys a distinct pool. Externally loaded
/// pools (e.g. a `--pool` file in the CLI) get an `@external:` key that
/// no sampled request can collide with, carrying the pool's content
/// fingerprint in the seed slot so two different injected pools never
/// alias one entry even under the same label and θ.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolKey {
    pub(crate) campaign: String,
    pub(crate) theta: usize,
    pub(crate) seed: u64,
}

impl PoolKey {
    /// Key for a pool the service samples itself.
    pub fn sampled(campaign_json: String, theta: usize, seed: u64) -> Self {
        PoolKey {
            campaign: campaign_json,
            theta,
            seed,
        }
    }

    /// Key for a pool injected from outside (file, caller-built). The
    /// seed slot holds [`MrrPool::fingerprint`], so two pools that share
    /// a label and θ but differ in content still key distinct entries —
    /// the label is a human-readable tag, not an identity.
    pub fn external(label: &str, pool: &MrrPool) -> Self {
        PoolKey {
            campaign: format!("@external:{label}"),
            theta: pool.theta(),
            seed: pool.fingerprint(),
        }
    }

    /// The θ the key was built with.
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// The seed slot: the sampling seed for [`PoolKey::sampled`] keys,
    /// the pool content fingerprint for [`PoolKey::external`] keys.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The campaign component (canonical campaign JSON, or the
    /// `@external:<label>` tag of an injected pool).
    pub fn campaign(&self) -> &str {
        &self.campaign
    }
}

struct ArenaEntry {
    key: PoolKey,
    pool: Arc<MrrPool>,
    bytes: usize,
    /// Atomic so a shared-reference `get` can refresh recency while other
    /// readers scan concurrently.
    last_used: AtomicU64,
    /// Hit count (insert counts once), atomic for the same reason. Feeds
    /// frequency-aware eviction policies (LFU).
    uses: AtomicU64,
    /// Pinned entries (injected pools) are never evicted by byte
    /// pressure — only `clear`/`evict_unpinned` removes them. They are
    /// also epoch-exempt: an injected pool is not tied to the instance
    /// lineage, so it serves at any epoch.
    pinned: bool,
    /// The lineage epoch the pool was sampled (or repaired) at. Entries
    /// at older epochs are **stale**: [`PoolArena::get`] misses on them
    /// (they must not serve), but they stay resident so a delta-aware
    /// caller can fetch them via [`PoolArena::get_any`] and repair them
    /// instead of resampling from scratch.
    epoch: u64,
}

/// An entry exported by [`PoolArena::drain`] for re-sharding: everything
/// needed to rebuild the entry elsewhere without losing recency,
/// frequency, or the pin.
pub(crate) struct DrainedEntry {
    pub(crate) key: PoolKey,
    pub(crate) pool: Arc<MrrPool>,
    pub(crate) last_used: u64,
    pub(crate) uses: u64,
    pub(crate) pinned: bool,
    pub(crate) epoch: u64,
}

/// Cumulative arena counters plus the current occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArenaStats {
    /// Pools currently resident.
    pub entries: usize,
    /// Bytes currently resident.
    pub bytes: usize,
    /// The configured byte budget.
    pub capacity_bytes: usize,
    /// Total lookups (always equals `hits + misses`; tracked as its own
    /// counter so concurrency tests can detect lost updates).
    pub lookups: u64,
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that required sampling (or an insert).
    pub misses: u64,
    /// Pools evicted (or displaced by a same-key replace) to stay under
    /// the byte budget.
    pub evictions: u64,
    /// How many lock-striped shards the counters were aggregated over
    /// (1 for a single arena).
    pub shards: usize,
    /// Resident pools stamped with an older lineage epoch: not servable
    /// as-is, retained as dirty-repairable inputs for delta repair.
    pub stale: usize,
}

/// A policy-driven pool cache bounded by [`MrrPool::memory_bytes`]
/// (LRU by default; see [`crate::eviction`]).
pub struct PoolArena {
    capacity_bytes: usize,
    entries: Vec<ArenaEntry>,
    /// Maintained running total of `entries[..].bytes` — budget checks
    /// must not fold over the arena on every insert.
    resident_bytes: usize,
    policy: Arc<dyn EvictionPolicy>,
    clock: AtomicU64,
    /// The lineage epoch entries currently serve at. Entries stamped
    /// with any other epoch are stale: misses for [`Self::get`],
    /// retrievable only through [`Self::get_any`] for repair.
    current_epoch: AtomicU64,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PoolArena {
    /// Creates an LRU arena with the given byte budget. A budget of 0
    /// still holds the most recently inserted pool (a usable pool is
    /// never evicted before it serves its own request).
    pub fn new(capacity_bytes: usize) -> Self {
        PoolArena::with_policy(capacity_bytes, EvictionPolicyKind::Lru.build())
    }

    /// Creates an arena evicting by `policy` (see [`crate::eviction`]).
    pub fn with_policy(capacity_bytes: usize, policy: Arc<dyn EvictionPolicy>) -> Self {
        PoolArena {
            capacity_bytes,
            entries: Vec::new(),
            resident_bytes: 0,
            policy,
            clock: AtomicU64::new(0),
            current_epoch: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The active eviction policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Moves the arena to a new current lineage epoch. Entries stamped
    /// with any other epoch become stale (misses for [`Self::get`],
    /// repairable via [`Self::get_any`]); they stay resident.
    pub fn set_current_epoch(&self, epoch: u64) {
        self.current_epoch.store(epoch, Ordering::Relaxed);
    }

    /// The epoch entries currently serve at.
    pub fn current_epoch(&self) -> u64 {
        self.current_epoch.load(Ordering::Relaxed)
    }

    /// Whether an entry may serve as-is: pinned pools are epoch-exempt,
    /// sampled pools must carry the current epoch.
    fn servable(&self, entry: &ArenaEntry) -> bool {
        entry.pinned || entry.epoch == self.current_epoch.load(Ordering::Relaxed)
    }

    /// Looks up a pool, refreshing its recency on a hit. Takes `&self`:
    /// concurrent readers only contend on atomic counter bumps. An entry
    /// stamped with a non-current epoch is a **miss** (stale pools never
    /// serve); fetch it with [`Self::get_any`] to repair it instead.
    pub fn get(&self, key: &PoolKey) -> Option<Arc<MrrPool>> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let clock = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        match self.entries.iter().find(|e| &e.key == key) {
            Some(entry) if self.servable(entry) => {
                entry.last_used.store(clock, Ordering::Relaxed);
                entry.uses.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.pool))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// [`Self::get`] for double-check paths: the caller's immediately
    /// preceding `get` on this key already recorded the miss, so a miss
    /// here counts nothing — only a hit (another thread raced the pool
    /// in) records a lookup. Keeps one logical request at one counted
    /// miss, whatever the interleaving.
    pub fn get_recheck(&self, key: &PoolKey) -> Option<Arc<MrrPool>> {
        let entry = self
            .entries
            .iter()
            .find(|e| &e.key == key)
            .filter(|e| self.servable(e))?;
        let clock = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(clock, Ordering::Relaxed);
        entry.uses.fetch_add(1, Ordering::Relaxed);
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.pool))
    }

    /// Fetches a pool **at whatever epoch it carries** — the delta-repair
    /// retrieval path. Counts no lookup (the serving `get` that preceded
    /// it already recorded the miss); refreshes recency so the entry is
    /// not evicted out from under the repair it is about to feed.
    pub fn get_any(&self, key: &PoolKey) -> Option<(Arc<MrrPool>, u64)> {
        let entry = self.entries.iter().find(|e| &e.key == key)?;
        let clock = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(clock, Ordering::Relaxed);
        Some((Arc::clone(&entry.pool), entry.epoch))
    }

    /// Inserts (or replaces) a pool, then evicts least-recently-used
    /// entries until the arena fits its byte budget. The pool just
    /// inserted is exempt from eviction even if it alone exceeds the
    /// budget — a request must be able to use the pool it paid for.
    pub fn insert(&mut self, key: PoolKey, pool: Arc<MrrPool>) {
        self.insert_entry(key, pool, false);
    }

    /// [`Self::insert`], returning the entries eviction removed — and the
    /// pool a same-key replace displaced — so a tiered store can spill
    /// them to disk instead of losing them.
    pub fn insert_evicting(
        &mut self,
        key: PoolKey,
        pool: Arc<MrrPool>,
    ) -> Vec<(PoolKey, Arc<MrrPool>)> {
        self.insert_entry(key, pool, false)
    }

    /// Inserts a pool that byte pressure must never evict (an injected
    /// pool the session was built around). Only [`Self::clear`] removes
    /// pinned entries. Returns the *sampled* entries the insert evicted
    /// under byte pressure, so a tiered store can spill them.
    pub fn insert_pinned(
        &mut self,
        key: PoolKey,
        pool: Arc<MrrPool>,
    ) -> Vec<(PoolKey, Arc<MrrPool>)> {
        self.insert_entry(key, pool, true)
    }

    fn insert_entry(
        &mut self,
        key: PoolKey,
        pool: Arc<MrrPool>,
        pinned: bool,
    ) -> Vec<(PoolKey, Arc<MrrPool>)> {
        let clock = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let bytes = pool.memory_bytes();
        let mut evicted = Vec::new();
        let mut pinned = pinned;
        // The insert itself counts one use; a same-key replace inherits
        // the displaced entry's hit count on top, so frequency-aware
        // policies see the key's history, not the age of its newest copy.
        let mut uses = 1u64;
        // A replace must account for the entry it displaces: keep its pin
        // (an injected pool stays unevictable when re-inserted over) and,
        // for sampled entries, hand the old pool back so a tiered store
        // can spill it and count the displacement so the eviction stats
        // stay accurate. A displaced *pinned* pool is neither counted nor
        // returned: its replacement keeps the pin (the entry never left
        // memory), and pinned pools must not leak to the disk tier — the
        // caller owns their persistence.
        if let Some(idx) = self.entries.iter().position(|e| e.key == key) {
            let old = self.entries.swap_remove(idx);
            self.resident_bytes -= old.bytes;
            pinned |= old.pinned;
            uses += old.uses.load(Ordering::Relaxed);
            if !old.pinned {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                evicted.push((old.key, old.pool));
            }
        }
        self.entries.push(ArenaEntry {
            key,
            pool,
            bytes,
            last_used: AtomicU64::new(clock),
            uses: AtomicU64::new(uses),
            pinned,
            epoch: self.current_epoch.load(Ordering::Relaxed),
        });
        self.resident_bytes += bytes;
        evicted.extend(self.enforce_budget(Some(clock)));
        evicted
    }

    /// Evicts policy-chosen unpinned entries until the budget fits;
    /// `protect` marks a `last_used` stamp that must survive (the entry
    /// just inserted). Candidates are offered to the policy in entry
    /// order, so [`crate::eviction::Lru`]'s first-on-ties choice matches
    /// the pre-policy arena's victim order exactly. Returns the evicted
    /// entries in eviction order.
    fn enforce_budget(&mut self, protect: Option<u64>) -> Vec<(PoolKey, Arc<MrrPool>)> {
        let mut evicted = Vec::new();
        while self.resident_bytes > self.capacity_bytes {
            let candidates: Vec<(usize, EvictionMeta)> = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.pinned && Some(e.last_used.load(Ordering::Relaxed)) != protect)
                .map(|(i, e)| {
                    (
                        i,
                        EvictionMeta {
                            last_used: e.last_used.load(Ordering::Relaxed),
                            uses: e.uses.load(Ordering::Relaxed),
                            bytes: e.bytes,
                        },
                    )
                })
                .collect();
            if candidates.is_empty() {
                break; // only pinned/protected entries left
            }
            let metas: Vec<EvictionMeta> = candidates.iter().map(|(_, m)| *m).collect();
            let Some(choice) = self.policy.select_victim(&metas) else {
                break; // the policy declined: stop, stay over budget
            };
            let entry = self.entries.remove(candidates[choice].0);
            self.resident_bytes -= entry.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            evicted.push((entry.key, entry.pool));
        }
        evicted
    }

    /// Bytes currently resident (a maintained total, not a fold).
    pub fn bytes(&self) -> usize {
        self.resident_bytes
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Pools currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the arena holds no pools.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every cached pool (counters are preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.resident_bytes = 0;
    }

    /// Changes the byte budget, evicting least-recently-used unpinned
    /// entries until the arena fits (the most recent unpinned entry is
    /// kept if it is all that remains). Returns the evicted entries.
    pub fn set_capacity(&mut self, capacity_bytes: usize) -> Vec<(PoolKey, Arc<MrrPool>)> {
        self.capacity_bytes = capacity_bytes;
        let newest = self
            .entries
            .iter()
            .map(|e| e.last_used.load(Ordering::Relaxed))
            .max();
        self.enforce_budget(newest)
    }

    /// Drops every *sampled* (unpinned) pool, keeping injected ones.
    /// Called when the graph or probability table changes: pools sampled
    /// from the old inputs must not serve the new ones (and must not be
    /// spilled anywhere — they are stale, not cold).
    pub fn evict_unpinned(&mut self) {
        let before = self.entries.len();
        self.entries.retain(|e| e.pinned);
        self.resident_bytes = self.entries.iter().map(|e| e.bytes).sum();
        self.evictions
            .fetch_add((before - self.entries.len()) as u64, Ordering::Relaxed);
    }

    /// Drops every unpinned pool stamped at epoch ≥ `cutoff`. Called when
    /// the lineage diverges from a recorded chain at `cutoff`: entries on
    /// the abandoned branch were sampled from a graph that is not an
    /// ancestor of the new head, so they are unrepairable — stale entries
    /// *below* the divergence stay, still dirty-repairable.
    pub fn evict_epochs_from(&mut self, cutoff: u64) {
        let before = self.entries.len();
        self.entries.retain(|e| e.pinned || e.epoch < cutoff);
        self.resident_bytes = self.entries.iter().map(|e| e.bytes).sum();
        self.evictions
            .fetch_add((before - self.entries.len()) as u64, Ordering::Relaxed);
    }

    /// Occupancy and cumulative counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            entries: self.len(),
            bytes: self.resident_bytes,
            capacity_bytes: self.capacity_bytes,
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            shards: 1,
            stale: self.entries.iter().filter(|e| !self.servable(e)).count(),
        }
    }

    /// Exports (and removes) every entry for re-sharding, preserving
    /// recency stamps, hit counts, and pins. Counters stay behind — the
    /// caller moves them with [`Self::absorb_counters`].
    pub(crate) fn drain(&mut self) -> Vec<DrainedEntry> {
        self.resident_bytes = 0;
        self.entries
            .drain(..)
            .map(|e| DrainedEntry {
                key: e.key,
                pool: e.pool,
                last_used: e.last_used.load(Ordering::Relaxed),
                uses: e.uses.load(Ordering::Relaxed),
                pinned: e.pinned,
                epoch: e.epoch,
            })
            .collect()
    }

    /// Re-inserts a drained entry verbatim: no eviction, no counter
    /// bumps, stamps and pin carried over. The clock is advanced past the
    /// restored stamp so future touches stay strictly newer.
    pub(crate) fn restore(&mut self, entry: DrainedEntry) {
        let bytes = entry.pool.memory_bytes();
        self.clock.fetch_max(entry.last_used, Ordering::Relaxed);
        self.resident_bytes += bytes;
        self.entries.push(ArenaEntry {
            key: entry.key,
            pool: entry.pool,
            bytes,
            last_used: AtomicU64::new(entry.last_used),
            uses: AtomicU64::new(entry.uses),
            pinned: entry.pinned,
            epoch: entry.epoch,
        });
    }

    /// Folds another arena's cumulative counters into this one — used
    /// when re-sharding collapses shards so `lookups == hits + misses`
    /// stays lossless across the reconfiguration.
    pub(crate) fn absorb_counters(&mut self, stats: ArenaStats, clock: u64) {
        self.lookups.fetch_add(stats.lookups, Ordering::Relaxed);
        self.hits.fetch_add(stats.hits, Ordering::Relaxed);
        self.misses.fetch_add(stats.misses, Ordering::Relaxed);
        self.evictions.fetch_add(stats.evictions, Ordering::Relaxed);
        self.clock.fetch_max(clock, Ordering::Relaxed);
    }

    /// The current recency clock value (for [`Self::absorb_counters`]).
    pub(crate) fn clock(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_sampler::testkit::fig1;

    fn pool(theta: usize, seed: u64) -> Arc<MrrPool> {
        let (g, table, campaign) = fig1();
        Arc::new(MrrPool::generate(&g, &table, &campaign, theta, seed))
    }

    fn key(label: &str, pool: &MrrPool) -> PoolKey {
        PoolKey::external(label, pool)
    }

    #[test]
    fn hit_refreshes_recency() {
        // One seed ⇒ equal byte sizes, so the budget fits exactly two.
        let a = pool(500, 1);
        let bytes = a.memory_bytes();
        let ka = key("a", &a);
        let kb = key("b", &a);
        let kc = key("c", &a);
        let mut arena = PoolArena::new(2 * bytes + 8);
        arena.insert(ka.clone(), a);
        arena.insert(kb.clone(), pool(500, 1));
        // Touch "a" so "b" becomes the LRU victim.
        assert!(arena.get(&ka).is_some());
        arena.insert(kc.clone(), pool(500, 1));
        assert!(arena.get(&ka).is_some());
        assert!(arena.get(&kb).is_none());
        let stats = arena.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.lookups, stats.hits + stats.misses);
    }

    #[test]
    fn oversized_pool_survives_its_own_insert() {
        let big = pool(1000, 4);
        let kbig = key("big", &big);
        let mut arena = PoolArena::new(0);
        arena.insert(kbig.clone(), big);
        assert_eq!(arena.len(), 1);
        assert!(arena.get(&kbig).is_some());
        // The next insert evicts it — an oversized pool is served, never
        // retained.
        let next = pool(500, 5);
        let knext = key("next", &next);
        arena.insert(knext, next);
        assert_eq!(arena.len(), 1);
        assert!(arena.get(&kbig).is_none());
    }

    /// A zero-byte budget is pass-through, not a panic: every insert
    /// serves its own request and displaces the previous entry.
    #[test]
    fn zero_budget_is_passthrough() {
        let mut arena = PoolArena::new(0);
        for s in 0..4u64 {
            let p = pool(300, s);
            let k = key("zb", &p);
            let evicted = arena.insert_evicting(k.clone(), p);
            assert!(arena.get(&k).is_some(), "seed {s} must serve its insert");
            assert!(evicted.len() <= 1);
            assert_eq!(arena.len(), 1);
        }
        assert_eq!(arena.stats().evictions, 3);
    }

    /// Repeated touches must keep reordering the LRU queue: the victim is
    /// always the least recently *used* entry, not the least recently
    /// inserted one.
    #[test]
    fn eviction_order_tracks_repeated_touches() {
        let a = pool(400, 1);
        let bytes = a.memory_bytes();
        let keys: Vec<PoolKey> = ["a", "b", "c"].iter().map(|l| key(l, &a)).collect();
        let mut arena = PoolArena::new(3 * bytes + 8);
        arena.insert(keys[0].clone(), a.clone());
        arena.insert(keys[1].clone(), pool(400, 1));
        arena.insert(keys[2].clone(), pool(400, 1));
        // Touch a, then b, then a again: recency order is now c < b < a.
        arena.get(&keys[0]);
        arena.get(&keys[1]);
        arena.get(&keys[0]);
        let evicted = arena.insert_evicting(key("d", &a), pool(400, 1));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, keys[2], "c was least recently used");
        // Next victim is b, then a.
        let evicted = arena.insert_evicting(key("e", &a), pool(400, 1));
        assert_eq!(evicted[0].0, keys[1]);
        let evicted = arena.insert_evicting(key("f", &a), pool(400, 1));
        assert_eq!(evicted[0].0, keys[0]);
    }

    /// The PR-5 pin bugfix: re-inserting over a pinned key must not strip
    /// the pin — byte pressure afterwards must still never evict it.
    #[test]
    fn replace_preserves_the_pin_under_pressure() {
        let pinned = pool(500, 1);
        let bytes = pinned.memory_bytes();
        let kp = key("pinned", &pinned);
        let mut arena = PoolArena::new(bytes + 8);
        arena.insert_pinned(kp.clone(), Arc::clone(&pinned));
        // The regression: a plain (unpinned) insert over the same key used
        // to drop the flag, arming eviction of the session's default pool.
        arena.insert(kp.clone(), pinned);
        // Byte pressure: each new pool displaces the previous *sampled*
        // one, never the pinned entry.
        for s in 10..13u64 {
            let p = pool(500, s);
            arena.insert_evicting(key("filler", &p), p);
        }
        assert!(
            arena.get(&kp).is_some(),
            "pinned pool evicted after a same-key replace"
        );
    }

    /// The PR-5 stats bugfix: a same-key replace displaces the old pool —
    /// it must be counted and handed back for spilling, and the running
    /// byte total must not double-count the key.
    #[test]
    fn replace_counts_and_returns_the_displaced_pool() {
        let p = pool(400, 2);
        let bytes = p.memory_bytes();
        let k = key("dup", &p);
        let mut arena = PoolArena::new(usize::MAX);
        assert!(arena.insert_evicting(k.clone(), Arc::clone(&p)).is_empty());
        let displaced = arena.insert_evicting(k.clone(), Arc::clone(&p));
        assert_eq!(displaced.len(), 1, "the replaced pool must be handed back");
        assert_eq!(displaced[0].0, k);
        let stats = arena.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, bytes, "replace must not double-count bytes");
        assert_eq!(stats.evictions, 1, "the displacement must be counted");
    }

    /// The maintained byte total must track every mutation path.
    #[test]
    fn resident_bytes_tracks_all_mutations() {
        let p = pool(300, 7);
        let bytes = p.memory_bytes();
        let mut arena = PoolArena::new(usize::MAX);
        arena.insert(key("a", &p), Arc::clone(&p));
        arena.insert_pinned(key("b", &p), Arc::clone(&p));
        assert_eq!(arena.bytes(), 2 * bytes);
        arena.evict_unpinned();
        assert_eq!(arena.bytes(), bytes);
        arena.clear();
        assert_eq!(arena.bytes(), 0);
        arena.insert(key("c", &p), Arc::clone(&p));
        let evicted = arena.set_capacity(0);
        assert_eq!(evicted.len(), 0, "newest entry survives a zero budget");
        assert_eq!(arena.bytes(), bytes);
        arena.insert(key("d", &p), p);
        assert_eq!(arena.bytes(), bytes, "old entry evicted, total adjusted");
    }

    /// The PR-4 regression: two different externally loaded pools under
    /// the same label and θ must not alias one arena entry.
    #[test]
    fn external_keys_fingerprint_pool_content() {
        let p1 = pool(500, 1);
        let p2 = pool(500, 2); // same θ, different seed ⇒ different content
        assert_ne!(p1.fingerprint(), p2.fingerprint());
        let k1 = PoolKey::external("same-label", &p1);
        let k2 = PoolKey::external("same-label", &p2);
        assert_ne!(k1, k2, "same label + θ must not alias different pools");

        let mut arena = PoolArena::new(usize::MAX);
        arena.insert(k1.clone(), Arc::clone(&p1));
        arena.insert(k2.clone(), Arc::clone(&p2));
        assert_eq!(arena.len(), 2);
        let got1 = arena.get(&k1).unwrap();
        let got2 = arena.get(&k2).unwrap();
        assert_eq!(got1.fingerprint(), p1.fingerprint());
        assert_eq!(got2.fingerprint(), p2.fingerprint());

        // Identical content under the same label still dedups.
        let p1_again = pool(500, 1);
        assert_eq!(PoolKey::external("same-label", &p1_again), k1);
    }

    /// The epoch gate: advancing the current epoch turns resident
    /// sampled entries into misses (stale, repair-only via `get_any`)
    /// without evicting them; pinned entries are epoch-exempt.
    #[test]
    fn epoch_advance_stales_sampled_entries_not_pins() {
        let p = pool(300, 1);
        let ks = PoolKey::sampled("{}".into(), 300, 1);
        let kp = key("pin", &p);
        let mut arena = PoolArena::new(usize::MAX);
        arena.insert(ks.clone(), Arc::clone(&p));
        arena.insert_pinned(kp.clone(), Arc::clone(&p));
        assert!(arena.get(&ks).is_some());

        arena.set_current_epoch(1);
        assert!(arena.get(&ks).is_none(), "stale entry must not serve");
        assert!(arena.get_recheck(&ks).is_none());
        assert!(arena.get(&kp).is_some(), "pinned entry is epoch-exempt");
        let stats = arena.stats();
        assert_eq!(stats.entries, 2, "stale entries stay resident");
        assert_eq!(stats.stale, 1);
        assert_eq!(stats.lookups, stats.hits + stats.misses);

        // The repair path still reaches it, with its stamped epoch.
        let (back, epoch) = arena.get_any(&ks).expect("stale entry retrievable");
        assert_eq!(epoch, 0);
        assert_eq!(back.fingerprint(), p.fingerprint());

        // Re-inserting (a repaired pool) stamps the current epoch and
        // makes the key servable again.
        arena.insert(ks.clone(), Arc::clone(&p));
        assert!(arena.get(&ks).is_some());
        assert_eq!(arena.stats().stale, 0);

        // Divergence drops unpinned entries at or past the cutoff.
        arena.set_current_epoch(2);
        arena.evict_epochs_from(1);
        assert!(arena.get_any(&ks).is_none(), "epoch-1 entry diverged away");
        assert!(arena.get(&kp).is_some(), "pin survives divergence");
    }

    #[test]
    fn pool_key_serde_round_trip() {
        let keys = [
            PoolKey::sampled("{\"pieces\":[]}".into(), 1000, 42),
            PoolKey::external("file.pool", &pool(200, 3)),
        ];
        for k in keys {
            let json = serde_json::to_string(&k).unwrap();
            let back: PoolKey = serde_json::from_str(&json).unwrap();
            assert_eq!(k, back);
        }
    }
}
