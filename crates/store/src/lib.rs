//! # oipa-store
//!
//! A tiered, persistent, **concurrent** pool store: a lock-striped
//! in-memory arena (tier 0) backed by an optional on-disk tier of
//! region-packed, checksummed pools (tier 1).
//!
//! Sampling θ MRR sets dominates end-to-end latency (the paper's "sample
//! time" row; the service bench measures ~126–137× warm-over-cold on the
//! seeded medium instance), yet a memory-only arena loses every warm pool
//! to process exit and to byte pressure. This crate keeps them:
//!
//! * **Tier 0 — the sharded arena**: N lock-striped [`PoolArena`] shards
//!   (key-hash routed, per-shard byte budgets summing exactly to the
//!   configured total) caching [`MrrPool`]s keyed by [`PoolKey`].
//!   Victim selection is delegated to a pluggable [`EvictionPolicy`]
//!   ([`eviction::Lru`] — bitwise-compatible with the historical order —
//!   or [`eviction::Lfu`]), selected via [`StoreConfig::eviction`].
//! * **Tier 1 — [`DiskTier`]**: a store directory (an `index.json`
//!   manifest plus a small number of fixed-capacity **region** files,
//!   each an append-only pack of CRC-checksummed pools) with its own
//!   byte budget and LRU eviction. Entries evicted from memory spill
//!   here; an arena miss consults disk before anyone resamples;
//!   reopening the directory after a restart serves yesterday's pools at
//!   disk speed. A v1 (file-per-key) directory migrates transparently on
//!   first open.
//!
//! Concurrency: every cache operation takes `&self` — [`PoolStore`] is
//! `Send + Sync`, so one store can sit behind an `Arc` and serve any
//! number of threads. A memory lookup or insert locks exactly one shard
//! (hits share a read lock with atomic recency/counters; readers never
//! block each other), so requests for different keys proceed in parallel
//! and only true same-shard collisions contend. Every disk operation is
//! single-writer (a mutex on the tier). Lock order is always disk tier →
//! arena shard lock, and no shard lock is ever held while acquiring the
//! disk lock, so the two can't deadlock.
//!
//! Durability rules: pool payloads are appended to the newest region and
//! synced, then committed by an atomic temp+sync+rename manifest rewrite
//! (the rename is the ack point — a torn append is just unindexed bytes
//! past the region's committed watermark, truncated by the next open);
//! every read verifies the pool binio v2 CRC-32 trailer; anything
//! corrupt or unaccounted for is moved to `quarantine/` — recovery never
//! fails an open and corruption is never served. Disk reads batch their
//! LRU stamps in memory (flushed on the next write or on drop) instead
//! of rewriting the manifest per get. A [`DiskTier::set_lineage`]
//! fingerprint *chain* ties a directory to the (graph, probability
//! table) its pools were sampled from — epoch by epoch, so a graph
//! delta marks cached pools stale-but-repairable instead of purging
//! them, while pools from an unrelated instance are never served.
//!
//! ## The `StoreIo` seam and degraded mode
//!
//! The disk tier never calls `std::fs` directly: every byte it moves
//! goes through the [`StoreIo`] trait ([`io::RealIo`] in production).
//! That seam is what makes the crash-safety claims *testable* — the
//! [`io::FaultIo`] wrapper injects ENOSPC/EIO, torn writes and appends,
//! lost renames, full outages, and seeded **crash points** (freeze the
//! directory exactly as a `kill -9` after the Nth operation would),
//! and the test tree replays recovery against every one of them. Wire a
//! custom seam in with [`StoreConfig::with_io`].
//!
//! Failures seen through the seam never fail a request. An I/O error
//! trips the tier's [`TierHealth`] machine into **degraded mode**:
//! lookups and puts short-circuit to misses (callers fall back to the
//! memory tier or resample — answers are bitwise-identical either way),
//! and a request-ticked, exponentially backed-off reopen probe returns
//! the tier to service once the disk recovers. Health is surfaced
//! through [`StoreStats::disk_health`] and [`StatsSnapshot`].
//!
//! ```
//! use oipa_store::{PoolKey, PoolStore, PoolTier, StoreConfig};
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join("oipa-store-doc");
//! let _ = std::fs::remove_dir_all(&dir);
//! let (g, table, campaign) = oipa_sampler::testkit::fig1();
//! let pool = Arc::new(oipa_sampler::MrrPool::generate(&g, &table, &campaign, 500, 7));
//! let key = PoolKey::sampled("doc".into(), 500, 7);
//!
//! // Write-through: the insert lands in memory AND on disk. Note the
//! // shared references — lookups and inserts are `&self`.
//! let store = PoolStore::open(StoreConfig::new(&dir)).unwrap();
//! store.insert(key.clone(), Arc::clone(&pool));
//! assert!(matches!(store.get(&key), Some((_, PoolTier::Memory))));
//! drop(store);
//!
//! // A fresh process finds the pool on disk — no resampling.
//! let reopened = PoolStore::open(StoreConfig::new(&dir)).unwrap();
//! let (back, tier) = reopened.get(&key).unwrap();
//! assert_eq!(tier, PoolTier::Disk);
//! assert_eq!(back.fingerprint(), pool.fingerprint());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod arena;
mod disk;
pub mod eviction;
pub mod health;
pub mod io;
mod shard;

pub use arena::{ArenaStats, PoolArena, PoolKey};
pub use disk::{
    DiskStats, DiskTier, GcReport, ManifestEntry, OpenReport, PurgeRecord, RegionRow, VerifyReport,
    DEFAULT_REGION_BYTES, MANIFEST_FILE, QUARANTINE_DIR, REGION_PREFIX, REGION_SUFFIX,
};
pub use eviction::{EvictionMeta, EvictionPolicy, EvictionPolicyKind};
pub use health::{TierHealth, TierHealthSnapshot, HEALTH_DEGRADED, HEALTH_OK};
pub use io::{DynStoreIo, FaultIo, FaultSchedule, RealIo, StoreIo};
pub use shard::DEFAULT_SHARDS;

use oipa_sampler::MrrPool;
use serde::{Deserialize, Serialize};
use shard::ShardedArena;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

/// Default memory-tier byte budget (≈256 MiB).
pub const DEFAULT_MEM_BYTES: usize = 256 << 20;

/// Default disk-tier byte budget (≈4 GiB).
pub const DEFAULT_DISK_BYTES: u64 = 4 << 30;

/// Errors opening or administering a store directory. Cache *lookups*
/// never error — a broken tier degrades to a miss.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure on the store directory or manifest.
    Io {
        /// What was being done.
        what: String,
        /// The underlying error.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { what, detail } => write!(f, "store io error: {what}: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Convenience result alias for this crate.
pub type StoreResult<T> = std::result::Result<T, StoreError>;

/// Configuration of a tiered store.
#[derive(Clone)]
pub struct StoreConfig {
    /// The store directory (created if absent).
    pub dir: PathBuf,
    /// Memory-tier byte budget override. `None` (the default) leaves the
    /// arena's existing budget alone when attaching to a live store
    /// ([`DEFAULT_MEM_BYTES`] when opening a fresh one) — attaching a
    /// disk tier must not silently rewrite a budget the caller already
    /// chose.
    pub mem_bytes: Option<usize>,
    /// Disk-tier byte budget (default [`DEFAULT_DISK_BYTES`]).
    pub disk_bytes: u64,
    /// Memory-tier shard (lock stripe) count override. `None` (the
    /// default) keeps the arena's current striping
    /// ([`DEFAULT_SHARDS`] when opening a fresh store).
    pub shards: Option<usize>,
    /// Memory-tier eviction policy override. `None` (the default) keeps
    /// the arena's current policy (LRU when opening a fresh store).
    pub eviction: Option<EvictionPolicyKind>,
    /// Disk-tier region file capacity (default [`DEFAULT_REGION_BYTES`]).
    pub region_bytes: u64,
    /// Write inserts to disk immediately (default `true`). When `false`
    /// pools reach disk only when memory pressure evicts them — cheaper
    /// writes, but pools resident at process exit are lost.
    pub write_through: bool,
    /// The I/O seam the disk tier runs on. `None` (the default) is the
    /// real filesystem; tests and the `--fault-schedule` dev flag inject
    /// a [`FaultIo`] here.
    pub io: Option<DynStoreIo>,
}

impl std::fmt::Debug for StoreConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreConfig")
            .field("dir", &self.dir)
            .field("mem_bytes", &self.mem_bytes)
            .field("disk_bytes", &self.disk_bytes)
            .field("shards", &self.shards)
            .field("eviction", &self.eviction)
            .field("region_bytes", &self.region_bytes)
            .field("write_through", &self.write_through)
            .field("io", &self.io.as_ref().map(|_| "<custom StoreIo>"))
            .finish()
    }
}

impl StoreConfig {
    /// A config with default budgets and write-through enabled.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            mem_bytes: None,
            disk_bytes: DEFAULT_DISK_BYTES,
            shards: None,
            eviction: None,
            region_bytes: DEFAULT_REGION_BYTES,
            write_through: true,
            io: None,
        }
    }

    /// Runs the disk tier on a custom [`StoreIo`] (fault injection).
    pub fn with_io(mut self, io: DynStoreIo) -> Self {
        self.io = Some(io);
        self
    }
}

/// Which tier answered a [`PoolStore::get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolTier {
    /// Tier 0: the in-memory arena.
    Memory,
    /// Tier 1: a disk region entry (now promoted to memory).
    Disk,
}

impl PoolTier {
    /// The wire name (`memory` / `disk`).
    pub fn name(self) -> &'static str {
        match self {
            PoolTier::Memory => "memory",
            PoolTier::Disk => "disk",
        }
    }
}

impl std::fmt::Display for PoolTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Combined occupancy/counter snapshot of both tiers.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StoreStats {
    /// Memory-tier aggregate stats (per-shard counters summed
    /// losslessly; `mem.shards` carries the stripe count).
    pub mem: ArenaStats,
    /// Per-shard memory-tier stats, in shard order.
    pub mem_shards: Vec<ArenaStats>,
    /// The active eviction-policy name (`lru` / `lfu`).
    pub policy: String,
    /// Disk-tier stats (absent on memory-only stores).
    pub disk: Option<DiskStats>,
    /// Disk-tier health (absent on memory-only stores).
    pub disk_health: Option<TierHealthSnapshot>,
}

/// Schema identifier stamped into every [`StatsSnapshot`] (v4 adds the
/// epoch-lineage surface: `stale` counts on the memory tier,
/// `stale_entries`/`stale_dropped`/`purges`/`last_purge` on the disk
/// tier; v3 added GC run/duration counters to `disk` and the
/// `degradations` transition counter to `disk_health`; v2 added
/// per-shard memory stats, the eviction-policy name, and region-packed
/// disk counters).
pub const STATS_SCHEMA: &str = "oipa.stats/v4";

/// The *wire* form of a store's counters: a versioned, serde-round-trip
/// snapshot of both tiers shared by every surface that ships stats over
/// a boundary — the `oipa-server` `GET /stats` endpoint serializes one,
/// `oipa-cli bench serve` deserializes it back, and the schema tag lets
/// either side reject a snapshot from an incompatible peer.
///
/// [`StoreStats`] is the in-process view; this type exists because the
/// arena/disk counters previously had no deserialization surface at all,
/// so nothing outside the process could read them back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Schema identifier ([`STATS_SCHEMA`]); consumers should reject a
    /// snapshot carrying any other value.
    pub schema: String,
    /// Memory-tier aggregate occupancy and counters.
    pub mem: ArenaStats,
    /// Per-shard memory-tier occupancy and counters, in shard order.
    pub mem_shards: Vec<ArenaStats>,
    /// The active eviction-policy name (`lru` / `lfu`).
    pub policy: String,
    /// Disk-tier occupancy and counters (absent on memory-only stores).
    pub disk: Option<DiskStats>,
    /// Disk-tier health (absent on memory-only stores).
    pub disk_health: Option<TierHealthSnapshot>,
}

impl StatsSnapshot {
    /// Whether the snapshot carries the schema this build understands.
    pub fn schema_ok(&self) -> bool {
        self.schema == STATS_SCHEMA
    }
}

impl From<StoreStats> for StatsSnapshot {
    fn from(s: StoreStats) -> Self {
        StatsSnapshot {
            schema: STATS_SCHEMA.to_string(),
            mem: s.mem,
            mem_shards: s.mem_shards,
            policy: s.policy,
            disk: s.disk,
            disk_health: s.disk_health,
        }
    }
}

/// The tiered pool store: sharded memory arena in front, optional disk
/// tier behind. All cache operations take `&self` (the store is `Send +
/// Sync`); see the crate docs for the locking discipline.
pub struct PoolStore {
    /// Lock-striped memory tier: each operation locks only the shard its
    /// key hashes to (readers share; inserts/evictions are exclusive per
    /// shard).
    arena: ShardedArena,
    /// Single-writer discipline for every disk operation (reads mutate
    /// recency and may quarantine, so there is no read-only disk path).
    disk: Option<Mutex<DiskTier>>,
    /// The store's view of the instance-fingerprint chain (kept even on
    /// memory-only stores, where there is no manifest to record it).
    /// Lock order: this lock → disk lock → shard lock; only
    /// [`Self::set_lineage`] ever holds it across another lock.
    lineage: Mutex<Vec<u64>>,
    write_through: bool,
}

impl PoolStore {
    /// A memory-only store (the pre-store service behavior): one shard,
    /// LRU eviction.
    pub fn memory_only(mem_bytes: usize) -> Self {
        PoolStore::memory_only_with(mem_bytes, DEFAULT_SHARDS, EvictionPolicyKind::Lru)
    }

    /// A memory-only store with an explicit shard count and eviction
    /// policy.
    pub fn memory_only_with(mem_bytes: usize, shards: usize, eviction: EvictionPolicyKind) -> Self {
        PoolStore {
            arena: ShardedArena::new(mem_bytes, shards, eviction),
            disk: None,
            lineage: Mutex::new(Vec::new()),
            write_through: false,
        }
    }

    /// Opens a tiered store over a directory, recovering the manifest
    /// (see [`DiskTier::open`]).
    pub fn open(config: StoreConfig) -> StoreResult<Self> {
        let mut store = PoolStore::memory_only_with(
            config.mem_bytes.unwrap_or(DEFAULT_MEM_BYTES),
            config.shards.unwrap_or(DEFAULT_SHARDS),
            config.eviction.unwrap_or_default(),
        );
        store.attach_disk(config)?;
        Ok(store)
    }

    /// Attaches (or replaces) the disk tier on an existing store,
    /// keeping the memory tier's contents. The memory budget, shard
    /// count, and eviction policy change only when the config names them
    /// explicitly; entries evicted by a smaller budget (or re-striping)
    /// spill to the new disk tier. Exclusive (`&mut self`): tier
    /// topology is configuration, not serving.
    pub fn attach_disk(&mut self, config: StoreConfig) -> StoreResult<()> {
        let io = config.io.unwrap_or_else(RealIo::arc);
        let mut disk = DiskTier::open_with(config.dir, config.disk_bytes, config.region_bytes, io)?;
        let shards = config.shards.unwrap_or_else(|| self.arena.shard_count());
        let eviction = config.eviction.unwrap_or_else(|| self.arena.policy());
        disk.set_eviction_label(eviction.name());
        // Adopt the directory's recorded lineage: the memory tier must
        // agree with the manifest on which epoch serves.
        *lock_lineage(&self.lineage) = disk.lineage().to_vec();
        self.arena.set_current_epoch(disk.current_epoch());
        if shards != self.arena.shard_count() || eviction != self.arena.policy() {
            let spilled = self.arena.reconfigure(shards, eviction);
            spill(&mut disk, spilled);
        }
        self.disk = Some(Mutex::new(disk));
        self.write_through = config.write_through;
        if let Some(mem_bytes) = config.mem_bytes {
            self.set_mem_capacity(mem_bytes);
        }
        Ok(())
    }

    /// Whether a disk tier is attached.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// How many lock stripes the memory tier is sharded over.
    pub fn shard_count(&self) -> usize {
        self.arena.shard_count()
    }

    /// The shard index a key routes to (stable for a given shard count —
    /// the contention bench uses this to construct same-shard and
    /// spread key sets).
    pub fn shard_of(&self, key: &PoolKey) -> usize {
        self.arena.shard_of(key)
    }

    /// The active memory-tier eviction policy's name (`lru` / `lfu`).
    pub fn policy_name(&self) -> &'static str {
        self.arena.policy().name()
    }

    /// The disk tier, when attached (admin surface: `entries`, `verify`,
    /// `gc`, `open_report`). The guard holds the tier's single-writer
    /// lock for its lifetime.
    pub fn disk(&self) -> Option<MutexGuard<'_, DiskTier>> {
        self.disk.as_ref().map(|d| lock_disk(d))
    }

    /// Compat wrapper over [`Self::set_lineage`]: a single fingerprint
    /// is a root-only lineage (a cold instance load with no delta
    /// history).
    pub fn set_instance(&self, fingerprint: u64) -> StoreResult<bool> {
        if fingerprint == 0 {
            self.set_lineage(&[])
        } else {
            self.set_lineage(&[fingerprint])
        }
    }

    /// Ties both tiers to an instance-fingerprint chain (see
    /// [`DiskTier::set_lineage`] for the reconciliation rules). On the
    /// memory tier: a shared root keeps resident pools — entries at the
    /// new head's epoch serve, older ones go stale (repairable through
    /// [`Self::get_any`]), entries past the common prefix are dropped —
    /// while a different root drops every sampled entry (pinned pools
    /// stay; the caller owns them). Returns whether a purge happened on
    /// either tier.
    pub fn set_lineage(&self, lineage: &[u64]) -> StoreResult<bool> {
        let mut recorded = lock_lineage(&self.lineage);
        let prefix = disk::common_prefix(&recorded, lineage);
        let diverged_at_root = prefix == 0 && !recorded.is_empty() && !lineage.is_empty();
        let mut purged = false;
        if let Some(disk) = self.disk.as_ref() {
            purged = lock_disk(disk).set_lineage(lineage)?;
        }
        if diverged_at_root {
            let resident = self.arena.stats().entries;
            self.arena.evict_unpinned();
            purged = purged || self.arena.stats().entries < resident;
        } else if prefix < recorded.len() {
            // Shared root, abandoned tail: resident pools sampled past
            // the divergence are unrepairable.
            self.arena.evict_epochs_from(prefix as u64);
        }
        self.arena
            .set_current_epoch(lineage.len().saturating_sub(1) as u64);
        *recorded = lineage.to_vec();
        Ok(purged)
    }

    /// The store's recorded instance-fingerprint chain (empty while
    /// unset).
    pub fn lineage(&self) -> Vec<u64> {
        lock_lineage(&self.lineage).clone()
    }

    /// The lineage epoch pools currently serve at.
    pub fn current_epoch(&self) -> u64 {
        self.arena.current_epoch()
    }

    /// Looks up a pool: memory first, then disk. A disk hit is promoted
    /// into the memory tier (evicted entries spill back out), so repeat
    /// lookups of a hot key stay at memory speed.
    pub fn get(&self, key: &PoolKey) -> Option<(Arc<MrrPool>, PoolTier)> {
        if let Some(pool) = self.arena.get(key) {
            return Some((pool, PoolTier::Memory));
        }
        self.get_from_disk(key, true)
    }

    /// [`Self::get`] for double-check paths (the caller just missed on
    /// this key and has since held a coordination lock): hits — and the
    /// work they do — count normally, but a re-miss counts nothing on
    /// either tier (the preceding `get` already recorded it), so stats
    /// stay one-miss-per-request whatever the interleaving.
    pub fn get_recheck(&self, key: &PoolKey) -> Option<(Arc<MrrPool>, PoolTier)> {
        if let Some(pool) = self.arena.get_recheck(key) {
            return Some((pool, PoolTier::Memory));
        }
        self.get_from_disk(key, false)
    }

    /// Fetches a pool **at whatever epoch it carries** — the delta-repair
    /// retrieval path, for callers that know the dirty history between
    /// the returned epoch and the head and can repair the pool forward.
    /// Memory first, then disk (CRC-verified like any disk read). No
    /// promotion and no lookup counting: the caller repairs and
    /// re-inserts at the current epoch immediately, which is the write
    /// that lands the repaired pool in both tiers.
    pub fn get_any(&self, key: &PoolKey) -> Option<(Arc<MrrPool>, u64, PoolTier)> {
        if let Some((pool, epoch)) = self.arena.get_any(key) {
            return Some((pool, epoch, PoolTier::Memory));
        }
        let mut disk = lock_disk(self.disk.as_ref()?);
        // Re-check memory under the disk lock, mirroring `get`: a racer
        // may have promoted (or repaired) the key while we waited.
        if let Some((pool, epoch)) = self.arena.get_any(key) {
            return Some((pool, epoch, PoolTier::Memory));
        }
        let (pool, epoch) = disk.get_any(key)?;
        Some((Arc::new(pool), epoch, PoolTier::Disk))
    }

    /// The tier-1 half of a lookup: consults the disk tier and promotes
    /// a hit into memory.
    fn get_from_disk(&self, key: &PoolKey, count_miss: bool) -> Option<(Arc<MrrPool>, PoolTier)> {
        let mut disk = lock_disk(self.disk.as_ref()?);
        // Re-check memory under the disk lock: threads racing to promote
        // one cold key queue here, and every racer after the first must
        // take the promoted entry instead of re-reading (and re-CRCing,
        // and re-inserting) the region entry. A hit counts; the expected
        // re-miss does not (the caller's arena lookup already did).
        if let Some(pool) = self.arena.get_recheck(key) {
            return Some((pool, PoolTier::Memory));
        }
        let pool = Arc::new(if count_miss {
            disk.get(key)?
        } else {
            disk.get_recheck(key)?
        });
        // Promote unless the pool alone exceeds the memory budget — an
        // oversized pool is served, never cached (it could only displace
        // everything else and then be evicted itself). The disk lock is
        // held across the promotion so a racing insert of the same key
        // keeps memory and disk recency coherent.
        if pool.memory_bytes() <= self.arena.capacity_bytes() {
            let evicted = self.arena.insert_evicting(key.clone(), Arc::clone(&pool));
            spill(&mut disk, evicted);
        }
        Some((pool, PoolTier::Disk))
    }

    /// Inserts a sampled pool. With a disk tier and write-through the
    /// pool is persisted immediately; entries the insert evicts from
    /// memory spill to disk either way. A pool larger than the memory
    /// budget is not cached in memory (it is still persisted): the
    /// caller keeps its `Arc` and serves from that.
    pub fn insert(&self, key: PoolKey, pool: Arc<MrrPool>) {
        let oversized = pool.memory_bytes() > self.arena.capacity_bytes();
        if self.write_through || oversized {
            // These paths write the pool now: disk lock first (the
            // crate-wide lock order), held across the arena insert so the
            // publish and its spills stay one atomic disk transaction.
            let mut disk = self.disk.as_ref().map(lock_disk);
            if let Some(disk) = disk.as_deref_mut() {
                disk.put(&key, &pool);
            }
            if oversized {
                // Never resident: served from the caller's Arc, persisted
                // above.
                return;
            }
            let evicted = self.arena.insert_evicting(key, pool);
            if let Some(disk) = disk.as_deref_mut() {
                spill(disk, evicted);
            }
            return;
        }
        // Lazy-write path: a pure memory insert must not queue behind
        // in-flight disk I/O — only take the disk lock when an eviction
        // actually has something to spill (the shard guard is already
        // released by then, preserving the lock order).
        let evicted = self.arena.insert_evicting(key, pool);
        if evicted.is_empty() {
            return;
        }
        if let Some(disk) = self.disk.as_ref() {
            spill(&mut lock_disk(disk), evicted);
        }
    }

    /// Inserts a pool that memory pressure must never evict (an injected
    /// pool the session was built around). Pinned pools stay memory-only
    /// (the caller owns their persistence) — but the *sampled* entries
    /// the insert displaces under byte pressure still spill to disk,
    /// exactly as they would on any other insert.
    pub fn insert_pinned(&self, key: PoolKey, pool: Arc<MrrPool>) {
        let evicted = self.arena.insert_pinned(key, pool);
        if evicted.is_empty() {
            return;
        }
        if let Some(disk) = self.disk.as_ref() {
            spill(&mut lock_disk(disk), evicted);
        }
    }

    /// Replaces the memory-tier byte budget (re-split evenly across the
    /// shards); entries that no longer fit spill to disk.
    pub fn set_mem_capacity(&self, mem_bytes: usize) {
        let mut disk = self.disk.as_ref().map(lock_disk);
        let evicted = self.arena.set_capacity(mem_bytes);
        if let Some(disk) = disk.as_deref_mut() {
            spill(disk, evicted);
        }
    }

    /// Drops every memory-resident pool (disk entries are kept).
    pub fn clear_memory(&self) {
        self.arena.clear();
    }

    /// Drops every *sampled* (unpinned) memory entry without spilling —
    /// called when the sampling inputs change, so the dropped pools are
    /// stale, not cold. Pair with [`Self::set_instance`] to purge the
    /// disk tier of the same staleness.
    pub fn evict_unpinned(&self) {
        self.arena.evict_unpinned();
    }

    /// Flushes any batched disk-tier recency stamps to the manifest (see
    /// [`DiskTier::flush`]). No-op on memory-only stores.
    pub fn flush(&self) -> StoreResult<()> {
        match self.disk.as_ref() {
            Some(disk) => lock_disk(disk).flush(),
            None => Ok(()),
        }
    }

    /// Memory-tier aggregate stats (the historical `arena_stats`
    /// surface; per-shard counters summed losslessly).
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Per-shard memory-tier stats, in shard order.
    pub fn shard_stats(&self) -> Vec<ArenaStats> {
        self.arena.shard_stats()
    }

    /// Both tiers' stats.
    pub fn stats(&self) -> StoreStats {
        let (disk, disk_health) = match self.disk.as_ref() {
            Some(d) => {
                let guard = lock_disk(d);
                (Some(guard.stats()), Some(guard.health()))
            }
            None => (None, None),
        };
        StoreStats {
            mem: self.arena.stats(),
            mem_shards: self.arena.shard_stats(),
            policy: self.arena.policy().name().to_string(),
            disk,
            disk_health,
        }
    }

    /// The disk tier's health, when one is attached. `None` on a
    /// memory-only store (nothing to degrade).
    pub fn health(&self) -> Option<TierHealthSnapshot> {
        self.disk.as_ref().map(|d| lock_disk(d).health())
    }
}

/// Spills arena-evicted entries to the disk tier (the caller already
/// holds the disk lock, keeping the spill single-writer).
fn spill(disk: &mut DiskTier, evicted: Vec<(PoolKey, Arc<MrrPool>)>) {
    for (key, pool) in evicted {
        disk.put(&key, &pool);
    }
}

// Lock helper: a poisoned lock means another thread panicked mid-write.
// The cache's data is a redundant copy of recomputable state (pools are
// resampleable, the disk tier re-verifies everything it reads), so
// serving through a poisoned lock is safe — propagating the panic to
// every other request thread is not. (The arena shards recover the same
// way; see `shard.rs`.)
fn lock_disk(disk: &Mutex<DiskTier>) -> MutexGuard<'_, DiskTier> {
    disk.lock().unwrap_or_else(|e| e.into_inner())
}

fn lock_lineage(lineage: &Mutex<Vec<u64>>) -> MutexGuard<'_, Vec<u64>> {
    lineage.lock().unwrap_or_else(|e| e.into_inner())
}
