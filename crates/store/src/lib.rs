//! # oipa-store
//!
//! A tiered, persistent pool store: the memory arena the `PlannerService`
//! always had (tier 0) backed by an optional on-disk tier of checksummed
//! pool segments (tier 1).
//!
//! Sampling θ MRR sets dominates end-to-end latency (the paper's "sample
//! time" row; the service bench measures ~126–137× warm-over-cold on the
//! seeded medium instance), yet a memory-only arena loses every warm pool
//! to process exit and to byte pressure. This crate keeps them:
//!
//! * **Tier 0 — [`PoolArena`]**: the in-memory LRU cache of [`MrrPool`]s
//!   keyed by [`PoolKey`] and bounded by resident bytes.
//! * **Tier 1 — [`DiskTier`]**: a store directory (an `index.json`
//!   manifest plus one CRC-checksummed segment file per pool) with its
//!   own byte budget and LRU eviction. Entries evicted from memory spill
//!   here; an arena miss consults disk before anyone resamples;
//!   reopening the directory after a restart serves yesterday's pools at
//!   disk speed.
//!
//! Durability rules: segments and the manifest are written to temp files
//! and atomically renamed; every segment read verifies the pool binio v2
//! CRC-32 trailer; anything corrupt or unaccounted for is moved to
//! `quarantine/` — recovery never fails an open and corruption is never
//! served. A [`DiskTier::set_instance`] fingerprint ties a directory to
//! the (graph, probability table) its pools were sampled from, so a
//! store can never serve pools across different inputs.
//!
//! ```
//! use oipa_store::{PoolKey, PoolStore, PoolTier, StoreConfig};
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join("oipa-store-doc");
//! let _ = std::fs::remove_dir_all(&dir);
//! let (g, table, campaign) = oipa_sampler::testkit::fig1();
//! let pool = Arc::new(oipa_sampler::MrrPool::generate(&g, &table, &campaign, 500, 7));
//! let key = PoolKey::sampled("doc".into(), 500, 7);
//!
//! // Write-through: the insert lands in memory AND on disk.
//! let mut store = PoolStore::open(StoreConfig::new(&dir)).unwrap();
//! store.insert(key.clone(), Arc::clone(&pool));
//! assert!(matches!(store.get(&key), Some((_, PoolTier::Memory))));
//!
//! // A fresh process finds the pool on disk — no resampling.
//! let mut reopened = PoolStore::open(StoreConfig::new(&dir)).unwrap();
//! let (back, tier) = reopened.get(&key).unwrap();
//! assert_eq!(tier, PoolTier::Disk);
//! assert_eq!(back.fingerprint(), pool.fingerprint());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod arena;
mod disk;

pub use arena::{ArenaStats, PoolArena, PoolKey};
pub use disk::{
    DiskStats, DiskTier, GcReport, ManifestEntry, OpenReport, VerifyReport, MANIFEST_FILE,
    QUARANTINE_DIR,
};

use oipa_sampler::MrrPool;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;

/// Default memory-tier byte budget (≈256 MiB).
pub const DEFAULT_MEM_BYTES: usize = 256 << 20;

/// Default disk-tier byte budget (≈4 GiB).
pub const DEFAULT_DISK_BYTES: u64 = 4 << 30;

/// Errors opening or administering a store directory. Cache *lookups*
/// never error — a broken tier degrades to a miss.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure on the store directory or manifest.
    Io {
        /// What was being done.
        what: String,
        /// The underlying error.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { what, detail } => write!(f, "store io error: {what}: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Convenience result alias for this crate.
pub type StoreResult<T> = std::result::Result<T, StoreError>;

/// Configuration of a tiered store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// The store directory (created if absent).
    pub dir: PathBuf,
    /// Memory-tier byte budget override. `None` (the default) leaves the
    /// arena's existing budget alone when attaching to a live store
    /// ([`DEFAULT_MEM_BYTES`] when opening a fresh one) — attaching a
    /// disk tier must not silently rewrite a budget the caller already
    /// chose.
    pub mem_bytes: Option<usize>,
    /// Disk-tier byte budget (default [`DEFAULT_DISK_BYTES`]).
    pub disk_bytes: u64,
    /// Write inserts to disk immediately (default `true`). When `false`
    /// pools reach disk only when memory pressure evicts them — cheaper
    /// writes, but pools resident at process exit are lost.
    pub write_through: bool,
}

impl StoreConfig {
    /// A config with default budgets and write-through enabled.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            mem_bytes: None,
            disk_bytes: DEFAULT_DISK_BYTES,
            write_through: true,
        }
    }
}

/// Which tier answered a [`PoolStore::get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolTier {
    /// Tier 0: the in-memory arena.
    Memory,
    /// Tier 1: a disk segment (now promoted to memory).
    Disk,
}

impl PoolTier {
    /// The wire name (`memory` / `disk`).
    pub fn name(self) -> &'static str {
        match self {
            PoolTier::Memory => "memory",
            PoolTier::Disk => "disk",
        }
    }
}

impl std::fmt::Display for PoolTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Combined occupancy/counter snapshot of both tiers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StoreStats {
    /// Memory-tier stats.
    pub mem: ArenaStats,
    /// Disk-tier stats (absent on memory-only stores).
    pub disk: Option<DiskStats>,
}

/// The tiered pool store: memory arena in front, optional disk tier
/// behind. See the crate docs for the full contract.
pub struct PoolStore {
    arena: PoolArena,
    disk: Option<DiskTier>,
    write_through: bool,
}

impl PoolStore {
    /// A memory-only store (the pre-store service behavior).
    pub fn memory_only(mem_bytes: usize) -> Self {
        PoolStore {
            arena: PoolArena::new(mem_bytes),
            disk: None,
            write_through: false,
        }
    }

    /// Opens a tiered store over a directory, recovering the manifest
    /// (see [`DiskTier::open`]).
    pub fn open(config: StoreConfig) -> StoreResult<Self> {
        let mut store = PoolStore::memory_only(config.mem_bytes.unwrap_or(DEFAULT_MEM_BYTES));
        store.attach_disk(config)?;
        Ok(store)
    }

    /// Attaches (or replaces) the disk tier on an existing store,
    /// keeping the memory tier's contents. The memory budget changes
    /// only when the config names one explicitly; entries evicted by a
    /// smaller budget spill to the new disk tier.
    pub fn attach_disk(&mut self, config: StoreConfig) -> StoreResult<()> {
        let disk = DiskTier::open(config.dir, config.disk_bytes)?;
        self.disk = Some(disk);
        self.write_through = config.write_through;
        if let Some(mem_bytes) = config.mem_bytes {
            let evicted = self.arena.set_capacity(mem_bytes);
            self.spill(evicted);
        }
        Ok(())
    }

    /// Whether a disk tier is attached.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// The disk tier, when attached (admin surface: `entries`, `verify`,
    /// `gc`, `open_report`).
    pub fn disk(&self) -> Option<&DiskTier> {
        self.disk.as_ref()
    }

    /// Ties the disk tier to the sampling inputs' fingerprint (see
    /// [`DiskTier::set_instance`]); a mismatch purges the tier. No-op on
    /// memory-only stores.
    pub fn set_instance(&mut self, fingerprint: u64) -> StoreResult<bool> {
        match self.disk.as_mut() {
            Some(disk) => disk.set_instance(fingerprint),
            None => Ok(false),
        }
    }

    /// Looks up a pool: memory first, then disk. A disk hit is promoted
    /// into the memory tier (evicted entries spill back out), so repeat
    /// lookups of a hot key stay at memory speed.
    pub fn get(&mut self, key: &PoolKey) -> Option<(Arc<MrrPool>, PoolTier)> {
        if let Some(pool) = self.arena.get(key) {
            return Some((pool, PoolTier::Memory));
        }
        let disk = self.disk.as_mut()?;
        let pool = Arc::new(disk.get(key)?);
        // Promote unless the pool alone exceeds the memory budget — an
        // oversized pool is served, never cached (it could only displace
        // everything else and then be evicted itself).
        if pool.memory_bytes() <= self.arena.capacity_bytes() {
            let evicted = self.arena.insert_evicting(key.clone(), Arc::clone(&pool));
            self.spill(evicted);
        }
        Some((pool, PoolTier::Disk))
    }

    /// Inserts a sampled pool. With a disk tier and write-through the
    /// segment is persisted immediately; entries the insert evicts from
    /// memory spill to disk either way. A pool larger than the memory
    /// budget is not cached in memory (it is still persisted): the
    /// caller keeps its `Arc` and serves from that.
    pub fn insert(&mut self, key: PoolKey, pool: Arc<MrrPool>) {
        if self.write_through {
            if let Some(disk) = self.disk.as_mut() {
                disk.put(&key, &pool);
            }
        }
        if pool.memory_bytes() > self.arena.capacity_bytes() {
            // Never resident: spill straight to disk if not already there.
            if !self.write_through {
                if let Some(disk) = self.disk.as_mut() {
                    disk.put(&key, &pool);
                }
            }
            return;
        }
        let evicted = self.arena.insert_evicting(key, pool);
        self.spill(evicted);
    }

    /// Inserts a pool that memory pressure must never evict (an injected
    /// pool the session was built around). Pinned pools stay memory-only:
    /// the caller owns their persistence.
    pub fn insert_pinned(&mut self, key: PoolKey, pool: Arc<MrrPool>) {
        self.arena.insert_pinned(key, pool);
    }

    /// Replaces the memory-tier byte budget; entries that no longer fit
    /// spill to disk.
    pub fn set_mem_capacity(&mut self, mem_bytes: usize) {
        let evicted = self.arena.set_capacity(mem_bytes);
        self.spill(evicted);
    }

    /// Drops every memory-resident pool (disk segments are kept).
    pub fn clear_memory(&mut self) {
        self.arena.clear();
    }

    /// Drops every *sampled* (unpinned) memory entry without spilling —
    /// called when the sampling inputs change, so the dropped pools are
    /// stale, not cold. Pair with [`Self::set_instance`] to purge the
    /// disk tier of the same staleness.
    pub fn evict_unpinned(&mut self) {
        self.arena.evict_unpinned();
    }

    /// Memory-tier stats (the historical `arena_stats` surface).
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Both tiers' stats.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            mem: self.arena.stats(),
            disk: self.disk.as_ref().map(|d| d.stats()),
        }
    }

    fn spill(&mut self, evicted: Vec<(PoolKey, Arc<MrrPool>)>) {
        let Some(disk) = self.disk.as_mut() else {
            return;
        };
        for (key, pool) in evicted {
            disk.put(&key, &pool);
        }
    }
}
