//! Tier 1 of the pool store: checksummed pools packed into region files.
//!
//! A store directory holds one `index.json` manifest plus a small number
//! of fixed-capacity **region** files, each an append-only pack of many
//! pool payloads (the same shape foyer's storage layer uses — fixed-size
//! regions instead of a file per key, so a million cached pools cost a
//! handful of file handles, not a million inodes):
//!
//! ```text
//! store/
//! ├── index.json            manifest v2: regions + key → (region, offset,
//! │                         bytes, crc, recency)
//! ├── region-00000001.dat   pool binio v2 payloads, appended back to back
//! │     ┌─────────┬──────────────┬────────┐
//! │     │ pool #0 │    pool #1   │ pool#2 │ … ← committed watermark
//! │     └─────────┴──────────────┴────────┘
//! ├── region-00000002.dat
//! └── quarantine/           corrupt / orphaned files moved aside by
//!     └── region-…dat       recovery and `gc` (never deleted silently)
//! ```
//!
//! Every entry is one binio v2 pool (CRC-32 trailer) at a manifest-
//! recorded `(region, offset, bytes)`. Writes **append** to the newest
//! region through the [`crate::io::StoreIo`] seam, sync, and then commit
//! by atomically rewriting the manifest — the manifest rename is the ack
//! point, so a torn append leaves at worst unindexed bytes past the
//! region's committed watermark, which the next open truncates away.
//! Reads slice one entry out of its region and verify the CRC trailer;
//! anything that fails to *parse* is dropped (and its region quarantined
//! once no live entry remains) — never served, never silently deleted.
//! An I/O error (as opposed to a parse failure) never quarantines: the
//! bytes may be perfectly healthy on a sick disk, so the tier degrades
//! instead and keeps the entry.
//!
//! Eviction is per entry (LRU over manifest recency stamps, which
//! persist across restarts at both entry and region granularity); dead
//! bytes accumulate inside regions until [`DiskTier::gc`] rewrites the
//! affected regions, copying live entries into fresh packs and
//! reclaiming the rest — reported per region.
//!
//! A v1 store directory (one `pool-*.mrr` segment per key) migrates
//! transparently: the first open repacks every verified segment into
//! regions and only removes the originals after the v2 manifest commit,
//! so a committed pool is never lost — a segment that cannot be packed
//! is indexed in place as a single-entry region instead.
//!
//! All filesystem access goes through the [`crate::io::StoreIo`] seam,
//! so tests can inject ENOSPC, torn appends, rename loss, and crash
//! points deterministically. Any I/O failure trips the tier's
//! [`TierHealth`] machine into **degraded mode**: disk lookups and puts
//! short-circuit (a miss, never an error), and a request-ticked,
//! backoff-gated probe reopens the tier once the disk recovers.

use crate::arena::PoolKey;
use crate::health::{TierHealth, TierHealthSnapshot};
use crate::io::{DynStoreIo, RealIo, StoreIo};
use crate::{StoreError, StoreResult};
use oipa_sampler::binio::{read_pool, write_pool, PoolIoError};
use oipa_sampler::MrrPool;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Manifest schema version (v3: epoch lineage — the single instance
/// fingerprint became a fingerprint *chain*, and every entry carries the
/// epoch it was sampled or repaired at).
const MANIFEST_VERSION: u32 = 3;
/// The region-packed, single-fingerprint schema (upgraded in place: the
/// fingerprint becomes a one-entry lineage and every entry loads at
/// epoch 0).
const MANIFEST_VERSION_V2: u32 = 2;
/// The file-per-key schema (repacked into regions on first open).
const MANIFEST_VERSION_V1: u32 = 1;
/// Manifest file name inside the store directory.
pub const MANIFEST_FILE: &str = "index.json";
/// Quarantine subdirectory name.
pub const QUARANTINE_DIR: &str = "quarantine";
/// Region file prefix (`region-{id:08x}.dat`).
pub const REGION_PREFIX: &str = "region-";
/// Region file suffix.
pub const REGION_SUFFIX: &str = ".dat";
/// Legacy v1 segment prefix/suffix (recognized for migration + sweeps).
const SEGMENT_PREFIX: &str = "pool-";
const SEGMENT_SUFFIX: &str = ".mrr";
const TMP_PREFIX: &str = ".tmp-";

/// Default capacity of one region file (16 MiB): large enough to pack
/// many pools behind one file handle, small enough that a per-region GC
/// rewrite stays cheap.
pub const DEFAULT_REGION_BYTES: u64 = 16 << 20;

/// One manifest row: a cached pool and where it lives inside its region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// The pool's cache key.
    pub key: PoolKey,
    /// Region file name (relative to the store directory).
    pub file: String,
    /// Byte offset of this entry's payload inside the region.
    pub offset: u64,
    /// Payload size in bytes (binio v2 frame, trailer included).
    pub bytes: u64,
    /// CRC-32 of the payload (the binio v2 trailer value).
    pub crc: u32,
    /// LRU recency stamp (larger = more recent); persists across opens.
    pub last_used: u64,
    /// The lineage epoch the pool was sampled (or repaired) at — an
    /// index into the manifest's fingerprint chain. Only entries at the
    /// lineage head's epoch are served; older ones are **stale** (dirty-
    /// repairable through [`DiskTier::get_any`], never served as-is).
    pub epoch: u64,
}

/// The record of a whole-tier purge: what was thrown away, and why.
/// Persisted in the manifest so `store ls` and `/stats` can report the
/// last purge across restarts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PurgeRecord {
    /// Head fingerprint of the lineage whose pools were purged.
    pub from: u64,
    /// Head fingerprint of the lineage that replaced it.
    pub to: u64,
    /// Entries quarantined by the purge.
    pub entries: usize,
}

/// One region file: a fixed-capacity, append-only pack of pool entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionRow {
    /// Region file name (relative to the store directory).
    pub file: String,
    /// Committed watermark: every indexed entry lies wholly below this
    /// offset, and recovery truncates the file back to it — bytes past
    /// it are torn, unacked appends.
    pub committed: u64,
    /// Recency stamp of the most recent touch of any entry in this
    /// region (persists across opens — restart-persistent recency at
    /// region granularity).
    pub last_used: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    /// The epoch chain of instance fingerprints the pools were sampled
    /// from: `lineage[0]` is the cold-load root, `lineage[e]` the
    /// fingerprint after the first `e` deltas, the last element the
    /// current head. Empty while unset. See [`DiskTier::set_lineage`]
    /// for how a new chain is reconciled against the recorded one.
    lineage: Vec<u64>,
    clock: u64,
    /// The memory tier's active eviction-policy name, recorded so a
    /// disk-only inspection (`store ls`) can report it.
    eviction: String,
    /// Whole-tier purges over this directory's lifetime.
    purges: u64,
    /// The most recent whole-tier purge, if any.
    last_purge: Option<PurgeRecord>,
    regions: Vec<RegionRow>,
    entries: Vec<ManifestEntry>,
}

impl Manifest {
    fn fresh() -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            lineage: Vec::new(),
            clock: 0,
            eviction: "lru".to_string(),
            purges: 0,
            last_purge: None,
            regions: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// The epoch entries currently serve at: the lineage head's index
    /// (0 while the lineage is unset).
    fn current_epoch(&self) -> u64 {
        self.lineage.len().saturating_sub(1) as u64
    }
}

/// The v2 manifest (region-packed, one instance fingerprint), read only
/// for the in-place upgrade: the fingerprint becomes a one-entry lineage
/// and every entry loads at epoch 0 — still current, still served.
#[derive(Debug, Deserialize)]
struct ManifestV2 {
    #[allow(dead_code)]
    version: u32,
    instance: u64,
    clock: u64,
    eviction: String,
    regions: Vec<RegionRow>,
    entries: Vec<ManifestEntryV2>,
}

#[derive(Debug, Deserialize)]
struct ManifestEntryV2 {
    key: PoolKey,
    file: String,
    offset: u64,
    bytes: u64,
    crc: u32,
    last_used: u64,
}

impl From<ManifestV2> for Manifest {
    fn from(v2: ManifestV2) -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            lineage: if v2.instance == 0 {
                Vec::new()
            } else {
                vec![v2.instance]
            },
            clock: v2.clock,
            eviction: v2.eviction,
            purges: 0,
            last_purge: None,
            regions: v2.regions,
            entries: v2
                .entries
                .into_iter()
                .map(|e| ManifestEntry {
                    key: e.key,
                    file: e.file,
                    offset: e.offset,
                    bytes: e.bytes,
                    crc: e.crc,
                    last_used: e.last_used,
                    epoch: 0,
                })
                .collect(),
        }
    }
}

/// The v1 manifest (file-per-key segments), read only for migration.
#[derive(Debug, Deserialize)]
struct ManifestV1 {
    #[allow(dead_code)]
    version: u32,
    instance: u64,
    clock: u64,
    entries: Vec<ManifestEntryV1>,
}

#[derive(Debug, Deserialize)]
struct ManifestEntryV1 {
    key: PoolKey,
    file: String,
    bytes: u64,
    crc: u32,
    last_used: u64,
}

/// What [`DiskTier::open`] had to repair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct OpenReport {
    /// The manifest was unreadable and was quarantined (the tier started
    /// empty; its files became orphans).
    pub corrupt_manifest: bool,
    /// Manifest entries dropped because their region vanished or no
    /// longer covers their `(offset, bytes)` range.
    pub dropped_missing: usize,
    /// Files quarantined: segments/regions that failed verification plus
    /// orphaned files the manifest does not know.
    pub quarantined: usize,
    /// Stale temp files removed.
    pub stale_temps: usize,
    /// v1 segments repacked into regions by transparent migration.
    pub migrated: usize,
    /// Regions truncated back to their committed watermark (torn,
    /// unacked appends trimmed away).
    pub trimmed_regions: usize,
}

/// Cumulative disk-tier counters plus the current occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Pool entries currently indexed.
    pub entries: usize,
    /// Bytes currently indexed (live entry payloads).
    pub bytes: u64,
    /// The configured byte budget.
    pub capacity_bytes: u64,
    /// Region files currently indexed.
    pub regions: usize,
    /// The configured per-region capacity.
    pub region_bytes: u64,
    /// Committed-but-dead bytes awaiting `gc` (evicted or corrupt
    /// entries still occupying space inside their regions).
    pub dead_bytes: u64,
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that found no (usable) entry.
    pub misses: u64,
    /// Pools written to disk (spills + write-through inserts).
    pub spills: u64,
    /// Entries dropped to stay under the byte budget.
    pub evictions: u64,
    /// Entries dropped after failing verification on read.
    pub corrupt_dropped: u64,
    /// Pools skipped because they alone exceed the byte budget.
    pub oversized_skipped: u64,
    /// Best-effort writes that failed (the store keeps serving).
    pub write_errors: u64,
    /// Full `index.json` rewrites since open (reads batch recency, so
    /// this tracks structural writes + flushes, not gets).
    pub manifest_writes: u64,
    /// Recency flushes that failed (batched LRU stamps kept in memory;
    /// the loss on a crash is LRU accuracy, never data).
    pub flush_errors: u64,
    /// Operations short-circuited because the tier was degraded (each a
    /// miss or a skipped write, never a request failure).
    pub degraded_skips: u64,
    /// GC passes run since open (successful or not).
    pub gc_runs: u64,
    /// Wall-clock nanoseconds spent inside GC passes since open.
    pub gc_duration_ns: u64,
    /// Entries currently stamped with a non-current lineage epoch:
    /// stale, dirty-repairable, never served as-is.
    pub stale_entries: usize,
    /// Entries dropped because the lineage diverged past their epoch
    /// (abandoned branch — unrepairable).
    pub stale_dropped: u64,
    /// Whole-tier purges over the directory's lifetime (persisted in
    /// the manifest, so the count survives reopens).
    pub purges: u64,
    /// The most recent whole-tier purge, if any.
    pub last_purge: Option<PurgeRecord>,
}

/// Per-entry verification outcome (`oipa-cli store verify`). Labels are
/// `region@offset` — one region carries many entries.
#[derive(Debug, Clone, Serialize)]
pub struct VerifyReport {
    /// Entries that parsed and passed their CRC check: (label, bytes).
    pub ok: Vec<(String, u64)>,
    /// Entries that failed: (label, reason).
    pub corrupt: Vec<(String, String)>,
}

/// What a [`DiskTier::gc`] pass did.
#[derive(Debug, Clone, Default, Serialize)]
pub struct GcReport {
    /// Region files moved to `quarantine/` because an entry inside them
    /// failed verification (live entries were copied out first).
    pub quarantined: Vec<String>,
    /// Manifest entries dropped because their region vanished.
    pub dropped_missing: usize,
    /// Orphaned files (present on disk, absent from the manifest) moved
    /// to `quarantine/`.
    pub orphans_quarantined: usize,
    /// Stale temp files removed.
    pub stale_temps: usize,
    /// Indexed bytes reclaimed from the tier by this pass (missing +
    /// corrupt entries).
    pub reclaimed_bytes: u64,
    /// Physical bytes reclaimed per rewritten region: (region file,
    /// committed bytes not copied forward).
    pub region_reclaimed: Vec<(String, u64)>,
    /// Healthy entries kept.
    pub kept: usize,
}

/// The on-disk pool tier. See the module docs for layout and guarantees.
pub struct DiskTier {
    dir: PathBuf,
    capacity_bytes: u64,
    region_bytes: u64,
    io: DynStoreIo,
    health: TierHealth,
    manifest: Manifest,
    /// Maintained running total of `manifest.entries[..].bytes`, so the
    /// budget check is O(1) instead of a fold per put.
    indexed_bytes: u64,
    /// Next region id to probe when allocating a fresh region file.
    next_region_id: u64,
    /// The in-memory manifest has recency stamps the on-disk `index.json`
    /// does not. Set by read-path recency updates; cleared by `persist`.
    /// Structural changes (new entries, evictions, quarantines) persist
    /// immediately — only recency is batched, flushed on the next write
    /// or on drop.
    dirty: bool,
    open_report: OpenReport,
    hits: u64,
    misses: u64,
    spills: u64,
    evictions: u64,
    corrupt_dropped: u64,
    oversized_skipped: u64,
    write_errors: u64,
    manifest_writes: u64,
    flush_errors: u64,
    degraded_skips: u64,
    gc_runs: u64,
    gc_duration_ns: u64,
    /// Entries dropped because the lineage diverged past their epoch
    /// (their branch was abandoned; see [`DiskTier::set_lineage`]).
    stale_dropped: u64,
}

fn io_err(what: impl Into<String>, e: impl std::fmt::Display) -> StoreError {
    StoreError::Io {
        what: what.into(),
        detail: e.to_string(),
    }
}

impl DiskTier {
    /// Opens (creating if needed) a store directory over the real
    /// filesystem with the default region capacity. See
    /// [`DiskTier::open_with`].
    pub fn open(dir: impl Into<PathBuf>, capacity_bytes: u64) -> StoreResult<DiskTier> {
        DiskTier::open_with(dir, capacity_bytes, DEFAULT_REGION_BYTES, RealIo::arc())
    }

    /// Opens through a [`StoreIo`] with the default region capacity.
    /// See [`DiskTier::open_with`].
    pub fn open_with_io(
        dir: impl Into<PathBuf>,
        capacity_bytes: u64,
        io: DynStoreIo,
    ) -> StoreResult<DiskTier> {
        DiskTier::open_with(dir, capacity_bytes, DEFAULT_REGION_BYTES, io)
    }

    /// Opens (creating if needed) a store directory through a
    /// [`StoreIo`] and recovers its manifest: regions are truncated back
    /// to their committed watermark (torn appends trimmed), entries
    /// whose region vanished or shrank are dropped, files the manifest
    /// does not know are quarantined, stale temp files are removed, and
    /// the byte budget is enforced. A v1 (file-per-key) directory is
    /// transparently repacked into regions — originals are removed only
    /// after the v2 manifest commits, so a committed pool is never lost.
    /// Corruption never fails the open — it is repaired and reported in
    /// [`DiskTier::open_report`]. Neither do repair-write failures (a
    /// read-only or full disk): the affected entries are dropped from
    /// the index and the tier opens **degraded** (see
    /// [`DiskTier::health`]) rather than refusing to serve. Only an
    /// unlistable/uncreatable directory or an unreadable-but-present
    /// manifest fails the open.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        capacity_bytes: u64,
        region_bytes: u64,
        io: DynStoreIo,
    ) -> StoreResult<DiskTier> {
        let dir = dir.into();
        let region_bytes = region_bytes.max(1);
        io.create_dir_all(&dir)
            .map_err(|e| io_err(format!("creating store dir {}", dir.display()), e))?;
        let mut report = OpenReport::default();
        let mut health = TierHealth::new();

        let manifest_path = dir.join(MANIFEST_FILE);
        let mut migrated_sources: Vec<String> = Vec::new();
        let mut manifest = match io.read(&manifest_path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Manifest::fresh(),
            Err(e) => return Err(io_err(format!("reading {}", manifest_path.display()), e)),
            Ok(bytes) => {
                let text = String::from_utf8_lossy(&bytes);
                let version = serde_json::from_str::<serde_json::Value>(&text)
                    .ok()
                    .and_then(|v| match v.get("version") {
                        Some(serde_json::Value::Int(i)) if *i >= 0 => Some(*i as u64),
                        Some(serde_json::Value::UInt(u)) => Some(*u),
                        _ => None,
                    });
                let parsed: Result<Manifest, String> = match version {
                    Some(v) if v == u64::from(MANIFEST_VERSION) => {
                        serde_json::from_str::<Manifest>(&text).map_err(|e| e.to_string())
                    }
                    Some(v) if v == u64::from(MANIFEST_VERSION_V2) => {
                        serde_json::from_str::<ManifestV2>(&text)
                            .map(Manifest::from)
                            .map_err(|e| e.to_string())
                    }
                    Some(v) if v == u64::from(MANIFEST_VERSION_V1) => {
                        match serde_json::from_str::<ManifestV1>(&text) {
                            Ok(v1) => {
                                let (m, sources) = migrate_v1(
                                    io.as_ref(),
                                    &dir,
                                    region_bytes,
                                    v1,
                                    &mut health,
                                    &mut report,
                                );
                                migrated_sources = sources;
                                Ok(m)
                            }
                            Err(e) => Err(e.to_string()),
                        }
                    }
                    Some(v) => Err(format!("unsupported manifest version {v}")),
                    None => Err("manifest is not a JSON object with a version".to_string()),
                };
                match parsed {
                    Ok(m) => m,
                    Err(reason) => {
                        // Unreadable or future-versioned: set the manifest
                        // aside and start empty; its files become orphans
                        // below. Never serve entries we cannot trust.
                        if let Err(e) = quarantine_file(io.as_ref(), &dir, MANIFEST_FILE, &reason) {
                            health.record_error(format!("quarantining corrupt manifest: {e}"));
                        }
                        report.corrupt_manifest = true;
                        Manifest::fresh()
                    }
                }
            }
        };

        // Validate each region against the file actually on disk: a file
        // longer than its committed watermark carries a torn, unacked
        // append and is truncated back; a shorter one lost committed
        // bytes (its watermark shrinks and out-of-range entries drop); a
        // vanished one drops with all its entries.
        let mut rows = Vec::with_capacity(manifest.regions.len());
        for mut row in std::mem::take(&mut manifest.regions) {
            match io.len(&dir.join(&row.file)) {
                Err(_) => {
                    // Vanished (or unreachable) region: entries pointing
                    // into it are dropped below as missing.
                }
                Ok(len) if len > row.committed => {
                    match io.truncate(&dir.join(&row.file), row.committed) {
                        Ok(()) => report.trimmed_regions += 1,
                        Err(e) => {
                            // Reads stay within `committed`, so serving is
                            // safe; the trim retries at the next open.
                            health.record_error(format!("trimming region {}: {e}", row.file));
                        }
                    }
                    rows.push(row);
                }
                Ok(len) if len < row.committed => {
                    row.committed = len;
                    rows.push(row);
                }
                Ok(_) => rows.push(row),
            }
        }
        manifest.regions = rows;

        // Validate each entry against the surviving regions.
        let mut kept = Vec::with_capacity(manifest.entries.len());
        for entry in std::mem::take(&mut manifest.entries) {
            let covered = manifest
                .regions
                .iter()
                .any(|r| r.file == entry.file && entry.offset + entry.bytes <= r.committed);
            if covered {
                kept.push(entry);
            } else {
                report.dropped_missing += 1;
            }
        }
        manifest.entries = kept;

        // Sweep the directory: stale temps go away, unknown regions and
        // legacy segments are quarantined (without a manifest row their
        // keys are unknowable — the campaign JSON lives only in the
        // manifest). Freshly migrated v1 sources are skipped: they are
        // removed after the v2 manifest commits, below.
        let listing = io
            .list(&dir)
            .map_err(|e| io_err(format!("listing store dir {}", dir.display()), e))?;
        for name in listing {
            if name.starts_with(TMP_PREFIX) {
                let _ = io.remove(&dir.join(&name));
                report.stale_temps += 1;
                continue;
            }
            let region_like = name.starts_with(REGION_PREFIX) && name.ends_with(REGION_SUFFIX);
            let segment_like = name.starts_with(SEGMENT_PREFIX) && name.ends_with(SEGMENT_SUFFIX);
            if !region_like && !segment_like {
                continue;
            }
            if manifest.regions.iter().any(|r| r.file == name)
                || migrated_sources.iter().any(|s| s == &name)
            {
                continue;
            }
            let reason = if region_like {
                "orphaned region"
            } else {
                "orphaned segment"
            };
            if let Err(e) = quarantine_file(io.as_ref(), &dir, &name, reason) {
                health.record_error(format!("quarantining orphan {name}: {e}"));
            }
            report.quarantined += 1;
        }

        let indexed_bytes = manifest.entries.iter().map(|e| e.bytes).sum();
        let next_region_id = manifest
            .regions
            .iter()
            .filter_map(|r| region_id(&r.file))
            .max()
            .map_or(1, |id| id + 1);
        let mut tier = DiskTier {
            dir,
            capacity_bytes,
            region_bytes,
            io,
            health,
            manifest,
            indexed_bytes,
            next_region_id,
            dirty: false,
            open_report: report,
            hits: 0,
            misses: 0,
            spills: 0,
            evictions: 0,
            corrupt_dropped: 0,
            oversized_skipped: 0,
            write_errors: 0,
            manifest_writes: 0,
            flush_errors: 0,
            degraded_skips: 0,
            gc_runs: 0,
            gc_duration_ns: 0,
            stale_dropped: 0,
        };
        tier.enforce_budget(None);
        match tier.persist() {
            Ok(()) => {
                // The v2 manifest is committed: the migrated v1 segments
                // are now redundant copies. Best-effort removal — a
                // leftover is quarantined as an orphan by a later open.
                for source in &migrated_sources {
                    let _ = tier.io.remove(&tier.dir.join(source));
                }
            }
            Err(_) => {
                // A store on a read-only/full disk still opens: it serves
                // the recovered index (degraded — no new writes) and
                // re-persists once the reopen probe succeeds. Migrated
                // sources stay put: the on-disk manifest may still be v1,
                // and re-migration from intact sources is safe.
                tier.dirty = true;
            }
        }
        Ok(tier)
    }

    /// What the open had to repair.
    pub fn open_report(&self) -> OpenReport {
        self.open_report
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest rows, in insertion order.
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.manifest.entries
    }

    /// The region files, in allocation order (the last is the active
    /// append target).
    pub fn regions(&self) -> &[RegionRow] {
        &self.manifest.regions
    }

    /// The configured per-region capacity in bytes.
    pub fn region_bytes(&self) -> u64 {
        self.region_bytes
    }

    /// Committed-but-dead bytes awaiting [`DiskTier::gc`]: space inside
    /// regions whose entries were evicted or dropped.
    pub fn dead_bytes(&self) -> u64 {
        let committed: u64 = self.manifest.regions.iter().map(|r| r.committed).sum();
        committed.saturating_sub(self.indexed_bytes)
    }

    /// The memory tier's eviction-policy name as recorded in the
    /// manifest (`lru` until a store configured otherwise attaches).
    pub fn eviction_label(&self) -> &str {
        &self.manifest.eviction
    }

    /// Records the attached memory tier's eviction-policy name in the
    /// manifest, so disk-only inspection (`store ls`) can report it.
    /// Batched like recency: flushed by the next structural write.
    pub fn set_eviction_label(&mut self, label: &str) {
        if self.manifest.eviction != label {
            self.manifest.eviction = label.to_string();
            self.dirty = true;
        }
    }

    /// The recorded lineage head fingerprint (0 while unset) — the
    /// single fingerprint this tier historically recorded, now the last
    /// element of [`DiskTier::lineage`].
    pub fn instance(&self) -> u64 {
        self.manifest.lineage.last().copied().unwrap_or(0)
    }

    /// The recorded instance-fingerprint chain: `lineage()[0]` is the
    /// cold-load root, the last element the current head. Empty while
    /// unset.
    pub fn lineage(&self) -> &[u64] {
        &self.manifest.lineage
    }

    /// The epoch entries currently serve at (the lineage head's index;
    /// 0 while the lineage is unset).
    pub fn current_epoch(&self) -> u64 {
        self.manifest.current_epoch()
    }

    /// Entries stamped with a non-current epoch: stale, dirty-repairable
    /// through [`DiskTier::get_any`], never served as-is.
    pub fn stale_entries(&self) -> usize {
        let current = self.manifest.current_epoch();
        self.manifest
            .entries
            .iter()
            .filter(|e| e.epoch != current)
            .count()
    }

    /// Whole-tier purges over this directory's lifetime, and the most
    /// recent one's record.
    pub fn purge_info(&self) -> (u64, Option<PurgeRecord>) {
        (self.manifest.purges, self.manifest.last_purge)
    }

    /// The tier's current health (see [`TierHealth`]).
    pub fn health(&self) -> TierHealthSnapshot {
        self.health.snapshot()
    }

    /// Compat wrapper over [`DiskTier::set_lineage`]: a single
    /// fingerprint is a root-only lineage (a cold instance load with no
    /// delta history).
    pub fn set_instance(&mut self, fingerprint: u64) -> StoreResult<bool> {
        if fingerprint == 0 {
            self.set_lineage(&[])
        } else {
            self.set_lineage(&[fingerprint])
        }
    }

    /// Records the fingerprint chain of the (graph, table) this tier
    /// caches pools for, reconciling the recorded chain against it:
    ///
    /// * **Same chain** — no-op.
    /// * **Shared root** (the chains agree on a common prefix) — entries
    ///   at epochs *inside* the prefix are kept: those at the new head's
    ///   epoch serve, older ones become **stale** (dirty-repairable via
    ///   [`DiskTier::get_any`], never served). Entries past the prefix
    ///   sit on an abandoned branch and are dropped (dead bytes await
    ///   [`DiskTier::gc`]). This is the surgical-invalidation path: a
    ///   graph delta advances the lineage and *marks* cached pools
    ///   instead of throwing them away.
    /// * **Different root** — pools sampled from unrelated inputs must
    ///   never be served *or repaired*: every region is quarantined, a
    ///   [`PurgeRecord`] is written, and a warning naming both head
    ///   fingerprints goes to stderr.
    ///
    /// Returns whether a whole-tier purge happened.
    pub fn set_lineage(&mut self, lineage: &[u64]) -> StoreResult<bool> {
        if self.manifest.lineage == lineage {
            return Ok(false);
        }
        let prefix = common_prefix(&self.manifest.lineage, lineage);
        let diverged_at_root =
            prefix == 0 && !self.manifest.lineage.is_empty() && !lineage.is_empty();
        let purge = diverged_at_root && !self.manifest.entries.is_empty();
        if purge {
            let record = PurgeRecord {
                from: self.instance(),
                to: lineage.last().copied().unwrap_or(0),
                entries: self.manifest.entries.len(),
            };
            // Quarantine one region at a time: if a quarantine fails
            // mid-purge, the failed region goes back on the index with
            // its entries, so `indexed_bytes` never drifts from
            // `entries` on the error path — and nothing here can panic.
            while let Some(row) = self.manifest.regions.pop() {
                let path = self.dir.join(&row.file);
                if row.committed > 0 && self.io.exists(&path) {
                    if let Err(e) = quarantine_file(
                        self.io.as_ref(),
                        &self.dir,
                        &row.file,
                        "instance fingerprint mismatch",
                    ) {
                        self.health
                            .record_error(format!("instance purge of {}: {e}", row.file));
                        self.manifest.regions.push(row);
                        return Err(e);
                    }
                } else if self.io.exists(&path) {
                    // Nothing committed: no pool bytes to preserve.
                    let _ = self.io.remove(&path);
                }
                let mut kept = Vec::with_capacity(self.manifest.entries.len());
                for entry in std::mem::take(&mut self.manifest.entries) {
                    if entry.file == row.file {
                        self.indexed_bytes -= entry.bytes;
                        self.evictions += 1;
                    } else {
                        kept.push(entry);
                    }
                }
                self.manifest.entries = kept;
            }
            // Entries without a region row cannot exist, but never let
            // the invariant depend on it: drop any stragglers.
            for entry in std::mem::take(&mut self.manifest.entries) {
                self.indexed_bytes -= entry.bytes;
                self.evictions += 1;
            }
            eprintln!(
                "oipa-store: purging {}: instance fingerprint {:#018x} is not in the \
                 lineage of {:#018x} ({} entries quarantined)",
                self.dir.display(),
                record.from,
                record.to,
                record.entries,
            );
            self.manifest.purges += 1;
            self.manifest.last_purge = Some(record);
        } else if prefix > 0 {
            // Shared root: entries past the common prefix were sampled
            // on an abandoned branch — unrepairable, dropped in place
            // (their bytes go dead inside their regions until `gc`).
            let cutoff = prefix as u64;
            let mut kept = Vec::with_capacity(self.manifest.entries.len());
            let mut dropped_files: Vec<String> = Vec::new();
            for entry in std::mem::take(&mut self.manifest.entries) {
                if entry.epoch < cutoff {
                    kept.push(entry);
                } else {
                    self.indexed_bytes -= entry.bytes;
                    self.stale_dropped += 1;
                    if !dropped_files.contains(&entry.file) {
                        dropped_files.push(entry.file.clone());
                    }
                }
            }
            self.manifest.entries = kept;
            for file in dropped_files {
                self.drop_region_if_empty(&file);
            }
        }
        self.manifest.lineage = lineage.to_vec();
        self.persist()?;
        Ok(purge)
    }

    /// Looks up a pool, slicing its entry out of its region and
    /// CRC-verifying it. An entry that fails *verification* is dropped —
    /// and its region quarantined once no live entry remains in it — so
    /// the caller sees a plain miss and resamples. An entry whose read
    /// fails with an *I/O error* is kept (the bytes may be fine; the
    /// disk is not) and the tier degrades: this and subsequent lookups
    /// miss without touching the disk until a reopen probe succeeds.
    ///
    /// A hit only marks the manifest dirty: the recency stamp is flushed
    /// by the next structural write (put/eviction) or on drop, so a
    /// read-only burst of N gets performs at most one manifest write
    /// instead of N full `index.json` rewrites.
    pub fn get(&mut self, key: &PoolKey) -> Option<MrrPool> {
        self.lookup(key, true, false).map(|(pool, _)| pool)
    }

    /// [`Self::get`] for double-check paths: the caller's immediately
    /// preceding `get` already recorded this key's miss, so a re-miss
    /// counts nothing (hits — and the work they do — count normally).
    pub fn get_recheck(&mut self, key: &PoolKey) -> Option<MrrPool> {
        self.lookup(key, false, false).map(|(pool, _)| pool)
    }

    /// Fetches a pool **at whatever epoch it carries**, with that epoch —
    /// the delta-repair retrieval path. The payload is CRC-verified
    /// exactly like a serving read; a re-miss counts nothing (the
    /// caller's serving `get` already recorded it).
    pub fn get_any(&mut self, key: &PoolKey) -> Option<(MrrPool, u64)> {
        self.lookup(key, false, true)
    }

    fn lookup(
        &mut self,
        key: &PoolKey,
        count_miss: bool,
        any_epoch: bool,
    ) -> Option<(MrrPool, u64)> {
        self.maybe_probe();
        if !self.health.healthy() {
            self.degraded_skips += 1;
            if count_miss {
                self.misses += 1;
            }
            return None;
        }
        let current = self.manifest.current_epoch();
        // Entries stamped with a non-current epoch are stale: a serving
        // lookup misses on them (they stay, dirty-repairable), only the
        // `any_epoch` repair path reaches them.
        let Some(idx) = self
            .manifest
            .entries
            .iter()
            .position(|e| &e.key == key && (any_epoch || e.epoch == current))
        else {
            if count_miss {
                self.misses += 1;
            }
            return None;
        };
        let epoch = self.manifest.entries[idx].epoch;
        let (file, offset, bytes) = {
            let e = &self.manifest.entries[idx];
            (e.file.clone(), e.offset, e.bytes)
        };
        match self.read_entry(&file, offset, bytes) {
            Ok(pool) => {
                self.manifest.clock += 1;
                let stamp = self.manifest.clock;
                self.manifest.entries[idx].last_used = stamp;
                if let Some(row) = self.manifest.regions.iter_mut().find(|r| r.file == file) {
                    row.last_used = stamp;
                }
                self.hits += 1;
                self.dirty = true; // recency is batched, not rewritten per read
                self.health.record_ok();
                Some((pool, epoch))
            }
            Err(PoolIoError::Io(e)) => {
                // The disk failed, not the entry: keep it and degrade.
                // Quarantining here would throw away healthy pools every
                // time a disk hiccups.
                self.health.record_error(format!("reading {file}: {e}"));
                if count_miss {
                    self.misses += 1;
                }
                None
            }
            Err(e) => {
                let entry = self.manifest.entries.remove(idx);
                self.indexed_bytes -= entry.bytes;
                // Quarantine the region only once nothing live remains
                // in it; otherwise the dead bytes wait for `gc`.
                if !self.manifest.entries.iter().any(|x| x.file == entry.file) {
                    let _ =
                        quarantine_file(self.io.as_ref(), &self.dir, &entry.file, &e.to_string());
                    self.manifest.regions.retain(|r| r.file != entry.file);
                }
                self.corrupt_dropped += 1;
                self.misses += 1;
                let _ = self.persist();
                None
            }
        }
    }

    /// Reads and parses one entry's payload slice through the I/O seam.
    fn read_entry(&self, file: &str, offset: u64, bytes: u64) -> Result<MrrPool, PoolIoError> {
        let data = self
            .io
            .read_at(&self.dir.join(file), offset, bytes as usize)
            .map_err(PoolIoError::Io)?;
        read_pool(&data[..])
    }

    /// Writes the manifest out if any batched recency stamps are pending.
    /// Called automatically by every structural write and on drop;
    /// exposed so long read-only sessions can checkpoint recency
    /// explicitly. A failure keeps the stamps batched (retried by the
    /// next flush) and bumps [`DiskStats::flush_errors`] — losing them
    /// costs LRU accuracy, never data.
    pub fn flush(&mut self) -> StoreResult<()> {
        if !self.dirty {
            return Ok(());
        }
        if !self.health.healthy() {
            self.flush_errors += 1;
            return Err(io_err(
                "flushing batched recency",
                "disk tier is degraded; stamps stay batched until recovery",
            ));
        }
        self.persist().inspect_err(|_| self.flush_errors += 1)
    }

    /// Appends a pool to the newest region (append + sync), indexes it
    /// at the **current lineage epoch**, and evicts LRU entries until the
    /// byte budget fits. A key already present *at the current epoch* is
    /// only touched — a recency update batched like [`DiskTier::get`]'s,
    /// not a manifest rewrite (keys are content-addressed per epoch: the
    /// campaign, θ, seed and epoch determine the pool bytes). A key
    /// present at an **older** epoch is rewritten: the repaired payload
    /// is appended and the entry re-pointed at it (the stale bytes go
    /// dead inside their region until `gc`) — repair write-back rides
    /// the exact same append/sync/manifest-commit machinery, fault seam
    /// included. A pool whose payload alone exceeds the budget is not
    /// stored. Best-effort: IO failures are counted and degrade the
    /// tier, never surface to the caller — a broken disk tier is a cache
    /// miss, not a serving failure.
    ///
    /// Returns whether the write is **acked**: payload appended + synced
    /// *and* its manifest row committed. Only acked writes are promised
    /// to survive a crash; anything else is at worst torn bytes past the
    /// region's committed watermark, truncated away by the next open. A
    /// failed rewrite keeps the stale entry intact (still repairable,
    /// never served).
    pub fn put(&mut self, key: &PoolKey, pool: &MrrPool) -> bool {
        self.maybe_probe();
        if !self.health.healthy() {
            self.degraded_skips += 1;
            return false;
        }
        let epoch = self.manifest.current_epoch();
        let existing = self.manifest.entries.iter().position(|e| &e.key == key);
        if let Some(idx) = existing {
            if self.manifest.entries[idx].epoch == epoch {
                self.manifest.clock += 1;
                let stamp = self.manifest.clock;
                let file = self.manifest.entries[idx].file.clone();
                self.manifest.entries[idx].last_used = stamp;
                if let Some(row) = self.manifest.regions.iter_mut().find(|r| r.file == file) {
                    row.last_used = stamp;
                }
                self.dirty = true;
                return true;
            }
        }
        let mut buf = Vec::new();
        let crc = match write_pool(pool, &mut buf) {
            Ok(crc) => crc,
            Err(e) => {
                // Unreachable for a Vec sink, but never panic on it.
                self.write_errors += 1;
                self.health.record_error(format!("serializing pool: {e}"));
                return false;
            }
        };
        let bytes = buf.len() as u64;
        if bytes > self.capacity_bytes {
            self.oversized_skipped += 1;
            return false;
        }
        let Some(file) = self.place(bytes) else {
            self.write_errors += 1;
            return false;
        };
        let path = self.dir.join(&file);
        let commit = self
            .io
            .append(&path, &buf)
            .and_then(|()| self.io.sync(&path));
        if let Err(e) = commit {
            // A torn append leaves bytes past `committed`; the next
            // placement (or open) truncates them away. Nothing indexed.
            self.write_errors += 1;
            self.health
                .record_error(format!("appending to region {file}: {e}"));
            return false;
        }
        self.manifest.clock += 1;
        let stamp = self.manifest.clock;
        let Some(row) = self.manifest.regions.iter_mut().find(|r| r.file == file) else {
            // `place` always returns a manifest row; never panic if not.
            self.write_errors += 1;
            self.health
                .record_error(format!("region {file} lost its manifest row"));
            return false;
        };
        let offset = row.committed;
        row.committed += bytes;
        row.last_used = stamp;
        match existing {
            Some(idx) => {
                // Epoch rewrite: re-point the stale entry at the fresh
                // payload; its old bytes go dead inside their region.
                let old_file = self.manifest.entries[idx].file.clone();
                let old_bytes = self.manifest.entries[idx].bytes;
                let entry = &mut self.manifest.entries[idx];
                entry.file = file;
                entry.offset = offset;
                entry.bytes = bytes;
                entry.crc = crc;
                entry.last_used = stamp;
                entry.epoch = epoch;
                self.indexed_bytes -= old_bytes;
                self.drop_region_if_empty(&old_file);
            }
            None => self.manifest.entries.push(ManifestEntry {
                key: key.clone(),
                file,
                offset,
                bytes,
                crc,
                last_used: stamp,
                epoch,
            }),
        }
        self.indexed_bytes += bytes;
        self.spills += 1;
        self.enforce_budget(Some(stamp));
        let acked = self.persist().is_ok();
        if acked {
            self.health.record_ok();
        }
        acked
    }

    /// Picks (or allocates) the region an incoming `bytes`-sized payload
    /// appends to: the newest region while it has room (a region's first
    /// entry always fits, so a pool larger than `region_bytes` simply
    /// gets a region of its own), else a fresh one. Before reusing a
    /// region the file length is checked against the committed
    /// watermark: a torn tail from an earlier failed append is truncated
    /// away (falling back to a fresh region if the trim fails), and a
    /// region that shrank or vanished underneath us is abandoned for a
    /// fresh one. Returns `None` only when the disk cannot even be
    /// stat-ed — recorded as a degrading error.
    fn place(&mut self, bytes: u64) -> Option<String> {
        if let Some(row) = self.manifest.regions.last() {
            if row.committed == 0 || row.committed + bytes <= self.region_bytes {
                let file = row.file.clone();
                let committed = row.committed;
                let path = self.dir.join(&file);
                match self.io.len(&path) {
                    Ok(len) if len == committed => return Some(file),
                    Ok(len) if len > committed => {
                        if self.io.truncate(&path, committed).is_ok() {
                            return Some(file);
                        }
                        // Trim failed: leave the torn tail alone and pack
                        // into a fresh region instead.
                    }
                    Ok(_) => {
                        // Shrank underneath us: committed bytes are gone;
                        // reads will fault and degrade. Append elsewhere.
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                        if committed == 0 {
                            return Some(file); // append creates it
                        }
                        // Vanished with committed data: append elsewhere.
                    }
                    Err(e) => {
                        self.health
                            .record_error(format!("sizing region {file}: {e}"));
                        return None;
                    }
                }
            }
        }
        let file = self.next_region_name();
        self.manifest.regions.push(RegionRow {
            file: file.clone(),
            committed: 0,
            last_used: self.manifest.clock,
        });
        Some(file)
    }

    /// Allocates the next unused region file name (monotonic ids,
    /// existence-probed so a quarantine-returned or leftover file is
    /// never silently appended to).
    fn next_region_name(&mut self) -> String {
        loop {
            let name = format!("{REGION_PREFIX}{:08x}{REGION_SUFFIX}", self.next_region_id);
            self.next_region_id += 1;
            if !self.io.exists(&self.dir.join(&name))
                && !self.manifest.regions.iter().any(|r| r.file == name)
            {
                return name;
            }
        }
    }

    /// Reads every indexed entry out of its region, checking structure,
    /// CRC trailer, and the manifest's recorded checksum. Mutates
    /// nothing — pair with [`DiskTier::gc`] to act on the findings.
    /// Labels are `region@offset`.
    pub fn verify(&self) -> VerifyReport {
        let mut report = VerifyReport {
            ok: Vec::new(),
            corrupt: Vec::new(),
        };
        for entry in &self.manifest.entries {
            let label = format!("{}@{}", entry.file, entry.offset);
            match self.check_entry(entry) {
                Ok(()) => report.ok.push((label, entry.bytes)),
                Err(reason) => report.corrupt.push((label, reason)),
            }
        }
        report
    }

    /// Full verification of one entry: readable, parseable, trailer
    /// matches the manifest CRC, θ matches the key.
    fn check_entry(&self, entry: &ManifestEntry) -> Result<(), String> {
        let data = self
            .io
            .read_at(
                &self.dir.join(&entry.file),
                entry.offset,
                entry.bytes as usize,
            )
            .map_err(|e| format!("io error: {e}"))?;
        let pool = read_pool(&data[..]).map_err(|e| e.to_string())?;
        let trailer = entry_trailer_crc(&data);
        if trailer != Some(entry.crc) {
            return Err(format!(
                "manifest crc {:#010x} does not match entry trailer {:?}",
                entry.crc, trailer
            ));
        }
        if pool.theta() != entry.key.theta() {
            return Err(format!(
                "entry holds θ={} but the key says θ={}",
                pool.theta(),
                entry.key.theta()
            ));
        }
        Ok(())
    }

    /// Repairs and compacts the tier: drops entries whose region
    /// vanished or that fail verification, rewrites every region that is
    /// corrupt or carries dead bytes (live entries are copied into fresh
    /// regions first — corrupt regions are then quarantined, clean ones
    /// removed), quarantines orphaned files, and sweeps stale temps.
    /// Physical bytes reclaimed are reported per region.
    pub fn gc(&mut self) -> StoreResult<GcReport> {
        let started = std::time::Instant::now();
        let outcome = self.gc_inner();
        self.gc_runs += 1;
        self.gc_duration_ns = self
            .gc_duration_ns
            .saturating_add(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        outcome
    }

    fn gc_inner(&mut self) -> StoreResult<GcReport> {
        let mut report = GcReport::default();

        // Vanished regions: drop their rows and entries.
        let mut missing: Vec<String> = Vec::new();
        let io = std::sync::Arc::clone(&self.io);
        let dir = self.dir.clone();
        self.manifest.regions.retain(|r| {
            if io.exists(&dir.join(&r.file)) {
                true
            } else {
                missing.push(r.file.clone());
                false
            }
        });
        if !missing.is_empty() {
            let mut kept = Vec::with_capacity(self.manifest.entries.len());
            for entry in std::mem::take(&mut self.manifest.entries) {
                if missing.iter().any(|f| f == &entry.file) {
                    report.dropped_missing += 1;
                    report.reclaimed_bytes += entry.bytes;
                    self.indexed_bytes -= entry.bytes;
                } else {
                    kept.push(entry);
                }
            }
            self.manifest.entries = kept;
        }

        // Verification: corrupt entries drop and flag their region.
        let mut corrupt_regions: Vec<String> = Vec::new();
        let mut kept = Vec::with_capacity(self.manifest.entries.len());
        for entry in std::mem::take(&mut self.manifest.entries) {
            match self.check_entry(&entry) {
                Ok(()) => kept.push(entry),
                Err(_) => {
                    if !corrupt_regions.contains(&entry.file) {
                        corrupt_regions.push(entry.file.clone());
                    }
                    report.reclaimed_bytes += entry.bytes;
                    self.indexed_bytes -= entry.bytes;
                    self.corrupt_dropped += 1;
                }
            }
        }
        self.manifest.entries = kept;

        // Which regions get rewritten: corrupt ones, plus any carrying
        // dead bytes (live < committed). Fully-live regions are kept
        // as-is — GC cost scales with garbage, not with store size.
        let rewrite: Vec<(String, u64)> = self
            .manifest
            .regions
            .iter()
            .filter(|row| {
                let live: u64 = self
                    .manifest
                    .entries
                    .iter()
                    .filter(|e| e.file == row.file)
                    .map(|e| e.bytes)
                    .sum();
                corrupt_regions.contains(&row.file) || live < row.committed
            })
            .map(|r| (r.file.clone(), r.committed))
            .collect();

        // Copy the live entries of every rewrite region into fresh
        // packs. Old regions stay untouched until the manifest commits,
        // so a failure here leaves a fully consistent (if duplicated)
        // store behind.
        let mut target: Option<String> = None;
        for (file, committed) in &rewrite {
            let mut live_copied = 0u64;
            for i in 0..self.manifest.entries.len() {
                if &self.manifest.entries[i].file != file {
                    continue;
                }
                let (offset, bytes) = {
                    let e = &self.manifest.entries[i];
                    (e.offset, e.bytes)
                };
                let data = self
                    .io
                    .read_at(&self.dir.join(file), offset, bytes as usize)
                    .map_err(|e| {
                        self.health
                            .record_error(format!("gc: rereading {file}@{offset}: {e}"));
                        self.dirty = true;
                        io_err(format!("gc: rereading {file}@{offset}"), e)
                    })?;
                let tfile = match &target {
                    Some(t) => {
                        let fits = self
                            .manifest
                            .regions
                            .iter()
                            .find(|r| &r.file == t)
                            .is_some_and(|r| {
                                r.committed == 0 || r.committed + bytes <= self.region_bytes
                            });
                        if fits {
                            t.clone()
                        } else {
                            let fresh = self.next_region_name();
                            self.manifest.regions.push(RegionRow {
                                file: fresh.clone(),
                                committed: 0,
                                last_used: 0,
                            });
                            target = Some(fresh.clone());
                            fresh
                        }
                    }
                    None => {
                        let fresh = self.next_region_name();
                        self.manifest.regions.push(RegionRow {
                            file: fresh.clone(),
                            committed: 0,
                            last_used: 0,
                        });
                        target = Some(fresh.clone());
                        fresh
                    }
                };
                let tpath = self.dir.join(&tfile);
                self.io
                    .append(&tpath, &data)
                    .and_then(|()| self.io.sync(&tpath))
                    .map_err(|e| {
                        self.health
                            .record_error(format!("gc: repacking into {tfile}: {e}"));
                        self.dirty = true;
                        io_err(format!("gc: repacking into {tfile}"), e)
                    })?;
                let row = self
                    .manifest
                    .regions
                    .iter_mut()
                    .find(|r| r.file == tfile)
                    .expect("gc target row was just pushed");
                let entry = &mut self.manifest.entries[i];
                entry.file = tfile.clone();
                entry.offset = row.committed;
                row.committed += bytes;
                row.last_used = row.last_used.max(entry.last_used);
                live_copied += bytes;
            }
            report
                .region_reclaimed
                .push((file.clone(), committed.saturating_sub(live_copied)));
        }

        // Commit: drop the rewritten rows and persist. This is the point
        // of no return — before it, the old regions still serve.
        self.manifest
            .regions
            .retain(|r| !rewrite.iter().any(|(f, _)| f == &r.file));
        self.persist()?;

        // Dispose of the old files: corruption is quarantined (never
        // silently deleted), clean dead bytes are removed.
        for (file, _) in &rewrite {
            if corrupt_regions.contains(file) {
                quarantine_file(
                    self.io.as_ref(),
                    &self.dir,
                    file,
                    "gc: region contained corruption",
                )?;
                report.quarantined.push(file.clone());
            } else if let Err(e) = self.io.remove(&self.dir.join(file)) {
                // A leftover becomes an orphan for the next open.
                self.health
                    .record_error(format!("gc: removing {file}: {e}"));
            }
        }

        // Sweep temps and orphans.
        let listing = self
            .io
            .list(&self.dir)
            .map_err(|e| io_err(format!("listing store dir {}", self.dir.display()), e))?;
        for name in listing {
            if name.starts_with(TMP_PREFIX) {
                let _ = self.io.remove(&self.dir.join(&name));
                report.stale_temps += 1;
                continue;
            }
            let region_like = name.starts_with(REGION_PREFIX) && name.ends_with(REGION_SUFFIX);
            let segment_like = name.starts_with(SEGMENT_PREFIX) && name.ends_with(SEGMENT_SUFFIX);
            if (region_like || segment_like)
                && !self.manifest.regions.iter().any(|r| r.file == name)
            {
                let reason = if region_like {
                    "gc: orphaned region"
                } else {
                    "gc: orphaned segment"
                };
                quarantine_file(self.io.as_ref(), &self.dir, &name, reason)?;
                report.orphans_quarantined += 1;
            }
        }
        report.kept = self.manifest.entries.len();
        Ok(report)
    }

    /// Pool entries currently indexed.
    pub fn len(&self) -> usize {
        self.manifest.entries.len()
    }

    /// Whether the tier indexes no entries.
    pub fn is_empty(&self) -> bool {
        self.manifest.entries.is_empty()
    }

    /// Indexed bytes (a maintained total, not a fold).
    pub fn bytes(&self) -> u64 {
        self.indexed_bytes
    }

    /// Full `index.json` rewrites performed since open. Exposed so tests
    /// can assert that read-only bursts batch their recency persistence.
    pub fn manifest_writes(&self) -> u64 {
        self.manifest_writes
    }

    /// Occupancy and cumulative counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            entries: self.len(),
            bytes: self.bytes(),
            capacity_bytes: self.capacity_bytes,
            regions: self.manifest.regions.len(),
            region_bytes: self.region_bytes,
            dead_bytes: self.dead_bytes(),
            hits: self.hits,
            misses: self.misses,
            spills: self.spills,
            evictions: self.evictions,
            corrupt_dropped: self.corrupt_dropped,
            oversized_skipped: self.oversized_skipped,
            write_errors: self.write_errors,
            manifest_writes: self.manifest_writes,
            flush_errors: self.flush_errors,
            degraded_skips: self.degraded_skips,
            gc_runs: self.gc_runs,
            gc_duration_ns: self.gc_duration_ns,
            stale_entries: self.stale_entries(),
            stale_dropped: self.stale_dropped,
            purges: self.manifest.purges,
            last_purge: self.manifest.last_purge,
        }
    }

    /// Ticks the health machine and, when a reopen probe is due, runs it:
    /// write + read-back + remove of a scratch file through the seam. A
    /// success flips the tier back to healthy and re-persists any state
    /// the outage left unflushed; a failure widens the backoff. Healthy
    /// tiers return immediately.
    fn maybe_probe(&mut self) {
        if self.health.healthy() || !self.health.tick() {
            return;
        }
        let probe = self.dir.join(format!("{TMP_PREFIX}health-probe"));
        let payload: &[u8] = b"oipa disk-tier reopen probe";
        let outcome = (|| -> std::io::Result<()> {
            self.io.write(&probe, payload)?;
            let back = self.io.read(&probe)?;
            if back != payload {
                return Err(std::io::Error::other("probe read-back mismatch"));
            }
            self.io.remove(&probe)
        })();
        match outcome {
            Ok(()) => {
                self.health.probe_succeeded();
                // The outage may have left batched recency (or an open-
                // time repair) unpersisted; write it out now that the
                // disk answers again. A failure here re-degrades.
                if self.dirty {
                    let _ = self.persist();
                }
            }
            Err(e) => {
                let _ = self.io.remove(&probe);
                self.health.probe_failed(format!("reopen probe: {e}"));
            }
        }
    }

    /// Drops LRU entries until the budget fits; `protect` exempts one
    /// recency stamp (the entry just inserted). Dropping an entry frees
    /// *indexed* bytes immediately; the physical bytes inside its region
    /// become dead and wait for [`DiskTier::gc`] — unless nothing live
    /// remains in the region, in which case the whole file is removed
    /// on the spot (a failed remove leaves an orphan for the next
    /// open/gc and degrades the tier).
    fn enforce_budget(&mut self, protect: Option<u64>) {
        while self.indexed_bytes > self.capacity_bytes {
            let Some((victim, _)) = self
                .manifest
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| Some(e.last_used) != protect)
                .min_by_key(|(_, e)| e.last_used)
            else {
                break;
            };
            let entry = self.manifest.entries.remove(victim);
            self.indexed_bytes -= entry.bytes;
            self.evictions += 1;
            self.drop_region_if_empty(&entry.file);
        }
    }

    /// Removes a region's row and file once no live entry references it.
    /// Never removes the active append target (the last region) — its
    /// row stays so placement keeps appending at the committed offset.
    fn drop_region_if_empty(&mut self, file: &str) {
        if self.manifest.entries.iter().any(|e| e.file == file) {
            return;
        }
        let Some(pos) = self.manifest.regions.iter().position(|r| r.file == file) else {
            return;
        };
        if pos + 1 == self.manifest.regions.len() {
            return;
        }
        self.manifest.regions.remove(pos);
        if let Err(e) = self.io.remove(&self.dir.join(file)) {
            self.health
                .record_error(format!("removing empty region {file}: {e}"));
        }
    }

    /// Atomically rewrites `index.json`, absorbing any batched recency
    /// stamps in the same write. A failure degrades the tier.
    fn persist(&mut self) -> StoreResult<()> {
        let text = serde_json::to_string_pretty(&self.manifest)
            .map_err(|e| io_err("serializing the store manifest", e))?;
        let tmp = self.dir.join(format!("{TMP_PREFIX}{MANIFEST_FILE}"));
        let commit = (|| -> std::io::Result<()> {
            self.io.write(&tmp, text.as_bytes())?;
            self.io.sync(&tmp)?;
            self.io.rename(&tmp, &self.dir.join(MANIFEST_FILE))
        })();
        if let Err(e) = commit {
            let _ = self.io.remove(&tmp);
            self.health
                .record_error(format!("committing the store manifest: {e}"));
            return Err(io_err("committing the store manifest", e));
        }
        self.dirty = false;
        self.manifest_writes += 1;
        Ok(())
    }
}

impl Drop for DiskTier {
    /// Flushes batched recency stamps. Best-effort by design: a failed
    /// write on teardown bumps `flush_errors` and costs LRU accuracy,
    /// never data — and never a panic in a destructor.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Repacks a v1 (file-per-key) manifest into regions: every segment is
/// read back, verified, and appended into fresh region files; the v2
/// manifest it returns references the packs. Returns the successfully
/// packed source files — the caller removes them only *after* the v2
/// manifest commits, so a crash mid-migration re-runs from intact
/// sources. A segment that cannot be packed (sick disk) is indexed in
/// place as a single-entry region — a committed pool is never lost;
/// one that fails verification is quarantined, never served.
fn migrate_v1(
    io: &dyn StoreIo,
    dir: &Path,
    region_bytes: u64,
    v1: ManifestV1,
    health: &mut TierHealth,
    report: &mut OpenReport,
) -> (Manifest, Vec<String>) {
    let mut manifest = Manifest {
        version: MANIFEST_VERSION,
        lineage: if v1.instance == 0 {
            Vec::new()
        } else {
            vec![v1.instance]
        },
        clock: v1.clock,
        eviction: "lru".to_string(),
        purges: 0,
        last_purge: None,
        regions: Vec::new(),
        entries: Vec::new(),
    };
    let mut sources = Vec::new();
    let mut next_id: u64 = 1;
    for e in v1.entries {
        let data = match io.read(&dir.join(&e.file)) {
            Ok(d) => d,
            Err(err) => {
                // Unreadable on a sick disk: leave the file where it is
                // (the sweep quarantines it, preserving the bytes) and
                // degrade rather than guess.
                health.record_error(format!("migrating {}: {err}", e.file));
                continue;
            }
        };
        if data.len() as u64 != e.bytes || read_pool(&data[..]).is_err() {
            if let Err(err) = quarantine_file(io, dir, &e.file, "v1 migration: failed verification")
            {
                health.record_error(format!("quarantining {}: {err}", e.file));
            }
            report.quarantined += 1;
            continue;
        }
        let bytes = e.bytes;
        let fits = manifest
            .regions
            .last()
            .is_some_and(|r| r.committed == 0 || r.committed + bytes <= region_bytes);
        if !fits {
            let file = loop {
                let name = format!("{REGION_PREFIX}{next_id:08x}{REGION_SUFFIX}");
                next_id += 1;
                if !io.exists(&dir.join(&name)) {
                    break name;
                }
            };
            manifest.regions.push(RegionRow {
                file,
                committed: 0,
                last_used: 0,
            });
        }
        let row_idx = manifest.regions.len() - 1;
        let target = manifest.regions[row_idx].file.clone();
        let tpath = dir.join(&target);
        match io.append(&tpath, &data).and_then(|()| io.sync(&tpath)) {
            Ok(()) => {
                let row = &mut manifest.regions[row_idx];
                manifest.entries.push(ManifestEntry {
                    key: e.key,
                    file: target,
                    offset: row.committed,
                    bytes,
                    crc: e.crc,
                    last_used: e.last_used,
                    epoch: 0,
                });
                row.committed += bytes;
                row.last_used = row.last_used.max(e.last_used);
                report.migrated += 1;
                sources.push(e.file);
            }
            Err(err) => {
                health.record_error(format!("packing {} into {target}: {err}", e.file));
                // Fall back: the v1 segment is itself a valid one-entry
                // region. Index it in place — never lose a committed
                // pool to a disk that cannot take the copy.
                manifest.regions.push(RegionRow {
                    file: e.file.clone(),
                    committed: bytes,
                    last_used: e.last_used,
                });
                manifest.entries.push(ManifestEntry {
                    key: e.key,
                    file: e.file,
                    offset: 0,
                    bytes,
                    crc: e.crc,
                    last_used: e.last_used,
                    epoch: 0,
                });
                report.migrated += 1;
            }
        }
    }
    (manifest, sources)
}

/// How many leading fingerprints two lineages agree on. 0 means the
/// chains share no root: pools from one must never serve (or be
/// repaired into) the other.
pub(crate) fn common_prefix(a: &[u64], b: &[u64]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Parses the id out of a `region-{id:08x}.dat` file name (`None` for
/// legacy segments indexed in place as regions).
fn region_id(file: &str) -> Option<u64> {
    let hex = file
        .strip_prefix(REGION_PREFIX)?
        .strip_suffix(REGION_SUFFIX)?;
    u64::from_str_radix(hex, 16).ok()
}

/// Moves a file into `dir/quarantine/`, suffixing on name collisions.
/// The reason is recorded next to it as `<name>.reason.txt` so operators
/// can see *why* a file was set aside.
fn quarantine_file(io: &dyn StoreIo, dir: &Path, name: &str, reason: &str) -> StoreResult<()> {
    let qdir = dir.join(QUARANTINE_DIR);
    io.create_dir_all(&qdir)
        .map_err(|e| io_err(format!("creating {}", qdir.display()), e))?;
    let mut target = qdir.join(name);
    let mut k = 0u32;
    while io.exists(&target) {
        k += 1;
        target = qdir.join(format!("{name}.{k}"));
    }
    io.rename(&dir.join(name), &target)
        .map_err(|e| io_err(format!("quarantining {name}"), e))?;
    let note = PathBuf::from(format!("{}.reason.txt", target.display()));
    let _ = io.write(&note, format!("{reason}\n").as_bytes());
    Ok(())
}

/// The stored CRC-32 trailer of an entry payload (its last 4 bytes), or
/// `None` if the slice is too short to carry one.
fn entry_trailer_crc(bytes: &[u8]) -> Option<u32> {
    if bytes.len() < 4 {
        return None;
    }
    let t = &bytes[bytes.len() - 4..];
    Some(u32::from_le_bytes([t[0], t[1], t[2], t[3]]))
}
