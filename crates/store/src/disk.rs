//! Tier 1 of the pool store: checksummed pool segments on disk.
//!
//! A store directory holds one `index.json` manifest plus one segment
//! file per cached pool:
//!
//! ```text
//! store/
//! ├── index.json            manifest: key → file, bytes, crc, recency
//! ├── pool-4f1d….mrr        pool binio v2 (CRC-32 trailer)
//! ├── pool-99ab….mrr
//! └── quarantine/           corrupt / orphaned segments moved aside by
//!     └── pool-77cc….mrr    recovery and `gc` (never deleted silently)
//! ```
//!
//! Every write is crash-safe: segments and the manifest are written to a
//! temp file, synced, and atomically renamed into place, so a torn write
//! leaves at worst a stale `.tmp-*` file that the next open sweeps away.
//! Reads verify the segment's CRC-32 trailer (pool binio v2); anything
//! that fails to *parse* is moved to `quarantine/` — never served, never
//! silently deleted. An I/O error (as opposed to a parse failure) never
//! quarantines: the segment may be perfectly healthy on a sick disk, so
//! the tier degrades instead (see below) and keeps the entry. The tier
//! enforces its own byte budget with LRU eviction ordered by the
//! manifest's recency stamps, which persist across restarts.
//!
//! All filesystem access goes through the [`crate::io::StoreIo`] seam,
//! so tests can inject ENOSPC, torn writes, rename loss, and crash
//! points deterministically. Any I/O failure trips the tier's
//! [`TierHealth`] machine into **degraded mode**: disk lookups and puts
//! short-circuit (a miss, never an error), and a request-ticked,
//! backoff-gated probe reopens the tier once the disk recovers.

use crate::arena::PoolKey;
use crate::health::{TierHealth, TierHealthSnapshot};
use crate::io::{DynStoreIo, RealIo, StoreIo};
use crate::{StoreError, StoreResult};
use oipa_sampler::binio::{read_pool, write_pool, PoolIoError};
use oipa_sampler::MrrPool;
use serde::{Deserialize, Serialize};
use std::hash::Hasher as _;
use std::path::{Path, PathBuf};

/// Manifest schema version.
const MANIFEST_VERSION: u32 = 1;
/// Manifest file name inside the store directory.
pub const MANIFEST_FILE: &str = "index.json";
/// Quarantine subdirectory name.
pub const QUARANTINE_DIR: &str = "quarantine";
/// Segment file prefix/suffix.
const SEGMENT_PREFIX: &str = "pool-";
const SEGMENT_SUFFIX: &str = ".mrr";
const TMP_PREFIX: &str = ".tmp-";

/// One manifest row: a cached pool and where it lives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// The pool's cache key.
    pub key: PoolKey,
    /// Segment file name (relative to the store directory).
    pub file: String,
    /// Segment size in bytes (whole file, trailer included).
    pub bytes: u64,
    /// CRC-32 of the segment payload (the binio v2 trailer value).
    pub crc: u32,
    /// LRU recency stamp (larger = more recent); persists across opens.
    pub last_used: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    /// Fingerprint of the (graph, probability table) the pools were
    /// sampled from; 0 while unset. A mismatch purges the tier.
    instance: u64,
    clock: u64,
    entries: Vec<ManifestEntry>,
}

impl Manifest {
    fn fresh() -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            instance: 0,
            clock: 0,
            entries: Vec::new(),
        }
    }
}

/// What [`DiskTier::open`] had to repair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct OpenReport {
    /// The manifest was unreadable and was quarantined (the tier started
    /// empty; its segments became orphans).
    pub corrupt_manifest: bool,
    /// Manifest entries dropped because their segment file was missing.
    pub dropped_missing: usize,
    /// Segments quarantined: size-mismatched entries plus orphaned files
    /// the manifest does not know.
    pub quarantined: usize,
    /// Stale temp files removed.
    pub stale_temps: usize,
}

/// Cumulative disk-tier counters plus the current occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Segments currently indexed.
    pub entries: usize,
    /// Bytes currently indexed.
    pub bytes: u64,
    /// The configured byte budget.
    pub capacity_bytes: u64,
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that found no (usable) segment.
    pub misses: u64,
    /// Pools written to disk (spills + write-through inserts).
    pub spills: u64,
    /// Segments deleted to stay under the byte budget.
    pub evictions: u64,
    /// Segments quarantined after failing verification on read.
    pub corrupt_dropped: u64,
    /// Pools skipped because they alone exceed the byte budget.
    pub oversized_skipped: u64,
    /// Best-effort writes that failed (the store keeps serving).
    pub write_errors: u64,
    /// Full `index.json` rewrites since open (reads batch recency, so
    /// this tracks structural writes + flushes, not gets).
    pub manifest_writes: u64,
    /// Recency flushes that failed (batched LRU stamps kept in memory;
    /// the loss on a crash is LRU accuracy, never data).
    pub flush_errors: u64,
    /// Operations short-circuited because the tier was degraded (each a
    /// miss or a skipped write, never a request failure).
    pub degraded_skips: u64,
}

/// Per-segment verification outcome (`oipa-cli store verify`).
#[derive(Debug, Clone, Serialize)]
pub struct VerifyReport {
    /// Segments that parsed and passed their CRC check: (file, bytes).
    pub ok: Vec<(String, u64)>,
    /// Segments that failed: (file, reason).
    pub corrupt: Vec<(String, String)>,
}

/// What a [`DiskTier::gc`] pass did.
#[derive(Debug, Clone, Default, Serialize)]
pub struct GcReport {
    /// Segments moved to `quarantine/` after failing verification.
    pub quarantined: Vec<String>,
    /// Manifest entries dropped because their file vanished.
    pub dropped_missing: usize,
    /// Orphaned segment files (present on disk, absent from the
    /// manifest) moved to `quarantine/`.
    pub orphans_quarantined: usize,
    /// Stale temp files removed.
    pub stale_temps: usize,
    /// Indexed bytes reclaimed from the tier by this pass.
    pub reclaimed_bytes: u64,
    /// Healthy segments kept.
    pub kept: usize,
}

/// The on-disk pool tier. See the module docs for layout and guarantees.
pub struct DiskTier {
    dir: PathBuf,
    capacity_bytes: u64,
    io: DynStoreIo,
    health: TierHealth,
    manifest: Manifest,
    /// Maintained running total of `manifest.entries[..].bytes`, so the
    /// budget check is O(1) instead of a fold per put.
    indexed_bytes: u64,
    /// The in-memory manifest has recency stamps the on-disk `index.json`
    /// does not. Set by read-path recency updates; cleared by `persist`.
    /// Structural changes (new segments, evictions, quarantines) persist
    /// immediately — only recency is batched, flushed on the next write
    /// or on drop.
    dirty: bool,
    open_report: OpenReport,
    hits: u64,
    misses: u64,
    spills: u64,
    evictions: u64,
    corrupt_dropped: u64,
    oversized_skipped: u64,
    write_errors: u64,
    manifest_writes: u64,
    flush_errors: u64,
    degraded_skips: u64,
}

fn io_err(what: impl Into<String>, e: impl std::fmt::Display) -> StoreError {
    StoreError::Io {
        what: what.into(),
        detail: e.to_string(),
    }
}

impl DiskTier {
    /// Opens (creating if needed) a store directory over the real
    /// filesystem. See [`DiskTier::open_with_io`].
    pub fn open(dir: impl Into<PathBuf>, capacity_bytes: u64) -> StoreResult<DiskTier> {
        DiskTier::open_with_io(dir, capacity_bytes, RealIo::arc())
    }

    /// Opens (creating if needed) a store directory through a
    /// [`StoreIo`] and recovers its manifest: entries with missing or
    /// size-mismatched segments are dropped/quarantined, segment files
    /// the manifest does not know are quarantined, stale temp files are
    /// removed, and the byte budget is enforced. Corruption never fails
    /// the open — it is repaired and reported in
    /// [`DiskTier::open_report`]. Neither do repair-write failures (a
    /// read-only or full disk): the affected entries are dropped from
    /// the index and the tier opens **degraded** (see
    /// [`DiskTier::health`]) rather than refusing to serve. Only an
    /// unlistable/uncreatable directory or an unreadable-but-present
    /// manifest fails the open.
    pub fn open_with_io(
        dir: impl Into<PathBuf>,
        capacity_bytes: u64,
        io: DynStoreIo,
    ) -> StoreResult<DiskTier> {
        let dir = dir.into();
        io.create_dir_all(&dir)
            .map_err(|e| io_err(format!("creating store dir {}", dir.display()), e))?;
        let mut report = OpenReport::default();
        let mut health = TierHealth::new();

        let manifest_path = dir.join(MANIFEST_FILE);
        let mut manifest = match io.read(&manifest_path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Manifest::fresh(),
            Err(e) => return Err(io_err(format!("reading {}", manifest_path.display()), e)),
            Ok(bytes) => match serde_json::from_str::<Manifest>(&String::from_utf8_lossy(&bytes)) {
                Ok(m) if m.version == MANIFEST_VERSION => m,
                parsed => {
                    // Unreadable or future-versioned: set the manifest
                    // aside and start empty; its segments become orphans
                    // below. Never serve entries we cannot trust.
                    let reason = match parsed {
                        Ok(m) => format!("unsupported manifest version {}", m.version),
                        Err(e) => e.to_string(),
                    };
                    if let Err(e) = quarantine_file(io.as_ref(), &dir, MANIFEST_FILE, &reason) {
                        health.record_error(format!("quarantining corrupt manifest: {e}"));
                    }
                    report.corrupt_manifest = true;
                    Manifest::fresh()
                }
            },
        };

        // Validate each entry's segment: present and the size recorded.
        // A failed quarantine still drops the entry — a size-mismatched
        // segment must never be served, and the leftover file is just an
        // orphan for a later, healthier pass.
        let mut kept = Vec::with_capacity(manifest.entries.len());
        for entry in std::mem::take(&mut manifest.entries) {
            match io.len(&dir.join(&entry.file)) {
                Err(_) => report.dropped_missing += 1,
                Ok(len) if len != entry.bytes => {
                    if let Err(e) = quarantine_file(io.as_ref(), &dir, &entry.file, "size mismatch")
                    {
                        health.record_error(format!("quarantining {}: {e}", entry.file));
                    }
                    report.quarantined += 1;
                }
                Ok(_) => kept.push(entry),
            }
        }
        manifest.entries = kept;

        // Sweep the directory: stale temps go away, unknown segments are
        // quarantined (without a manifest row their key is unknowable —
        // the campaign JSON lives only in the manifest).
        let listing = io
            .list(&dir)
            .map_err(|e| io_err(format!("listing store dir {}", dir.display()), e))?;
        for name in listing {
            if name.starts_with(TMP_PREFIX) {
                let _ = io.remove(&dir.join(&name));
                report.stale_temps += 1;
            } else if name.starts_with(SEGMENT_PREFIX)
                && name.ends_with(SEGMENT_SUFFIX)
                && !manifest.entries.iter().any(|e| e.file == name)
            {
                if let Err(e) = quarantine_file(io.as_ref(), &dir, &name, "orphaned segment") {
                    health.record_error(format!("quarantining orphan {name}: {e}"));
                }
                report.quarantined += 1;
            }
        }

        let indexed_bytes = manifest.entries.iter().map(|e| e.bytes).sum();
        let mut tier = DiskTier {
            dir,
            capacity_bytes,
            io,
            health,
            manifest,
            indexed_bytes,
            dirty: false,
            open_report: report,
            hits: 0,
            misses: 0,
            spills: 0,
            evictions: 0,
            corrupt_dropped: 0,
            oversized_skipped: 0,
            write_errors: 0,
            manifest_writes: 0,
            flush_errors: 0,
            degraded_skips: 0,
        };
        tier.enforce_budget(None);
        if tier.persist().is_err() {
            // A store on a read-only/full disk still opens: it serves the
            // recovered index (degraded — no new writes) and re-persists
            // once the reopen probe succeeds.
            tier.dirty = true;
        }
        Ok(tier)
    }

    /// What the open had to repair.
    pub fn open_report(&self) -> OpenReport {
        self.open_report
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest rows, in insertion order.
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.manifest.entries
    }

    /// The recorded sampling-inputs fingerprint (0 while unset).
    pub fn instance(&self) -> u64 {
        self.manifest.instance
    }

    /// The tier's current health (see [`TierHealth`]).
    pub fn health(&self) -> TierHealthSnapshot {
        self.health.snapshot()
    }

    /// Records the fingerprint of the (graph, table) this tier caches
    /// pools for. On a mismatch with the recorded fingerprint every
    /// segment is quarantined — pools sampled from different inputs must
    /// never be served. Returns whether a purge happened.
    pub fn set_instance(&mut self, fingerprint: u64) -> StoreResult<bool> {
        if self.manifest.instance == fingerprint {
            return Ok(false);
        }
        let purge = self.manifest.instance != 0 && !self.manifest.entries.is_empty();
        if purge {
            // Quarantine one entry at a time: if a quarantine fails
            // mid-purge, the failed entry goes back on the index with its
            // bytes, so `indexed_bytes` never drifts from `entries` on
            // the error path — and nothing here can panic.
            while let Some(entry) = self.manifest.entries.pop() {
                if let Err(e) = quarantine_file(
                    self.io.as_ref(),
                    &self.dir,
                    &entry.file,
                    "instance fingerprint mismatch",
                ) {
                    self.health
                        .record_error(format!("instance purge of {}: {e}", entry.file));
                    self.manifest.entries.push(entry);
                    return Err(e);
                }
                self.indexed_bytes -= entry.bytes;
                self.evictions += 1;
            }
        }
        self.manifest.instance = fingerprint;
        self.persist()?;
        Ok(purge)
    }

    /// Looks up a pool, reading and CRC-verifying its segment. A segment
    /// that fails *verification* is quarantined and its entry dropped —
    /// the caller sees a plain miss and resamples. A segment whose read
    /// fails with an *I/O error* is kept (the bytes may be fine; the disk
    /// is not) and the tier degrades: this and subsequent lookups miss
    /// without touching the disk until a reopen probe succeeds.
    ///
    /// A hit only marks the manifest dirty: the recency stamp is flushed
    /// by the next structural write (put/eviction) or on drop, so a
    /// read-only burst of N gets performs at most one manifest write
    /// instead of N full `index.json` rewrites.
    pub fn get(&mut self, key: &PoolKey) -> Option<MrrPool> {
        self.lookup(key, true)
    }

    /// [`Self::get`] for double-check paths: the caller's immediately
    /// preceding `get` already recorded this key's miss, so a re-miss
    /// counts nothing (hits — and the work they do — count normally).
    pub fn get_recheck(&mut self, key: &PoolKey) -> Option<MrrPool> {
        self.lookup(key, false)
    }

    fn lookup(&mut self, key: &PoolKey, count_miss: bool) -> Option<MrrPool> {
        self.maybe_probe();
        if !self.health.healthy() {
            self.degraded_skips += 1;
            if count_miss {
                self.misses += 1;
            }
            return None;
        }
        let Some(idx) = self.manifest.entries.iter().position(|e| &e.key == key) else {
            if count_miss {
                self.misses += 1;
            }
            return None;
        };
        let file = self.manifest.entries[idx].file.clone();
        match self.read_segment(&file) {
            Ok(pool) => {
                self.manifest.clock += 1;
                self.manifest.entries[idx].last_used = self.manifest.clock;
                self.hits += 1;
                self.dirty = true; // recency is batched, not rewritten per read
                self.health.record_ok();
                Some(pool)
            }
            Err(PoolIoError::Io(e)) => {
                // The disk failed, not the segment: keep the entry and
                // degrade. Quarantining here would throw away healthy
                // pools every time a disk hiccups.
                self.health.record_error(format!("reading {file}: {e}"));
                if count_miss {
                    self.misses += 1;
                }
                None
            }
            Err(e) => {
                let _ = quarantine_file(self.io.as_ref(), &self.dir, &file, &e.to_string());
                let entry = self.manifest.entries.remove(idx);
                self.indexed_bytes -= entry.bytes;
                self.corrupt_dropped += 1;
                self.misses += 1;
                let _ = self.persist();
                None
            }
        }
    }

    /// Reads and parses one segment through the I/O seam.
    fn read_segment(&self, file: &str) -> Result<MrrPool, PoolIoError> {
        let bytes = self
            .io
            .read(&self.dir.join(file))
            .map_err(PoolIoError::Io)?;
        read_pool(&bytes[..])
    }

    /// Writes the manifest out if any batched recency stamps are pending.
    /// Called automatically by every structural write and on drop;
    /// exposed so long read-only sessions can checkpoint recency
    /// explicitly. A failure keeps the stamps batched (retried by the
    /// next flush) and bumps [`DiskStats::flush_errors`] — losing them
    /// costs LRU accuracy, never data.
    pub fn flush(&mut self) -> StoreResult<()> {
        if !self.dirty {
            return Ok(());
        }
        if !self.health.healthy() {
            self.flush_errors += 1;
            return Err(io_err(
                "flushing batched recency",
                "disk tier is degraded; stamps stay batched until recovery",
            ));
        }
        self.persist().inspect_err(|_| self.flush_errors += 1)
    }

    /// Writes a pool segment (write-to-temp + sync + atomic rename),
    /// indexes it, and evicts LRU segments until the byte budget fits. A
    /// key already present is only touched — a recency update batched
    /// like [`DiskTier::get`]'s, not a manifest rewrite (keys are
    /// content-addressed: the campaign, θ and seed/fingerprint determine
    /// the pool bytes). A pool whose segment alone exceeds the budget is
    /// not stored. Best-effort: IO failures are counted and degrade the
    /// tier, never surface to the caller — a broken disk tier is a cache
    /// miss, not a serving failure.
    ///
    /// Returns whether the write is **acked**: segment renamed into place
    /// *and* its manifest row committed. Only acked writes are promised
    /// to survive a crash; anything else is at best an orphan the next
    /// open quarantines.
    pub fn put(&mut self, key: &PoolKey, pool: &MrrPool) -> bool {
        self.maybe_probe();
        if !self.health.healthy() {
            self.degraded_skips += 1;
            return false;
        }
        if let Some(idx) = self.manifest.entries.iter().position(|e| &e.key == key) {
            self.manifest.clock += 1;
            self.manifest.entries[idx].last_used = self.manifest.clock;
            self.dirty = true;
            return true;
        }
        let mut buf = Vec::new();
        let crc = match write_pool(pool, &mut buf) {
            Ok(crc) => crc,
            Err(e) => {
                // Unreachable for a Vec sink, but never panic on it.
                self.write_errors += 1;
                self.health.record_error(format!("serializing pool: {e}"));
                return false;
            }
        };
        let bytes = buf.len() as u64;
        if bytes > self.capacity_bytes {
            self.oversized_skipped += 1;
            return false;
        }
        let file = self.segment_name(key);
        let tmp = self.dir.join(format!("{TMP_PREFIX}{file}"));
        let commit = (|| -> std::io::Result<()> {
            self.io.write(&tmp, &buf)?;
            self.io.sync(&tmp)?;
            self.io.rename(&tmp, &self.dir.join(&file))
        })();
        if let Err(e) = commit {
            let _ = self.io.remove(&tmp);
            self.write_errors += 1;
            self.health
                .record_error(format!("writing segment {file}: {e}"));
            return false;
        }
        self.manifest.clock += 1;
        self.manifest.entries.push(ManifestEntry {
            key: key.clone(),
            file,
            bytes,
            crc,
            last_used: self.manifest.clock,
        });
        self.indexed_bytes += bytes;
        self.spills += 1;
        self.enforce_budget(Some(self.manifest.clock));
        let acked = self.persist().is_ok();
        if acked {
            self.health.record_ok();
        }
        acked
    }

    /// Reads every indexed segment end to end, checking structure, CRC
    /// trailer, and the manifest's recorded checksum. Mutates nothing —
    /// pair with [`DiskTier::gc`] to act on the findings.
    pub fn verify(&self) -> VerifyReport {
        let mut report = VerifyReport {
            ok: Vec::new(),
            corrupt: Vec::new(),
        };
        for entry in &self.manifest.entries {
            let bytes = match self.io.read(&self.dir.join(&entry.file)) {
                Ok(bytes) => bytes,
                Err(e) => {
                    report
                        .corrupt
                        .push((entry.file.clone(), format!("io error: {e}")));
                    continue;
                }
            };
            match read_pool(&bytes[..]) {
                Ok(pool) => {
                    // The file parsed; cross-check the manifest row
                    // against the trailer (the last 4 bytes just read).
                    let trailer = segment_trailer_crc(&bytes);
                    if trailer != Some(entry.crc) {
                        report.corrupt.push((
                            entry.file.clone(),
                            format!(
                                "manifest crc {:#010x} does not match segment trailer {:?}",
                                entry.crc, trailer
                            ),
                        ));
                    } else if pool.theta() != entry.key.theta() {
                        report.corrupt.push((
                            entry.file.clone(),
                            format!(
                                "segment holds θ={} but the key says θ={}",
                                pool.theta(),
                                entry.key.theta()
                            ),
                        ));
                    } else {
                        report.ok.push((entry.file.clone(), entry.bytes));
                    }
                }
                Err(e) => report.corrupt.push((entry.file.clone(), e.to_string())),
            }
        }
        report
    }

    /// Repairs the tier: quarantines corrupt segments (full read-back
    /// verification) and orphaned files, drops entries whose segments
    /// vanished, and sweeps stale temps.
    pub fn gc(&mut self) -> StoreResult<GcReport> {
        let mut report = GcReport::default();
        let verdicts = self.verify();
        let mut kept = Vec::with_capacity(self.manifest.entries.len());
        for entry in std::mem::take(&mut self.manifest.entries) {
            if verdicts.ok.iter().any(|(f, _)| *f == entry.file) {
                kept.push(entry);
                continue;
            }
            report.reclaimed_bytes += entry.bytes;
            if self.io.exists(&self.dir.join(&entry.file)) {
                quarantine_file(
                    self.io.as_ref(),
                    &self.dir,
                    &entry.file,
                    "gc: failed verification",
                )?;
                self.corrupt_dropped += 1;
                report.quarantined.push(entry.file);
            } else {
                report.dropped_missing += 1;
            }
        }
        report.kept = kept.len();
        self.manifest.entries = kept;
        self.indexed_bytes = self.manifest.entries.iter().map(|e| e.bytes).sum();

        let listing = self
            .io
            .list(&self.dir)
            .map_err(|e| io_err(format!("listing store dir {}", self.dir.display()), e))?;
        for name in listing {
            if name.starts_with(TMP_PREFIX) {
                let _ = self.io.remove(&self.dir.join(&name));
                report.stale_temps += 1;
            } else if name.starts_with(SEGMENT_PREFIX)
                && name.ends_with(SEGMENT_SUFFIX)
                && !self.manifest.entries.iter().any(|e| e.file == name)
            {
                quarantine_file(self.io.as_ref(), &self.dir, &name, "gc: orphaned segment")?;
                report.orphans_quarantined += 1;
            }
        }
        self.persist()?;
        Ok(report)
    }

    /// Segments currently indexed.
    pub fn len(&self) -> usize {
        self.manifest.entries.len()
    }

    /// Whether the tier indexes no segments.
    pub fn is_empty(&self) -> bool {
        self.manifest.entries.is_empty()
    }

    /// Indexed bytes (a maintained total, not a fold).
    pub fn bytes(&self) -> u64 {
        self.indexed_bytes
    }

    /// Full `index.json` rewrites performed since open. Exposed so tests
    /// can assert that read-only bursts batch their recency persistence.
    pub fn manifest_writes(&self) -> u64 {
        self.manifest_writes
    }

    /// Occupancy and cumulative counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            entries: self.len(),
            bytes: self.bytes(),
            capacity_bytes: self.capacity_bytes,
            hits: self.hits,
            misses: self.misses,
            spills: self.spills,
            evictions: self.evictions,
            corrupt_dropped: self.corrupt_dropped,
            oversized_skipped: self.oversized_skipped,
            write_errors: self.write_errors,
            manifest_writes: self.manifest_writes,
            flush_errors: self.flush_errors,
            degraded_skips: self.degraded_skips,
        }
    }

    /// Ticks the health machine and, when a reopen probe is due, runs it:
    /// write + read-back + remove of a scratch file through the seam. A
    /// success flips the tier back to healthy and re-persists any state
    /// the outage left unflushed; a failure widens the backoff. Healthy
    /// tiers return immediately.
    fn maybe_probe(&mut self) {
        if self.health.healthy() || !self.health.tick() {
            return;
        }
        let probe = self.dir.join(format!("{TMP_PREFIX}health-probe"));
        let payload: &[u8] = b"oipa disk-tier reopen probe";
        let outcome = (|| -> std::io::Result<()> {
            self.io.write(&probe, payload)?;
            let back = self.io.read(&probe)?;
            if back != payload {
                return Err(std::io::Error::other("probe read-back mismatch"));
            }
            self.io.remove(&probe)
        })();
        match outcome {
            Ok(()) => {
                self.health.probe_succeeded();
                // The outage may have left batched recency (or an open-
                // time repair) unpersisted; write it out now that the
                // disk answers again. A failure here re-degrades.
                if self.dirty {
                    let _ = self.persist();
                }
            }
            Err(e) => {
                let _ = self.io.remove(&probe);
                self.health.probe_failed(format!("reopen probe: {e}"));
            }
        }
    }

    /// Deletes LRU segments until the budget fits; `protect` exempts one
    /// recency stamp (the entry just inserted). A failed delete still
    /// unindexes the victim (its file becomes an orphan for the next
    /// open/gc) and degrades the tier.
    fn enforce_budget(&mut self, protect: Option<u64>) {
        while self.indexed_bytes > self.capacity_bytes {
            let Some((victim, _)) = self
                .manifest
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| Some(e.last_used) != protect)
                .min_by_key(|(_, e)| e.last_used)
            else {
                break;
            };
            let entry = self.manifest.entries.remove(victim);
            self.indexed_bytes -= entry.bytes;
            if let Err(e) = self.io.remove(&self.dir.join(&entry.file)) {
                self.health
                    .record_error(format!("evicting {}: {e}", entry.file));
            }
            self.evictions += 1;
        }
    }

    /// Atomically rewrites `index.json`, absorbing any batched recency
    /// stamps in the same write. A failure degrades the tier.
    fn persist(&mut self) -> StoreResult<()> {
        let text = serde_json::to_string_pretty(&self.manifest)
            .map_err(|e| io_err("serializing the store manifest", e))?;
        let tmp = self.dir.join(format!("{TMP_PREFIX}{MANIFEST_FILE}"));
        let commit = (|| -> std::io::Result<()> {
            self.io.write(&tmp, text.as_bytes())?;
            self.io.sync(&tmp)?;
            self.io.rename(&tmp, &self.dir.join(MANIFEST_FILE))
        })();
        if let Err(e) = commit {
            let _ = self.io.remove(&tmp);
            self.health
                .record_error(format!("committing the store manifest: {e}"));
            return Err(io_err("committing the store manifest", e));
        }
        self.dirty = false;
        self.manifest_writes += 1;
        Ok(())
    }

    /// Deterministic, collision-probed segment file name for a key.
    fn segment_name(&self, key: &PoolKey) -> String {
        for bump in 0u64.. {
            let mut h = oipa_graph::hashing::FxHasher::default();
            h.write(key.campaign.as_bytes());
            h.write_u64(key.theta as u64);
            h.write_u64(key.seed);
            h.write_u64(bump);
            let name = format!("{SEGMENT_PREFIX}{:016x}{SEGMENT_SUFFIX}", h.finish());
            let taken = self
                .manifest
                .entries
                .iter()
                .any(|e| e.file == name && &e.key != key);
            if !taken {
                return name;
            }
        }
        unreachable!("collision probe terminates")
    }
}

impl Drop for DiskTier {
    /// Flushes batched recency stamps. Best-effort by design: a failed
    /// write on teardown bumps `flush_errors` and costs LRU accuracy,
    /// never data — and never a panic in a destructor.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Moves a file into `dir/quarantine/`, suffixing on name collisions.
/// The reason is recorded next to it as `<name>.reason.txt` so operators
/// can see *why* a segment was set aside.
fn quarantine_file(io: &dyn StoreIo, dir: &Path, name: &str, reason: &str) -> StoreResult<()> {
    let qdir = dir.join(QUARANTINE_DIR);
    io.create_dir_all(&qdir)
        .map_err(|e| io_err(format!("creating {}", qdir.display()), e))?;
    let mut target = qdir.join(name);
    let mut k = 0u32;
    while io.exists(&target) {
        k += 1;
        target = qdir.join(format!("{name}.{k}"));
    }
    io.rename(&dir.join(name), &target)
        .map_err(|e| io_err(format!("quarantining {name}"), e))?;
    let note = PathBuf::from(format!("{}.reason.txt", target.display()));
    let _ = io.write(&note, format!("{reason}\n").as_bytes());
    Ok(())
}

/// The stored CRC-32 trailer of a segment (its last 4 bytes), or `None`
/// if the buffer is too short to carry one.
fn segment_trailer_crc(bytes: &[u8]) -> Option<u32> {
    if bytes.len() < 4 {
        return None;
    }
    let t = &bytes[bytes.len() - 4..];
    Some(u32::from_le_bytes([t[0], t[1], t[2], t[3]]))
}
