//! Tier 1 of the pool store: checksummed pool segments on disk.
//!
//! A store directory holds one `index.json` manifest plus one segment
//! file per cached pool:
//!
//! ```text
//! store/
//! ├── index.json            manifest: key → file, bytes, crc, recency
//! ├── pool-4f1d….mrr        pool binio v2 (CRC-32 trailer)
//! ├── pool-99ab….mrr
//! └── quarantine/           corrupt / orphaned segments moved aside by
//!     └── pool-77cc….mrr    recovery and `gc` (never deleted silently)
//! ```
//!
//! Every write is crash-safe: segments and the manifest are written to a
//! temp file and atomically renamed into place, so a torn write leaves at
//! worst a stale `.tmp-*` file that the next open sweeps away. Reads
//! verify the segment's CRC-32 trailer (pool binio v2); anything that
//! fails to parse is moved to `quarantine/` — never served, never
//! silently deleted. The tier enforces its own byte budget with LRU
//! eviction ordered by the manifest's recency stamps, which persist
//! across restarts.

use crate::arena::PoolKey;
use crate::{StoreError, StoreResult};
use oipa_sampler::binio::{read_pool_file, write_pool_file, PoolIoError};
use oipa_sampler::MrrPool;
use serde::{Deserialize, Serialize};
use std::hash::Hasher as _;
use std::path::{Path, PathBuf};

/// Manifest schema version.
const MANIFEST_VERSION: u32 = 1;
/// Manifest file name inside the store directory.
pub const MANIFEST_FILE: &str = "index.json";
/// Quarantine subdirectory name.
pub const QUARANTINE_DIR: &str = "quarantine";
/// Segment file prefix/suffix.
const SEGMENT_PREFIX: &str = "pool-";
const SEGMENT_SUFFIX: &str = ".mrr";
const TMP_PREFIX: &str = ".tmp-";

/// One manifest row: a cached pool and where it lives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// The pool's cache key.
    pub key: PoolKey,
    /// Segment file name (relative to the store directory).
    pub file: String,
    /// Segment size in bytes (whole file, trailer included).
    pub bytes: u64,
    /// CRC-32 of the segment payload (the binio v2 trailer value).
    pub crc: u32,
    /// LRU recency stamp (larger = more recent); persists across opens.
    pub last_used: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    /// Fingerprint of the (graph, probability table) the pools were
    /// sampled from; 0 while unset. A mismatch purges the tier.
    instance: u64,
    clock: u64,
    entries: Vec<ManifestEntry>,
}

impl Manifest {
    fn fresh() -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            instance: 0,
            clock: 0,
            entries: Vec::new(),
        }
    }
}

/// What [`DiskTier::open`] had to repair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct OpenReport {
    /// The manifest was unreadable and was quarantined (the tier started
    /// empty; its segments became orphans).
    pub corrupt_manifest: bool,
    /// Manifest entries dropped because their segment file was missing.
    pub dropped_missing: usize,
    /// Segments quarantined: size-mismatched entries plus orphaned files
    /// the manifest does not know.
    pub quarantined: usize,
    /// Stale temp files removed.
    pub stale_temps: usize,
}

/// Cumulative disk-tier counters plus the current occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Segments currently indexed.
    pub entries: usize,
    /// Bytes currently indexed.
    pub bytes: u64,
    /// The configured byte budget.
    pub capacity_bytes: u64,
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that found no (usable) segment.
    pub misses: u64,
    /// Pools written to disk (spills + write-through inserts).
    pub spills: u64,
    /// Segments deleted to stay under the byte budget.
    pub evictions: u64,
    /// Segments quarantined after failing verification on read.
    pub corrupt_dropped: u64,
    /// Pools skipped because they alone exceed the byte budget.
    pub oversized_skipped: u64,
    /// Best-effort writes that failed (the store keeps serving).
    pub write_errors: u64,
    /// Full `index.json` rewrites since open (reads batch recency, so
    /// this tracks structural writes + flushes, not gets).
    pub manifest_writes: u64,
}

/// Per-segment verification outcome (`oipa-cli store verify`).
#[derive(Debug, Clone, Serialize)]
pub struct VerifyReport {
    /// Segments that parsed and passed their CRC check: (file, bytes).
    pub ok: Vec<(String, u64)>,
    /// Segments that failed: (file, reason).
    pub corrupt: Vec<(String, String)>,
}

/// What a [`DiskTier::gc`] pass did.
#[derive(Debug, Clone, Default, Serialize)]
pub struct GcReport {
    /// Segments moved to `quarantine/` after failing verification.
    pub quarantined: Vec<String>,
    /// Manifest entries dropped because their file vanished.
    pub dropped_missing: usize,
    /// Orphaned segment files (present on disk, absent from the
    /// manifest) moved to `quarantine/`.
    pub orphans_quarantined: usize,
    /// Stale temp files removed.
    pub stale_temps: usize,
    /// Indexed bytes reclaimed from the tier by this pass.
    pub reclaimed_bytes: u64,
    /// Healthy segments kept.
    pub kept: usize,
}

/// The on-disk pool tier. See the module docs for layout and guarantees.
pub struct DiskTier {
    dir: PathBuf,
    capacity_bytes: u64,
    manifest: Manifest,
    /// Maintained running total of `manifest.entries[..].bytes`, so the
    /// budget check is O(1) instead of a fold per put.
    indexed_bytes: u64,
    /// The in-memory manifest has recency stamps the on-disk `index.json`
    /// does not. Set by read-path recency updates; cleared by `persist`.
    /// Structural changes (new segments, evictions, quarantines) persist
    /// immediately — only recency is batched, flushed on the next write
    /// or on drop.
    dirty: bool,
    open_report: OpenReport,
    hits: u64,
    misses: u64,
    spills: u64,
    evictions: u64,
    corrupt_dropped: u64,
    oversized_skipped: u64,
    write_errors: u64,
    manifest_writes: u64,
}

fn io_err(what: impl Into<String>, e: impl std::fmt::Display) -> StoreError {
    StoreError::Io {
        what: what.into(),
        detail: e.to_string(),
    }
}

impl DiskTier {
    /// Opens (creating if needed) a store directory and recovers its
    /// manifest: entries with missing or size-mismatched segments are
    /// dropped/quarantined, segment files the manifest does not know are
    /// quarantined, stale temp files are removed, and the byte budget is
    /// enforced. Corruption never fails the open — it is repaired and
    /// reported in [`DiskTier::open_report`].
    pub fn open(dir: impl Into<PathBuf>, capacity_bytes: u64) -> StoreResult<DiskTier> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| io_err(format!("creating store dir {}", dir.display()), e))?;
        let mut report = OpenReport::default();

        let manifest_path = dir.join(MANIFEST_FILE);
        let mut manifest = match std::fs::read_to_string(&manifest_path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Manifest::fresh(),
            Err(e) => return Err(io_err(format!("reading {}", manifest_path.display()), e)),
            Ok(text) => match serde_json::from_str::<Manifest>(&text) {
                Ok(m) if m.version == MANIFEST_VERSION => m,
                parsed => {
                    // Unreadable or future-versioned: set the manifest
                    // aside and start empty; its segments become orphans
                    // below. Never serve entries we cannot trust.
                    let reason = match parsed {
                        Ok(m) => format!("unsupported manifest version {}", m.version),
                        Err(e) => e.to_string(),
                    };
                    quarantine_file(&dir, MANIFEST_FILE, &reason)?;
                    report.corrupt_manifest = true;
                    Manifest::fresh()
                }
            },
        };

        // Validate each entry's segment: present and the size recorded.
        let mut kept = Vec::with_capacity(manifest.entries.len());
        for entry in std::mem::take(&mut manifest.entries) {
            match std::fs::metadata(dir.join(&entry.file)) {
                Err(_) => report.dropped_missing += 1,
                Ok(meta) if meta.len() != entry.bytes => {
                    quarantine_file(&dir, &entry.file, "size mismatch")?;
                    report.quarantined += 1;
                }
                Ok(_) => kept.push(entry),
            }
        }
        manifest.entries = kept;

        // Sweep the directory: stale temps go away, unknown segments are
        // quarantined (without a manifest row their key is unknowable —
        // the campaign JSON lives only in the manifest).
        let listing = std::fs::read_dir(&dir)
            .map_err(|e| io_err(format!("listing store dir {}", dir.display()), e))?;
        for dirent in listing {
            let Ok(dirent) = dirent else { continue };
            let name = dirent.file_name().to_string_lossy().into_owned();
            if name.starts_with(TMP_PREFIX) {
                let _ = std::fs::remove_file(dirent.path());
                report.stale_temps += 1;
            } else if name.starts_with(SEGMENT_PREFIX)
                && name.ends_with(SEGMENT_SUFFIX)
                && !manifest.entries.iter().any(|e| e.file == name)
            {
                quarantine_file(&dir, &name, "orphaned segment")?;
                report.quarantined += 1;
            }
        }

        let indexed_bytes = manifest.entries.iter().map(|e| e.bytes).sum();
        let mut tier = DiskTier {
            dir,
            capacity_bytes,
            manifest,
            indexed_bytes,
            dirty: false,
            open_report: report,
            hits: 0,
            misses: 0,
            spills: 0,
            evictions: 0,
            corrupt_dropped: 0,
            oversized_skipped: 0,
            write_errors: 0,
            manifest_writes: 0,
        };
        tier.enforce_budget(None);
        tier.persist()?;
        Ok(tier)
    }

    /// What the open had to repair.
    pub fn open_report(&self) -> OpenReport {
        self.open_report
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest rows, in insertion order.
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.manifest.entries
    }

    /// The recorded sampling-inputs fingerprint (0 while unset).
    pub fn instance(&self) -> u64 {
        self.manifest.instance
    }

    /// Records the fingerprint of the (graph, table) this tier caches
    /// pools for. On a mismatch with the recorded fingerprint every
    /// segment is quarantined — pools sampled from different inputs must
    /// never be served. Returns whether a purge happened.
    pub fn set_instance(&mut self, fingerprint: u64) -> StoreResult<bool> {
        if self.manifest.instance == fingerprint {
            return Ok(false);
        }
        let purge = self.manifest.instance != 0 && !self.manifest.entries.is_empty();
        if purge {
            // Quarantine before unindexing, one entry at a time: if a
            // quarantine fails mid-purge, the untouched entries keep
            // their manifest rows AND their bytes, so `indexed_bytes`
            // never drifts from `entries` on the error path.
            while let Some(entry) = self.manifest.entries.last() {
                let file = entry.file.clone();
                quarantine_file(&self.dir, &file, "instance fingerprint mismatch")?;
                let entry = self.manifest.entries.pop().expect("just observed");
                self.indexed_bytes -= entry.bytes;
                self.evictions += 1;
            }
        }
        self.manifest.instance = fingerprint;
        self.persist()?;
        Ok(purge)
    }

    /// Looks up a pool, reading and CRC-verifying its segment. A segment
    /// that fails verification is quarantined and its entry dropped —
    /// the caller sees a plain miss and resamples.
    ///
    /// A hit only marks the manifest dirty: the recency stamp is flushed
    /// by the next structural write (put/eviction) or on drop, so a
    /// read-only burst of N gets performs at most one manifest write
    /// instead of N full `index.json` rewrites.
    pub fn get(&mut self, key: &PoolKey) -> Option<MrrPool> {
        self.lookup(key, true)
    }

    /// [`Self::get`] for double-check paths: the caller's immediately
    /// preceding `get` already recorded this key's miss, so a re-miss
    /// counts nothing (hits — and the work they do — count normally).
    pub fn get_recheck(&mut self, key: &PoolKey) -> Option<MrrPool> {
        self.lookup(key, false)
    }

    fn lookup(&mut self, key: &PoolKey, count_miss: bool) -> Option<MrrPool> {
        let Some(idx) = self.manifest.entries.iter().position(|e| &e.key == key) else {
            if count_miss {
                self.misses += 1;
            }
            return None;
        };
        let file = self.manifest.entries[idx].file.clone();
        match read_pool_file(self.dir.join(&file)) {
            Ok(pool) => {
                self.manifest.clock += 1;
                self.manifest.entries[idx].last_used = self.manifest.clock;
                self.hits += 1;
                self.dirty = true; // recency is batched, not rewritten per read
                Some(pool)
            }
            Err(e) => {
                let _ = quarantine_file(&self.dir, &file, &e.to_string());
                let entry = self.manifest.entries.remove(idx);
                self.indexed_bytes -= entry.bytes;
                self.corrupt_dropped += 1;
                self.misses += 1;
                let _ = self.persist();
                None
            }
        }
    }

    /// Writes the manifest out if any batched recency stamps are pending.
    /// Called automatically by every structural write and on drop;
    /// exposed so long read-only sessions can checkpoint recency
    /// explicitly.
    pub fn flush(&mut self) -> StoreResult<()> {
        if self.dirty {
            self.persist()?;
        }
        Ok(())
    }

    /// Writes a pool segment (write-to-temp + atomic rename), indexes it,
    /// and evicts LRU segments until the byte budget fits. A key already
    /// present is only touched — a recency update batched like
    /// [`DiskTier::get`]'s, not a manifest rewrite (keys are
    /// content-addressed: the campaign, θ and seed/fingerprint determine
    /// the pool bytes). A pool whose segment alone exceeds the budget is
    /// not stored. Best-effort: IO failures are counted, not returned —
    /// a broken disk tier degrades to a cache miss, never a serving
    /// failure.
    pub fn put(&mut self, key: &PoolKey, pool: &MrrPool) {
        if let Some(idx) = self.manifest.entries.iter().position(|e| &e.key == key) {
            self.manifest.clock += 1;
            self.manifest.entries[idx].last_used = self.manifest.clock;
            self.dirty = true;
            return;
        }
        let file = self.segment_name(key);
        let tmp = self.dir.join(format!("{TMP_PREFIX}{file}"));
        let crc = match write_pool_file(pool, &tmp) {
            Ok(crc) => crc,
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
                self.write_errors += 1;
                return;
            }
        };
        let bytes = match std::fs::metadata(&tmp) {
            Ok(meta) => meta.len(),
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
                self.write_errors += 1;
                return;
            }
        };
        if bytes > self.capacity_bytes {
            let _ = std::fs::remove_file(&tmp);
            self.oversized_skipped += 1;
            return;
        }
        if std::fs::rename(&tmp, self.dir.join(&file)).is_err() {
            let _ = std::fs::remove_file(&tmp);
            self.write_errors += 1;
            return;
        }
        self.manifest.clock += 1;
        self.manifest.entries.push(ManifestEntry {
            key: key.clone(),
            file,
            bytes,
            crc,
            last_used: self.manifest.clock,
        });
        self.indexed_bytes += bytes;
        self.spills += 1;
        self.enforce_budget(Some(self.manifest.clock));
        let _ = self.persist();
    }

    /// Reads every indexed segment end to end, checking structure, CRC
    /// trailer, and the manifest's recorded checksum. Mutates nothing —
    /// pair with [`DiskTier::gc`] to act on the findings.
    pub fn verify(&self) -> VerifyReport {
        let mut report = VerifyReport {
            ok: Vec::new(),
            corrupt: Vec::new(),
        };
        for entry in &self.manifest.entries {
            match read_pool_file(self.dir.join(&entry.file)) {
                Ok(pool) => {
                    // The file parsed; cross-check the manifest row.
                    let trailer = segment_trailer_crc(&self.dir.join(&entry.file));
                    if trailer != Some(entry.crc) {
                        report.corrupt.push((
                            entry.file.clone(),
                            format!(
                                "manifest crc {:#010x} does not match segment trailer {:?}",
                                entry.crc, trailer
                            ),
                        ));
                    } else if pool.theta() != entry.key.theta() {
                        report.corrupt.push((
                            entry.file.clone(),
                            format!(
                                "segment holds θ={} but the key says θ={}",
                                pool.theta(),
                                entry.key.theta()
                            ),
                        ));
                    } else {
                        report.ok.push((entry.file.clone(), entry.bytes));
                    }
                }
                Err(PoolIoError::Io(e)) => report
                    .corrupt
                    .push((entry.file.clone(), format!("io error: {e}"))),
                Err(e) => report.corrupt.push((entry.file.clone(), e.to_string())),
            }
        }
        report
    }

    /// Repairs the tier: quarantines corrupt segments (full read-back
    /// verification) and orphaned files, drops entries whose segments
    /// vanished, and sweeps stale temps.
    pub fn gc(&mut self) -> StoreResult<GcReport> {
        let mut report = GcReport::default();
        let verdicts = self.verify();
        let mut kept = Vec::with_capacity(self.manifest.entries.len());
        for entry in std::mem::take(&mut self.manifest.entries) {
            if verdicts.ok.iter().any(|(f, _)| *f == entry.file) {
                kept.push(entry);
                continue;
            }
            report.reclaimed_bytes += entry.bytes;
            if self.dir.join(&entry.file).exists() {
                quarantine_file(&self.dir, &entry.file, "gc: failed verification")?;
                self.corrupt_dropped += 1;
                report.quarantined.push(entry.file);
            } else {
                report.dropped_missing += 1;
            }
        }
        report.kept = kept.len();
        self.manifest.entries = kept;
        self.indexed_bytes = self.manifest.entries.iter().map(|e| e.bytes).sum();

        let listing = std::fs::read_dir(&self.dir)
            .map_err(|e| io_err(format!("listing store dir {}", self.dir.display()), e))?;
        for dirent in listing {
            let Ok(dirent) = dirent else { continue };
            let name = dirent.file_name().to_string_lossy().into_owned();
            if name.starts_with(TMP_PREFIX) {
                let _ = std::fs::remove_file(dirent.path());
                report.stale_temps += 1;
            } else if name.starts_with(SEGMENT_PREFIX)
                && name.ends_with(SEGMENT_SUFFIX)
                && !self.manifest.entries.iter().any(|e| e.file == name)
            {
                quarantine_file(&self.dir, &name, "gc: orphaned segment")?;
                report.orphans_quarantined += 1;
            }
        }
        self.persist()?;
        Ok(report)
    }

    /// Segments currently indexed.
    pub fn len(&self) -> usize {
        self.manifest.entries.len()
    }

    /// Whether the tier indexes no segments.
    pub fn is_empty(&self) -> bool {
        self.manifest.entries.is_empty()
    }

    /// Indexed bytes (a maintained total, not a fold).
    pub fn bytes(&self) -> u64 {
        self.indexed_bytes
    }

    /// Full `index.json` rewrites performed since open. Exposed so tests
    /// can assert that read-only bursts batch their recency persistence.
    pub fn manifest_writes(&self) -> u64 {
        self.manifest_writes
    }

    /// Occupancy and cumulative counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            entries: self.len(),
            bytes: self.bytes(),
            capacity_bytes: self.capacity_bytes,
            hits: self.hits,
            misses: self.misses,
            spills: self.spills,
            evictions: self.evictions,
            corrupt_dropped: self.corrupt_dropped,
            oversized_skipped: self.oversized_skipped,
            write_errors: self.write_errors,
            manifest_writes: self.manifest_writes,
        }
    }

    /// Deletes LRU segments until the budget fits; `protect` exempts one
    /// recency stamp (the entry just inserted).
    fn enforce_budget(&mut self, protect: Option<u64>) {
        while self.indexed_bytes > self.capacity_bytes {
            let Some((victim, _)) = self
                .manifest
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| Some(e.last_used) != protect)
                .min_by_key(|(_, e)| e.last_used)
            else {
                break;
            };
            let entry = self.manifest.entries.remove(victim);
            self.indexed_bytes -= entry.bytes;
            let _ = std::fs::remove_file(self.dir.join(&entry.file));
            self.evictions += 1;
        }
    }

    /// Atomically rewrites `index.json`, absorbing any batched recency
    /// stamps in the same write.
    fn persist(&mut self) -> StoreResult<()> {
        let text = serde_json::to_string_pretty(&self.manifest)
            .map_err(|e| io_err("serializing the store manifest", e))?;
        let tmp = self.dir.join(format!("{TMP_PREFIX}{MANIFEST_FILE}"));
        std::fs::write(&tmp, text).map_err(|e| io_err(format!("writing {}", tmp.display()), e))?;
        std::fs::rename(&tmp, self.dir.join(MANIFEST_FILE))
            .map_err(|e| io_err("committing the store manifest", e))?;
        self.dirty = false;
        self.manifest_writes += 1;
        Ok(())
    }

    /// Deterministic, collision-probed segment file name for a key.
    fn segment_name(&self, key: &PoolKey) -> String {
        for bump in 0u64.. {
            let mut h = oipa_graph::hashing::FxHasher::default();
            h.write(key.campaign.as_bytes());
            h.write_u64(key.theta as u64);
            h.write_u64(key.seed);
            h.write_u64(bump);
            let name = format!("{SEGMENT_PREFIX}{:016x}{SEGMENT_SUFFIX}", h.finish());
            let taken = self
                .manifest
                .entries
                .iter()
                .any(|e| e.file == name && &e.key != key);
            if !taken {
                return name;
            }
        }
        unreachable!("collision probe terminates")
    }
}

impl Drop for DiskTier {
    /// Flushes batched recency stamps (best-effort: a failed write on
    /// teardown only costs LRU accuracy, never data).
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Moves a file into `dir/quarantine/`, suffixing on name collisions.
/// The reason is recorded next to it as `<name>.reason.txt` so operators
/// can see *why* a segment was set aside.
fn quarantine_file(dir: &Path, name: &str, reason: &str) -> StoreResult<()> {
    let qdir = dir.join(QUARANTINE_DIR);
    std::fs::create_dir_all(&qdir)
        .map_err(|e| io_err(format!("creating {}", qdir.display()), e))?;
    let mut target = qdir.join(name);
    let mut k = 0u32;
    while target.exists() {
        k += 1;
        target = qdir.join(format!("{name}.{k}"));
    }
    std::fs::rename(dir.join(name), &target)
        .map_err(|e| io_err(format!("quarantining {name}"), e))?;
    let note = format!("{}.reason.txt", target.display());
    let _ = std::fs::write(note, format!("{reason}\n"));
    Ok(())
}

/// The stored CRC-32 trailer of a segment file (its last 4 bytes), or
/// `None` if the file is unreadable/too short. Seeks rather than reading
/// the (multi-megabyte) segment a second time.
fn segment_trailer_crc(path: &Path) -> Option<u32> {
    use std::io::{Read as _, Seek as _, SeekFrom};
    let mut file = std::fs::File::open(path).ok()?;
    if file.metadata().ok()?.len() < 4 {
        return None;
    }
    file.seek(SeekFrom::End(-4)).ok()?;
    let mut buf = [0u8; 4];
    file.read_exact(&mut buf).ok()?;
    Some(u32::from_le_bytes(buf))
}
