//! Disk-tier health: a request-ticked state machine that turns I/O
//! failures into **degraded mode** instead of failed requests.
//!
//! The machine has two states. `Healthy` is the normal path. Any disk
//! I/O error trips it to `Degraded`: the tier stops touching the disk
//! entirely (lookups miss, puts skip) and the service keeps answering
//! from memory and resampling — answers stay bitwise-identical, only
//! latency and cache effectiveness change.
//!
//! Recovery is probe-driven and **ticked by requests** — there is no
//! background thread. Each store operation ticks the machine once; when
//! the backoff counter reaches zero the tier runs one cheap reopen probe
//! (write + read-back + remove of a scratch file). A failed probe
//! doubles the backoff (capped), a successful one returns the tier to
//! `Healthy`. Under zero traffic no probes run, which is exactly right:
//! nobody is waiting on the disk.

use serde::{Deserialize, Serialize};

/// Ticks before the first reopen probe after degrading.
const INITIAL_BACKOFF_TICKS: u64 = 2;
/// Backoff ceiling: at most one probe every this many operations.
const MAX_BACKOFF_TICKS: u64 = 1024;

/// Wire name of the healthy state.
pub const HEALTH_OK: &str = "healthy";
/// Wire name of the degraded state.
pub const HEALTH_DEGRADED: &str = "degraded";

/// The disk tier's health machine. Owned by the tier, mutated under the
/// tier's single-writer lock, snapshotted into `/stats` and `/healthz`.
#[derive(Debug, Clone)]
pub struct TierHealth {
    degraded: bool,
    /// Cumulative I/O errors observed (never resets).
    errors: u64,
    /// Errors since the last successful operation or probe.
    consecutive_errors: u64,
    last_error: Option<String>,
    /// Reopen probes attempted.
    probes: u64,
    /// Healthy → degraded transitions (outages entered).
    degradations: u64,
    /// Degraded → healthy transitions.
    recoveries: u64,
    /// Current backoff width in ticks.
    backoff_ticks: u64,
    /// Ticks remaining until the next probe is due.
    ticks_until_probe: u64,
}

impl Default for TierHealth {
    fn default() -> Self {
        TierHealth::new()
    }
}

impl TierHealth {
    /// A fresh, healthy machine.
    pub fn new() -> TierHealth {
        TierHealth {
            degraded: false,
            errors: 0,
            consecutive_errors: 0,
            last_error: None,
            probes: 0,
            degradations: 0,
            recoveries: 0,
            backoff_ticks: INITIAL_BACKOFF_TICKS,
            ticks_until_probe: 0,
        }
    }

    /// Whether the tier may touch the disk.
    pub fn healthy(&self) -> bool {
        !self.degraded
    }

    /// Records an I/O failure. The first failure trips the machine to
    /// degraded and arms the probe countdown.
    pub fn record_error(&mut self, what: impl Into<String>) {
        self.errors += 1;
        self.consecutive_errors += 1;
        self.last_error = Some(what.into());
        if !self.degraded {
            self.degraded = true;
            self.degradations += 1;
            self.backoff_ticks = INITIAL_BACKOFF_TICKS;
            self.ticks_until_probe = self.backoff_ticks;
        }
    }

    /// Records a successful disk operation on the healthy path, clearing
    /// the consecutive-error streak.
    pub fn record_ok(&mut self) {
        if !self.degraded {
            self.consecutive_errors = 0;
        }
    }

    /// Advances the request-driven clock one tick. Returns `true` when a
    /// reopen probe is due (healthy machines never ask for one).
    pub fn tick(&mut self) -> bool {
        if !self.degraded {
            return false;
        }
        if self.ticks_until_probe > 0 {
            self.ticks_until_probe -= 1;
        }
        self.ticks_until_probe == 0
    }

    /// Records a failed reopen probe: the backoff doubles (capped) and
    /// the countdown re-arms.
    pub fn probe_failed(&mut self, what: impl Into<String>) {
        self.probes += 1;
        self.errors += 1;
        self.consecutive_errors += 1;
        self.last_error = Some(what.into());
        self.backoff_ticks = (self.backoff_ticks * 2).min(MAX_BACKOFF_TICKS);
        self.ticks_until_probe = self.backoff_ticks;
    }

    /// Records a successful reopen probe: back to healthy, backoff reset.
    pub fn probe_succeeded(&mut self) {
        self.probes += 1;
        self.recoveries += 1;
        self.degraded = false;
        self.consecutive_errors = 0;
        self.backoff_ticks = INITIAL_BACKOFF_TICKS;
        self.ticks_until_probe = 0;
    }

    /// The serializable view (for `/stats`, `/healthz`, `StatsSnapshot`).
    pub fn snapshot(&self) -> TierHealthSnapshot {
        TierHealthSnapshot {
            state: if self.degraded {
                HEALTH_DEGRADED.to_string()
            } else {
                HEALTH_OK.to_string()
            },
            errors: self.errors,
            consecutive_errors: self.consecutive_errors,
            last_error: self.last_error.clone(),
            probes: self.probes,
            degradations: self.degradations,
            recoveries: self.recoveries,
            backoff_ticks: self.backoff_ticks,
        }
    }
}

/// The wire form of [`TierHealth`] — what `/stats` and `/healthz` carry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierHealthSnapshot {
    /// `"healthy"` or `"degraded"` ([`HEALTH_OK`] / [`HEALTH_DEGRADED`]).
    pub state: String,
    /// Cumulative I/O errors observed.
    pub errors: u64,
    /// Errors since the last successful operation or probe.
    pub consecutive_errors: u64,
    /// The most recent error, human-readable.
    pub last_error: Option<String>,
    /// Reopen probes attempted.
    pub probes: u64,
    /// Healthy → degraded transitions (outages entered; pairs with
    /// `recoveries` to tell a flapping disk from one long outage).
    pub degradations: u64,
    /// Degraded → healthy transitions survived.
    pub recoveries: u64,
    /// Current probe backoff width in ticks.
    pub backoff_ticks: u64,
}

impl TierHealthSnapshot {
    /// Whether the snapshot reports the healthy state.
    pub fn is_healthy(&self) -> bool {
        self.state == HEALTH_OK
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_healthy_and_never_probes() {
        let mut h = TierHealth::new();
        assert!(h.healthy());
        for _ in 0..100 {
            assert!(!h.tick());
        }
        assert!(h.snapshot().is_healthy());
    }

    #[test]
    fn error_degrades_and_probe_recovers() {
        let mut h = TierHealth::new();
        h.record_error("ENOSPC writing pool-1.mrr");
        assert!(!h.healthy());
        let s = h.snapshot();
        assert_eq!(s.state, HEALTH_DEGRADED);
        assert_eq!(s.errors, 1);
        assert!(s.last_error.unwrap().contains("ENOSPC"));
        // Backoff: the first INITIAL ticks don't ask for a probe.
        assert!(!h.tick());
        assert!(h.tick(), "probe due after the initial backoff");
        h.probe_succeeded();
        assert!(h.healthy());
        assert_eq!(h.snapshot().recoveries, 1);
        assert_eq!(h.snapshot().consecutive_errors, 0);
    }

    #[test]
    fn failed_probes_back_off_exponentially_with_a_cap() {
        let mut h = TierHealth::new();
        h.record_error("EIO");
        let mut widths = Vec::new();
        for _ in 0..12 {
            let mut ticks = 0u64;
            while !h.tick() {
                ticks += 1;
            }
            widths.push(ticks + 1); // the due tick itself counts
            h.probe_failed("still EIO");
        }
        // Monotone non-decreasing, doubling until the cap.
        for pair in widths.windows(2) {
            assert!(pair[1] >= pair[0], "backoff must not shrink: {widths:?}");
        }
        assert_eq!(*widths.last().unwrap(), MAX_BACKOFF_TICKS);
        assert_eq!(h.snapshot().probes, 12);
        assert!(!h.healthy());
    }

    #[test]
    fn recovery_resets_backoff() {
        let mut h = TierHealth::new();
        h.record_error("EIO");
        while !h.tick() {}
        h.probe_failed("EIO");
        h.probe_failed("EIO");
        h.probe_succeeded();
        assert!(h.healthy());
        // A later outage starts from the initial backoff again.
        h.record_error("EIO again");
        assert_eq!(h.snapshot().backoff_ticks, INITIAL_BACKOFF_TICKS);
    }
}
