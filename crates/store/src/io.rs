//! The store's filesystem seam: every byte [`crate::DiskTier`] moves to
//! or from disk goes through a [`StoreIo`] implementation.
//!
//! Production uses [`RealIo`] (plain `std::fs`). Tests — and the
//! `--fault-schedule` dev flag — wrap it in [`FaultIo`], which injects
//! the failures a loaded box actually throws at a storage engine:
//!
//! * **errno faults**: the Nth operation of a kind fails with `ENOSPC`,
//!   `EIO`, or `EACCES`;
//! * **short writes**: a write persists only a prefix of its bytes and
//!   reports failure (a torn segment or manifest);
//! * **rename loss**: a rename is dropped on the floor;
//! * **crash points**: after N mutating operations the "process" dies —
//!   the operation at the crash point is applied *partially* (torn write,
//!   un-applied rename) and every operation after it fails, freezing the
//!   directory in exactly the state a `kill -9` would leave. The harness
//!   then reopens the directory with a clean [`RealIo`] and checks the
//!   recovery invariants;
//! * **outages**: a runtime toggle ([`FaultIo::set_outage`]) under which
//!   every operation fails until the fault "clears" — how the degraded-
//!   mode serving tests simulate a disk falling over mid-traffic.
//!
//! Schedules are deterministic: the same [`FaultSchedule`] against the
//! same operation sequence injects the same faults, and torn-write prefix
//! lengths are derived from the schedule seed, so every failure a test
//! finds is replayable from its printed seed.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A shareable [`StoreIo`] handle (the form [`crate::StoreConfig`] and
/// [`crate::DiskTier`] carry).
pub type DynStoreIo = Arc<dyn StoreIo>;

/// The filesystem operations the disk tier needs, factored behind one
/// object so faults can be injected deterministically between the tier
/// and the kernel. All paths are absolute (the tier joins its store
/// directory before calling).
pub trait StoreIo: Send + Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates/truncates a file and writes all of `bytes`.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flushes a file's contents to stable storage (`fsync`).
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` onto `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory (and parents) if absent.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Lists the file names (not paths) in a directory.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// A file's length in bytes.
    fn len(&self, path: &Path) -> io::Result<u64>;
    /// Whether a path exists (faults are never injected here — existence
    /// probes guide quarantine naming, not durability).
    fn exists(&self, path: &Path) -> bool;
    /// The last `n` bytes of a file (used to cross-check the segment
    /// CRC trailer without re-reading a multi-megabyte payload).
    fn tail(&self, path: &Path, n: usize) -> io::Result<Vec<u8>>;
    /// Appends `bytes` to the end of a file, creating it if absent (the
    /// region tier's pack path).
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Reads exactly `len` bytes starting at `offset` (a region-packed
    /// entry read).
    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>>;
    /// Truncates a file to `len` bytes (recovery trimming a torn region
    /// tail back to its last committed offset).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
}

/// The production [`StoreIo`]: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl RealIo {
    /// A shareable handle to the real filesystem.
    pub fn arc() -> DynStoreIo {
        Arc::new(RealIo)
    }
}

impl StoreIo for RealIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for dirent in std::fs::read_dir(dir)? {
            let Ok(dirent) = dirent else { continue };
            names.push(dirent.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn tail(&self, path: &Path, n: usize) -> io::Result<Vec<u8>> {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if (len as usize) < n {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("file is {len} bytes, shorter than the {n}-byte tail"),
            ));
        }
        file.seek(SeekFrom::End(-(n as i64)))?;
        let mut buf = vec![0u8; n];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        file.write_all(bytes)
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut file = std::fs::File::open(path)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)?
            .set_len(len)
    }
}

/// The operation classes a [`FaultRule`] can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// File writes (segments, manifests, probe files).
    Write,
    /// Atomic renames (commits).
    Rename,
    /// File removals (evictions, temp sweeps).
    Remove,
    /// `fsync` calls.
    Sync,
    /// Whole-file reads.
    Read,
    /// Directory listings.
    List,
}

impl FaultOp {
    fn parse(s: &str) -> Option<FaultOp> {
        Some(match s {
            "write" => FaultOp::Write,
            "rename" => FaultOp::Rename,
            "remove" => FaultOp::Remove,
            "sync" => FaultOp::Sync,
            "read" => FaultOp::Read,
            "list" => FaultOp::List,
            _ => return None,
        })
    }

    /// Whether the operation mutates directory state (what crash points
    /// count).
    fn mutating(self) -> bool {
        matches!(
            self,
            FaultOp::Write | FaultOp::Rename | FaultOp::Remove | FaultOp::Sync
        )
    }
}

/// What an injected fault does to its operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `ENOSPC`: the disk is full.
    Enospc,
    /// `EIO`: the device errored.
    Eio,
    /// `EACCES`: the path is not writable (read-only store directory).
    Eacces,
    /// A write persists only a deterministic prefix of its bytes, then
    /// reports failure (torn write). Non-write operations fail `EIO`.
    Short,
    /// A rename is silently not applied, then reports failure. Non-rename
    /// operations fail `EIO`.
    Loss,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        Some(match s {
            "enospc" => FaultKind::Enospc,
            "eio" => FaultKind::Eio,
            "eacces" => FaultKind::Eacces,
            "short" => FaultKind::Short,
            "loss" => FaultKind::Loss,
            _ => return None,
        })
    }

    fn error(self, what: &str) -> io::Error {
        match self {
            FaultKind::Enospc => io::Error::new(
                io::ErrorKind::StorageFull,
                format!("injected ENOSPC: {what}"),
            ),
            FaultKind::Eacces => io::Error::new(
                io::ErrorKind::PermissionDenied,
                format!("injected EACCES: {what}"),
            ),
            FaultKind::Eio | FaultKind::Short | FaultKind::Loss => {
                io::Error::other(format!("injected EIO: {what}"))
            }
        }
    }
}

/// One injected fault: the `nth` operation of class `op` (0-based, per
/// class) fails with `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// The operation class the rule targets.
    pub op: FaultOp,
    /// Which occurrence (0-based, counted per class).
    pub nth: u64,
    /// The failure to inject.
    pub kind: FaultKind,
}

/// A deterministic fault plan for one [`FaultIo`].
///
/// The text form (the CLI's `--fault-schedule`) is comma-separated:
///
/// ```text
/// seed=7,crash=12,write:enospc=3,rename:loss=0,read:eio=5,down
/// ```
///
/// * `seed=N` — seeds torn-write prefix lengths (default 0);
/// * `crash=N` — crash at the Nth mutating operation (0-based): that
///   operation is applied partially, everything after fails;
/// * `<op>:<kind>=N` — the Nth operation of that class fails with that
///   kind (`op` ∈ `write|rename|remove|sync|read|list`, `kind` ∈
///   `enospc|eio|eacces|short|loss`);
/// * `down` — start in a full outage (clearable at runtime with
///   [`FaultIo::set_outage`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// Seed for deterministic torn-write prefixes.
    pub seed: u64,
    /// Crash at this mutating-operation index (see [`FaultIo`]).
    pub crash_after: Option<u64>,
    /// Per-operation fault rules.
    pub rules: Vec<FaultRule>,
    /// Whether the schedule starts in a full outage.
    pub down: bool,
}

impl FaultSchedule {
    /// A schedule that injects nothing (pass-through counting).
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// A schedule that crashes at mutating operation `n`.
    pub fn crash_at(n: u64, seed: u64) -> FaultSchedule {
        FaultSchedule {
            seed,
            crash_after: Some(n),
            ..FaultSchedule::default()
        }
    }

    /// Parses the `--fault-schedule` text form (see the type docs).
    pub fn parse(spec: &str) -> Result<FaultSchedule, String> {
        let mut schedule = FaultSchedule::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if part == "down" {
                schedule.down = true;
                continue;
            }
            let Some((lhs, rhs)) = part.split_once('=') else {
                return Err(format!(
                    "unparseable fault rule {part:?}: expected `down`, `seed=N`, `crash=N`, \
                     or `op:kind=N`"
                ));
            };
            let n: u64 = rhs
                .parse()
                .map_err(|_| format!("fault rule {part:?}: {rhs:?} is not an integer"))?;
            match lhs {
                "seed" => schedule.seed = n,
                "crash" => schedule.crash_after = Some(n),
                _ => {
                    let Some((op, kind)) = lhs.split_once(':') else {
                        return Err(format!(
                            "unknown fault key {lhs:?} (expected seed, crash, or op:kind)"
                        ));
                    };
                    let op = FaultOp::parse(op).ok_or_else(|| {
                        format!("unknown fault op {op:?} (write|rename|remove|sync|read|list)")
                    })?;
                    let kind = FaultKind::parse(kind).ok_or_else(|| {
                        format!("unknown fault kind {kind:?} (enospc|eio|eacces|short|loss)")
                    })?;
                    schedule.rules.push(FaultRule { op, nth: n, kind });
                }
            }
        }
        Ok(schedule)
    }
}

/// Per-class operation counters (how many of each the wrapped tier has
/// attempted).
#[derive(Debug, Default, Clone, Copy)]
struct OpCounts {
    write: u64,
    rename: u64,
    remove: u64,
    sync: u64,
    read: u64,
    list: u64,
}

impl OpCounts {
    fn bump(&mut self, op: FaultOp) -> u64 {
        let slot = match op {
            FaultOp::Write => &mut self.write,
            FaultOp::Rename => &mut self.rename,
            FaultOp::Remove => &mut self.remove,
            FaultOp::Sync => &mut self.sync,
            FaultOp::Read => &mut self.read,
            FaultOp::List => &mut self.list,
        };
        let n = *slot;
        *slot += 1;
        n
    }
}

/// What the schedule decided for one operation.
enum Verdict {
    /// Execute normally.
    Pass,
    /// Fail without touching the filesystem.
    Fail(io::Error),
    /// Write only a deterministic prefix, then fail (torn write).
    Torn,
    /// For renames: do not apply, then fail (rename loss / crash before
    /// the commit landed).
    Drop(io::Error),
}

/// A deterministic fault-injecting [`StoreIo`] wrapper. See the module
/// docs for the fault model and [`FaultSchedule`] for the plan format.
///
/// Thread-safe: the schedule state sits behind a mutex, so a `FaultIo`
/// can back a concurrent [`crate::PoolStore`]. Tests keep their own
/// `Arc<FaultIo>` clone to flip the outage switch or read counters while
/// the store holds the `DynStoreIo` half.
pub struct FaultIo {
    inner: DynStoreIo,
    schedule: FaultSchedule,
    counts: Mutex<OpCounts>,
    /// Mutating operations attempted so far (crash points index this).
    mutations: AtomicU64,
    crashed: AtomicBool,
    outage: AtomicBool,
    readonly: AtomicBool,
}

impl FaultIo {
    /// Wraps an inner [`StoreIo`] with a fault schedule.
    pub fn new(inner: DynStoreIo, schedule: FaultSchedule) -> Arc<FaultIo> {
        let down = schedule.down;
        Arc::new(FaultIo {
            inner,
            schedule,
            counts: Mutex::new(OpCounts::default()),
            mutations: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            outage: AtomicBool::new(down),
            readonly: AtomicBool::new(false),
        })
    }

    /// A fault-injecting wrapper over the real filesystem.
    pub fn over_real(schedule: FaultSchedule) -> Arc<FaultIo> {
        FaultIo::new(RealIo::arc(), schedule)
    }

    /// Raises or clears a full outage: while raised, every operation
    /// fails `EIO` without touching the filesystem. This is the runtime
    /// switch the degraded-mode tests flip mid-traffic.
    pub fn set_outage(&self, down: bool) {
        self.outage.store(down, Ordering::SeqCst);
    }

    /// Whether an outage is currently raised.
    pub fn outage(&self) -> bool {
        self.outage.load(Ordering::SeqCst)
    }

    /// Raises or clears a read-only condition: while raised, every
    /// *mutating* operation (write/rename/remove/sync) fails `EACCES`,
    /// but reads, listings, and stats keep working — the behavior of a
    /// store directory whose filesystem was remounted read-only.
    pub fn set_readonly(&self, readonly: bool) {
        self.readonly.store(readonly, Ordering::SeqCst);
    }

    /// Mutating operations (write/rename/remove/sync) attempted so far —
    /// how a harness sizes its crash-point matrix.
    pub fn mutations(&self) -> u64 {
        self.mutations.load(Ordering::SeqCst)
    }

    /// Whether a crash point has fired (all operations now fail).
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Deterministic torn-write prefix length for mutation index `n`:
    /// a seeded hash folded into `0..len` (strictly shorter than the
    /// intended write, so a torn write is always detectable).
    fn torn_prefix(&self, n: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        use std::hash::Hasher as _;
        let mut h = oipa_graph::hashing::FxHasher::default();
        h.write_u64(self.schedule.seed);
        h.write_u64(n);
        (h.finish() as usize) % len
    }

    /// Applies the schedule to one operation attempt.
    fn decide(&self, op: FaultOp, what: &str) -> Verdict {
        if self.crashed.load(Ordering::SeqCst) {
            return Verdict::Fail(io::Error::other(format!(
                "injected crash: the process died before this {what}"
            )));
        }
        if self.outage.load(Ordering::SeqCst) {
            return Verdict::Fail(io::Error::other(format!("injected outage: {what}")));
        }
        if self.readonly.load(Ordering::SeqCst) && op.mutating() {
            return Verdict::Fail(FaultKind::Eacces.error(what));
        }
        let nth = {
            let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
            counts.bump(op)
        };
        let mutation = if op.mutating() {
            Some(self.mutations.fetch_add(1, Ordering::SeqCst))
        } else {
            None
        };
        if let (Some(m), Some(crash)) = (mutation, self.schedule.crash_after) {
            if m >= crash {
                self.crashed.store(true, Ordering::SeqCst);
                let err = || io::Error::other(format!("injected crash at mutation {m}: {what}"));
                return match op {
                    // The crash-point operation itself is torn: a write
                    // lands a prefix, a rename/remove/sync never applies.
                    FaultOp::Write => Verdict::Torn,
                    _ => Verdict::Drop(err()),
                };
            }
        }
        for rule in &self.schedule.rules {
            if rule.op == op && rule.nth == nth {
                return match rule.kind {
                    FaultKind::Short if op == FaultOp::Write => Verdict::Torn,
                    FaultKind::Loss if op == FaultOp::Rename => {
                        Verdict::Drop(rule.kind.error(what))
                    }
                    kind => Verdict::Fail(kind.error(what)),
                };
            }
        }
        Verdict::Pass
    }
}

impl StoreIo for FaultIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.decide(FaultOp::Read, &format!("reading {}", path.display())) {
            Verdict::Pass => self.inner.read(path),
            Verdict::Fail(e) | Verdict::Drop(e) => Err(e),
            Verdict::Torn => unreachable!("reads are never torn"),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let what = format!("writing {} ({} bytes)", path.display(), bytes.len());
        match self.decide(FaultOp::Write, &what) {
            Verdict::Pass => self.inner.write(path, bytes),
            Verdict::Fail(e) | Verdict::Drop(e) => Err(e),
            Verdict::Torn => {
                // Torn write: a deterministic strict prefix lands, then
                // the operation reports failure — exactly what a crash or
                // a full disk leaves behind.
                let n = self.mutations.load(Ordering::SeqCst);
                let prefix = self.torn_prefix(n, bytes.len());
                let _ = self.inner.write(path, &bytes[..prefix]);
                Err(io::Error::other(format!(
                    "injected torn write: only {prefix} of {} bytes landed for {}",
                    bytes.len(),
                    path.display()
                )))
            }
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        match self.decide(FaultOp::Sync, &format!("syncing {}", path.display())) {
            Verdict::Pass => self.inner.sync(path),
            Verdict::Fail(e) | Verdict::Drop(e) => Err(e),
            Verdict::Torn => unreachable!("syncs are never torn"),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let what = format!("renaming {} -> {}", from.display(), to.display());
        match self.decide(FaultOp::Rename, &what) {
            Verdict::Pass => self.inner.rename(from, to),
            Verdict::Fail(e) | Verdict::Drop(e) => Err(e),
            Verdict::Torn => unreachable!("renames drop, not tear"),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.decide(FaultOp::Remove, &format!("removing {}", path.display())) {
            Verdict::Pass => self.inner.remove(path),
            Verdict::Fail(e) | Verdict::Drop(e) => Err(e),
            Verdict::Torn => unreachable!("removes are never torn"),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        // Directory creation rides the outage/crash/read-only state but
        // takes no per-op rules: the store creates its directories once
        // at open.
        if self.crashed.load(Ordering::SeqCst)
            || self.outage.load(Ordering::SeqCst)
            || self.readonly.load(Ordering::SeqCst)
        {
            // Creating an already-existing directory is a no-op even on a
            // sick disk — only creation of something new can fail.
            if self.inner.exists(path) {
                return Ok(());
            }
            return Err(io::Error::other(format!(
                "injected fault: creating {}",
                path.display()
            )));
        }
        self.inner.create_dir_all(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        match self.decide(FaultOp::List, &format!("listing {}", dir.display())) {
            Verdict::Pass => self.inner.list(dir),
            Verdict::Fail(e) | Verdict::Drop(e) => Err(e),
            Verdict::Torn => unreachable!("listings are never torn"),
        }
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        // Metadata reads ride the read class (a dead disk fails stat too).
        if self.crashed.load(Ordering::SeqCst) || self.outage.load(Ordering::SeqCst) {
            return Err(io::Error::other(format!(
                "injected fault: stat {}",
                path.display()
            )));
        }
        self.inner.len(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn tail(&self, path: &Path, n: usize) -> io::Result<Vec<u8>> {
        match self.decide(
            FaultOp::Read,
            &format!("reading tail of {}", path.display()),
        ) {
            Verdict::Pass => self.inner.tail(path, n),
            Verdict::Fail(e) | Verdict::Drop(e) => Err(e),
            Verdict::Torn => unreachable!("reads are never torn"),
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let what = format!("appending to {} ({} bytes)", path.display(), bytes.len());
        match self.decide(FaultOp::Write, &what) {
            Verdict::Pass => self.inner.append(path, bytes),
            Verdict::Fail(e) | Verdict::Drop(e) => Err(e),
            Verdict::Torn => {
                // A torn append lands a strict prefix at the end of the
                // file — the region tail a crash mid-append leaves behind.
                let n = self.mutations.load(Ordering::SeqCst);
                let prefix = self.torn_prefix(n, bytes.len());
                let _ = self.inner.append(path, &bytes[..prefix]);
                Err(io::Error::other(format!(
                    "injected torn append: only {prefix} of {} bytes landed for {}",
                    bytes.len(),
                    path.display()
                )))
            }
        }
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let what = format!("reading {len} bytes at {offset} from {}", path.display());
        match self.decide(FaultOp::Read, &what) {
            Verdict::Pass => self.inner.read_at(path, offset, len),
            Verdict::Fail(e) | Verdict::Drop(e) => Err(e),
            Verdict::Torn => unreachable!("reads are never torn"),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let what = format!("truncating {} to {len} bytes", path.display());
        match self.decide(FaultOp::Write, &what) {
            Verdict::Pass => self.inner.truncate(path, len),
            // A truncate cannot half-apply: torn means it never happened.
            Verdict::Fail(e) | Verdict::Drop(e) => Err(e),
            Verdict::Torn => Err(io::Error::other(format!("injected crash: {what}"))),
        }
    }
}

/// A loud path for fault-schedule parse errors in binaries.
pub fn parse_fault_schedule(spec: &str) -> Result<FaultSchedule, String> {
    FaultSchedule::parse(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("oipa-store-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn schedule_parses_every_form() {
        let s =
            FaultSchedule::parse("seed=7, crash=12, write:enospc=3, rename:loss=0, down").unwrap();
        assert_eq!(s.seed, 7);
        assert_eq!(s.crash_after, Some(12));
        assert!(s.down);
        assert_eq!(
            s.rules,
            vec![
                FaultRule {
                    op: FaultOp::Write,
                    nth: 3,
                    kind: FaultKind::Enospc
                },
                FaultRule {
                    op: FaultOp::Rename,
                    nth: 0,
                    kind: FaultKind::Loss
                },
            ]
        );
        for bad in [
            "nonsense",
            "write:enospc",
            "write:bad=1",
            "jump:eio=1",
            "crash=x",
        ] {
            assert!(FaultSchedule::parse(bad).is_err(), "{bad:?} must not parse");
        }
        assert_eq!(FaultSchedule::parse("").unwrap(), FaultSchedule::none());
    }

    #[test]
    fn nth_write_fails_with_the_scheduled_errno() {
        let io = FaultIo::over_real(FaultSchedule::parse("write:enospc=1").unwrap());
        let path = tmp("nth-write");
        io.write(&path, b"first").unwrap();
        let err = io.write(&path, b"second").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        io.write(&path, b"third").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"third");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn short_write_lands_a_strict_prefix() {
        let io = FaultIo::over_real(FaultSchedule::parse("seed=3,write:short=0").unwrap());
        let path = tmp("short-write");
        let err = io.write(&path, b"0123456789").unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        let on_disk = std::fs::read(&path).unwrap();
        assert!(on_disk.len() < 10, "a torn write must be strictly short");
        assert_eq!(&on_disk[..], &b"0123456789"[..on_disk.len()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rename_loss_leaves_the_source_in_place() {
        let io = FaultIo::over_real(FaultSchedule::parse("rename:loss=0").unwrap());
        let a = tmp("loss-a");
        let b = tmp("loss-b");
        std::fs::write(&a, b"payload").unwrap();
        assert!(io.rename(&a, &b).is_err());
        assert!(a.exists() && !b.exists(), "a lost rename must not apply");
        let _ = std::fs::remove_file(&a);
    }

    #[test]
    fn crash_freezes_everything_after_the_point() {
        let io = FaultIo::over_real(FaultSchedule::crash_at(2, 9));
        let a = tmp("crash-a");
        io.write(&a, b"one").unwrap(); // mutation 0
        io.sync(&a).unwrap(); // mutation 1
        let err = io.write(&a, b"longer-payload").unwrap_err(); // mutation 2: torn + crash
        assert!(err.to_string().contains("torn write"), "{err}");
        assert!(io.crashed());
        // Everything after the crash fails, reads included.
        assert!(io.write(&a, b"x").is_err());
        assert!(io.read(&a).is_err());
        assert!(io.remove(&a).is_err());
        // The directory state is what the torn op left: a prefix of the
        // second write over the first.
        let on_disk = std::fs::read(&a).unwrap();
        assert!(on_disk.len() < b"longer-payload".len());
        let _ = std::fs::remove_file(&a);
    }

    #[test]
    fn outage_toggles_at_runtime() {
        let io = FaultIo::over_real(FaultSchedule::none());
        let path = tmp("outage");
        io.write(&path, b"up").unwrap();
        io.set_outage(true);
        assert!(io.write(&path, b"down").is_err());
        assert!(io.read(&path).is_err());
        io.set_outage(false);
        assert_eq!(io.read(&path).unwrap(), b"up");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mutation_counter_counts_only_mutations() {
        let io = FaultIo::over_real(FaultSchedule::none());
        let path = tmp("mutcount");
        io.write(&path, b"x").unwrap();
        let _ = io.read(&path).unwrap();
        let _ = io.len(&path).unwrap();
        io.remove(&path).unwrap();
        assert_eq!(io.mutations(), 2, "write + remove; reads don't count");
    }

    #[test]
    fn append_and_read_at_round_trip_region_style() {
        let io = FaultIo::over_real(FaultSchedule::none());
        let path = tmp("append-roundtrip");
        let _ = std::fs::remove_file(&path);
        io.append(&path, b"first-").unwrap(); // creates the file
        io.append(&path, b"second").unwrap();
        assert_eq!(io.len(&path).unwrap(), 12);
        assert_eq!(io.read_at(&path, 0, 6).unwrap(), b"first-");
        assert_eq!(io.read_at(&path, 6, 6).unwrap(), b"second");
        assert!(
            io.read_at(&path, 6, 7).is_err(),
            "a read past the end must fail, not short-read"
        );
        io.truncate(&path, 6).unwrap();
        assert_eq!(io.read(&path).unwrap(), b"first-");
        assert_eq!(io.mutations(), 3, "two appends + one truncate");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_append_lands_a_strict_prefix_at_the_tail() {
        let io = FaultIo::over_real(FaultSchedule::parse("seed=5,write:short=1").unwrap());
        let path = tmp("torn-append");
        let _ = std::fs::remove_file(&path);
        io.append(&path, b"committed!").unwrap(); // write op 0 passes
        let err = io.append(&path, b"0123456789").unwrap_err();
        assert!(err.to_string().contains("torn append"), "{err}");
        let on_disk = std::fs::read(&path).unwrap();
        assert!(on_disk.len() < 20, "the torn tail must be strictly short");
        assert_eq!(&on_disk[..10], b"committed!", "the committed prefix holds");
        // A crash-point truncate is dropped, never half-applied.
        let crash = FaultIo::over_real(FaultSchedule::crash_at(0, 1));
        assert!(crash.truncate(&path, 3).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), on_disk);
        let _ = std::fs::remove_file(&path);
    }
}
